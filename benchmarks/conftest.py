"""Pytest fixtures for the benchmark harness (see ``_harness.py``)."""

from __future__ import annotations

import pytest

from _harness import BenchWorld, build_world


@pytest.fixture(scope="session")
def bench_world() -> BenchWorld:
    """The shared experiment world: data, oracle knowledge and test series."""
    return build_world()
