"""Benchmark: sharded-service push throughput and scalability.

Pins the acceptance claim of the ``repro.service`` layer: on a population
of **≥ 2000 streams**, aggregate push throughput at 4 shards is **≥ 3x**
the 1-shard service (shards compute their batches in parallel processes;
the front end fans `push_batch` requests out concurrently).  The speedup
claim needs real cores — on machines with fewer than 4 CPUs the 4-shard
run cannot physically outrun one shard, so there the benchmark instead
bounds the sharding *overhead* (a 4-shard service must keep at least 30 %
of single-shard throughput) and the 3x assertion is skipped.

Every configuration also re-checks correctness: the per-stream updates of
a sampled subset must be bitwise-equal to the in-process
:class:`StreamEngine` on the same traffic.

Run modes:

* ``pytest benchmarks/bench_service_scalability.py`` — full scale
  (2000 streams, shards 1/2/4; asserts the criteria above).
* ``python benchmarks/bench_service_scalability.py --smoke`` — CI gate at
  reduced scale: measures single-shard push throughput and the 2-shard
  throughput ratio, then compares against the ``service_smoke`` section of
  ``benchmarks/baselines.json`` and fails on a > 20 % regression.
  ``--record`` rewrites that section from the current machine (other
  sections are preserved).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import TrainerConfig
from repro.data import build_selector_dataset, generate_series
from repro.selectors import make_selector
from repro.service import ServiceConfig, ShardedService, make_engine_factory
from repro.streaming import StreamEngine, StreamingConfig

BASELINES_PATH = Path(__file__).resolve().parent / "baselines.json"

#: the acceptance criterion runs at this scale
FULL_STREAMS = 2000
FULL_SHARDS = (1, 2, 4)
SMOKE_STREAMS = 128
SMOKE_SHARDS = (1, 2)

TICKS = 3
CHUNK = 64
WINDOW = 64

#: smoke gate: per-metric regression floors (fraction of recorded baseline).
#: Absolute throughput is load-sensitive on shared machines, so it gets a
#: wider margin than the shard ratio.
SMOKE_TOLERANCES = {
    "push_points_per_s_1shard": 0.5,
    "shard2_throughput_ratio": 0.8,
}


def _world():
    """A small trained selector — training cost is not what's measured."""
    train_records = [generate_series(name, 0, 400, seed=4)
                     for name in ("ECG", "IOPS", "MGAB", "SMD")]
    detector_names = ["IForest", "HBOS", "MP", "POLY"]
    gen = np.random.default_rng(9)
    matrix = gen.uniform(0.05, 0.4, size=(len(train_records), len(detector_names)))
    matrix[np.arange(len(train_records)), np.arange(len(train_records))] += 0.5
    dataset = build_selector_dataset(train_records, matrix, detector_names,
                                     window=WINDOW, stride=WINDOW)
    selector = make_selector("MLP", window=WINDOW, n_classes=4, hidden=16,
                             feature_dim=8, seed=0)
    selector.fit(dataset, config=TrainerConfig(epochs=2, batch_size=32))
    return selector, detector_names


def _traffic(n_streams: int):
    gen = np.random.default_rng(23)
    return {f"stream-{i:05d}": gen.normal(size=TICKS * CHUNK)
            for i in range(n_streams)}


def _drive(target, streams) -> tuple[dict, float]:
    """Push the traffic in ticks; returns (final updates, elapsed seconds)."""
    updates = {}
    start = time.perf_counter()
    for tick in range(TICKS):
        for sid, series in streams.items():
            target.append(sid, series[tick * CHUNK:(tick + 1) * CHUNK])
        for sid, update in target.flush().items():
            updates[sid] = update.as_dict() if hasattr(update, "as_dict") else update
    return updates, time.perf_counter() - start


def run_service_bench(n_streams: int, shard_counts, repeats: int = 1,
                      verbose: bool = True) -> dict:
    selector, detector_names = _world()
    config = StreamingConfig(window=WINDOW, stride=WINDOW)
    streams = _traffic(n_streams)
    total_points = n_streams * TICKS * CHUNK
    factory = make_engine_factory(selector, detector_names, config)

    engine = StreamEngine(selector, detector_names, config)
    reference, t_engine = _drive(engine, streams)
    if verbose:
        print(f"in-process engine   {n_streams:>5} streams  "
              f"{total_points / t_engine:10.0f} points/s")

    # warm-up: fork/import/allocator effects must not bias the first
    # configuration measured (they otherwise inflate later ratios)
    warmup = {sid: streams[sid] for sid in sorted(streams)[:16]}
    with ShardedService(factory, ServiceConfig(n_shards=shard_counts[0])) as service:
        _drive(service, warmup)

    sample = sorted(streams)[:: max(1, n_streams // 32)]
    rows = {}
    for n_shards in shard_counts:
        best = 0.0
        for _ in range(max(repeats, 1)):
            with ShardedService(factory, ServiceConfig(n_shards=n_shards)) as service:
                updates, elapsed = _drive(service, streams)
                for sid in sample:  # bitwise equality on the sampled streams
                    assert updates[sid] == reference[sid], sid
            best = max(best, total_points / elapsed)
        rows[n_shards] = best
        if verbose:
            ratio = rows[n_shards] / rows[shard_counts[0]]
            print(f"sharded service     {n_streams:>5} streams  "
                  f"{rows[n_shards]:10.0f} points/s  "
                  f"shards={n_shards}  ({ratio:4.2f}x vs {shard_counts[0]})")
    return {"points_per_s": rows, "engine_points_per_s": total_points / t_engine}


# --------------------------------------------------------------------------- #
# pytest entry point (full scale — the acceptance criterion)
# --------------------------------------------------------------------------- #
def test_four_shards_scale_push_throughput():
    result = run_service_bench(FULL_STREAMS, FULL_SHARDS)
    rows = result["points_per_s"]
    ratio = rows[4] / rows[1]
    if (os.cpu_count() or 1) >= 4:
        assert ratio >= 3.0, (
            f"4-shard throughput only {ratio:.2f}x of 1-shard on "
            f"{FULL_STREAMS} streams (criterion: >= 3x)")
    else:
        # without 4 cores a parallel speedup is physically impossible;
        # bound the sharding overhead instead
        assert ratio >= 0.3, (
            f"4-shard overhead too high: {ratio:.2f}x of 1-shard throughput "
            f"on a {os.cpu_count()}-core machine")


# --------------------------------------------------------------------------- #
# smoke mode (CI gate against recorded baselines)
# --------------------------------------------------------------------------- #
def run_smoke(record: bool = False) -> int:
    result = run_service_bench(SMOKE_STREAMS, SMOKE_SHARDS, repeats=2)
    rows = result["points_per_s"]
    measured = {
        "push_points_per_s_1shard": round(rows[1], 1),
        "shard2_throughput_ratio": round(rows[2] / rows[1], 3),
    }
    print(f"smoke measurements: {json.dumps(measured)}")

    baselines_doc = json.loads(BASELINES_PATH.read_text()) \
        if BASELINES_PATH.exists() else {}
    if record:
        baselines_doc["service_smoke"] = {
            "description": "bench_service_scalability --smoke baselines "
                           "(regenerate with --record)",
            **measured,
        }
        BASELINES_PATH.write_text(json.dumps(baselines_doc, indent=2) + "\n")
        print(f"recorded service baselines -> {BASELINES_PATH}")
        return 0

    baselines = {k: v for k, v in baselines_doc.get("service_smoke", {}).items()
                 if k != "description"}
    if not baselines:
        print("no recorded service baselines; run with --record first")
        return 1
    failures = []
    for key, baseline in baselines.items():
        tolerance = SMOKE_TOLERANCES.get(key, 0.8)
        floor = tolerance * baseline
        if measured[key] < floor:
            failures.append(f"{key}: measured {measured[key]:.2f} < "
                            f"{floor:.2f} ({tolerance:.0%} of baseline "
                            f"{baseline:.2f})")
    if failures:
        print("SMOKE REGRESSION:\n  " + "\n  ".join(failures))
        return 1
    print("service smoke OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced-scale CI gate against baselines.json")
    parser.add_argument("--record", action="store_true",
                        help="rewrite the service section of baselines.json")
    args = parser.parse_args()
    if args.smoke or args.record:
        return run_smoke(record=args.record)
    test_four_shards_scale_push_throughput()
    return 0


if __name__ == "__main__":
    sys.exit(main())
