"""Table 3 / Table 8 — KDSelector is architecture-agnostic.

Paper (all datasets):

    Architecture       ResNet   InceptionTime   Transformer
    Improved AUC-PR    0.040    0.046           0.015
    Saved time (%)     58.3%    70.96%          74.17%

For each architecture we train the default (standard framework, full data)
selector and the full KDSelector configuration (PISL + MKI + PA), and report
the AUC-PR improvement and the share of sample visits saved by pruning.
Expected shape: every architecture benefits (no large regression) and PA
skips a large fraction of sample visits for all of them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import kdselector_config
from repro.system.reporting import format_table, per_dataset_table

from _harness import BENCH_LSH_BITS, default_trainer_config, train_and_evaluate

ARCHITECTURES = ["ResNet", "InceptionTime", "Transformer"]

PAPER_ROWS = {
    "ResNet": (0.040, 58.3),
    "InceptionTime": (0.046, 70.96),
    "Transformer": (0.015, 74.17),
}


@pytest.mark.benchmark(group="table3")
def test_table3_architecture_agnostic(benchmark, bench_world):
    """Default vs +KDSelector for ResNet, InceptionTime and Transformer."""

    def experiment():
        results = {}
        for arch in ARCHITECTURES:
            default_run = train_and_evaluate(
                arch, bench_world,
                trainer_config=default_trainer_config(bench_world, seed=0),
                label=f"{arch} (Default)",
            )
            kd_run = train_and_evaluate(
                arch, bench_world,
                trainer_config=kdselector_config(
                    epochs=bench_world.scale["epochs"],
                    batch_size=bench_world.scale["batch_size"],
                    lsh_bits=BENCH_LSH_BITS,
                    seed=0,
                ),
                label=f"{arch} (+KDSelector)",
            )
            results[arch] = (default_run, kd_run)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n=== Table 3: KDSelector on different architectures (reproduction) ===")
    rows = []
    for arch, (default_run, kd_run) in results.items():
        improved = kd_run.average_auc_pr - default_run.average_auc_pr
        saved_time = 1.0 - kd_run.training_time_s / max(default_run.training_time_s, 1e-9)
        paper_improved, paper_saved = PAPER_ROWS[arch]
        rows.append([
            arch, default_run.average_auc_pr, kd_run.average_auc_pr, improved,
            f"{100 * saved_time:.1f}%", f"{100 * kd_run.pruned_fraction:.1f}%",
            paper_improved, f"{paper_saved}%",
        ])
    print(format_table(
        ["Architecture", "Default AUC-PR", "+KDSelector AUC-PR", "Improved (ours)",
         "Time saved (ours)", "Samples pruned", "Improved (paper)", "Time saved (paper)"],
        rows,
    ))

    per_dataset = {}
    for arch, (default_run, kd_run) in results.items():
        per_dataset[f"{arch} Default"] = default_run.per_dataset
        per_dataset[f"{arch} +KD"] = kd_run.per_dataset
    print("\nPer-dataset AUC-PR (reproduction, cf. paper Table 8):")
    print(per_dataset_table(per_dataset))

    improvements = []
    for arch, (default_run, kd_run) in results.items():
        # KDSelector must stay competitive on every architecture and prune
        # a substantial share of sample visits (the source of time savings).
        assert kd_run.average_auc_pr >= default_run.average_auc_pr - 0.10, arch
        assert kd_run.pruned_fraction > 0.15, arch
        assert default_run.pruned_fraction == 0.0, arch
        improvements.append(kd_run.average_auc_pr - default_run.average_auc_pr)
    # Across architectures KDSelector should not hurt on average (paper: it
    # improves all three); small per-architecture noise is tolerated at this
    # reduced scale.
    assert float(np.mean(improvements)) >= -0.03
