"""End-to-end SLO benchmark — the cascade's quality-vs-latency frontier.

The cascade router (``repro.cascade``) serves confident windows from the
int8 student and escalates only low-margin windows to the teacher, so a
request's latency should sit between the always-int8 floor and the
always-teacher ceiling while its selections stay teacher-faithful.  This
benchmark races the three serving plans on identical per-request traffic:

* **always-teacher** — every window through the full selector (the
  quality ceiling and latency ceiling),
* **always-int8**    — every window through the quantized student (the
  latency floor; quality is whatever the student gives),
* **cascade**        — int8 first, teacher for windows whose top-1
  margin falls below the calibrated threshold,
* **cascade-int8**   — the same cascade, but escalations run through the
  **quantized teacher** (``quantize_teacher``) instead of the float one,
  shrinking the escalation tail that dominates the cascade's p99.

Each plan answers the same query series one request at a time with cold
caches, giving a per-request latency distribution (p50/p99) and a
window-level selection-agreement score against the teacher.  The
measured latencies are then fed back into a fitted
:class:`repro.cascade.CostModel` and swept across latency SLOs to print
the admission frontier: which plan the router would admit at each SLO,
at what predicted quality.

Acceptance (checked by assertions):

* the cascade's p50 per-request latency is **>= 2x** faster than
  always-teacher,
* its window-level agreement with the teacher drops **<= 1 %**
  (agreement >= 0.99),
* always-int8 stays the latency floor (sanity: cascade is not faster
  than the tier it starts from, within measurement noise),
* escalating to the int8 teacher does not inflate the cascade's p99
  (the int8 escalation tail is no worse than the float one, within
  measurement noise) while its window agreement drops **<= 1 %**
  relative to the float-teacher cascade.

Run modes:

* ``pytest benchmarks/bench_e2e_slo.py`` — full scale, asserts the
  contracts above.
* ``python benchmarks/bench_e2e_slo.py --smoke`` — CI gate at reduced
  scale: asserts the absolute contracts, then compares the measured
  speedups against the ``e2e_slo`` section of
  ``benchmarks/baselines.json`` and fails on a > 20 % regression.
  ``--record`` rewrites that section.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from bench_serving_throughput import (
    SERVING_SCALE,
    TIER_SCALE,
    _build_selector,
    _query_records,
    _transfer_windows,
)
from repro.cascade import (
    CascadeRouter,
    CostModel,
    CostObservation,
    calibrate_margin_threshold,
)
from repro.data import generate_series
from repro.data.records import DATASET_NAMES
from repro.data.windows import extract_windows
from repro.distill import (
    DistillConfig,
    distill_student,
    quantize_student,
    quantize_teacher,
    selection_agreement,
)
from repro.serving import SelectionService, ServingConfig, configure_transform_cache
from repro.system.reporting import format_table

BASELINES_PATH = Path(__file__).resolve().parent / "baselines.json"

#: Benchmark scale on top of the serving/tier scales (longer queries so
#: per-request time is forward-dominated, as production traffic is).
E2E_SCALE = {
    "query_length": 3200,
    "n_query_series": 32,
    "n_calibration_series": 8,
    "timing_repeats": 3,
    "calibration_target_agreement": 0.99,
}

#: the cascade must answer at least this much faster than always-teacher ...
MIN_CASCADE_SPEEDUP = 2.0
#: ... while agreeing with the teacher on at least this share of windows
MIN_CASCADE_AGREEMENT = 0.99

#: int8 escalation may cost at most this much extra p99 (measurement
#: noise guard — when escalations are rare the two cascades do near-identical
#: work and best-of-2 cold timings still jitter a few percent)
MAX_INT8_P99_RATIO = 1.05
#: ... and may drop window agreement by at most 1 % vs the float cascade
MAX_INT8_AGREEMENT_DROP = 0.01

#: smoke gate: speedups may regress at most 20 % below the baselines
REGRESSION_TOLERANCE = 0.8

#: latency SLOs swept for the admission frontier, as multiples of the
#: measured always-teacher p50 (1.0 = "as slow as the teacher")
SLO_SWEEP = (0.05, 0.15, 0.3, 0.6, 1.0, 2.0)


def _calibration_windows(scale, e2e_scale):
    """Held-out windows for margin-threshold calibration (never trained on)."""
    families = DATASET_NAMES[: scale["n_train_series"]]
    records = [
        generate_series(families[i % len(families)], i, e2e_scale["query_length"],
                        seed=scale["seed"] + 7)
        for i in range(e2e_scale["n_calibration_series"])
    ]
    return np.vstack([extract_windows(r.series, scale["window"]) for r in records])


def _build_tiers(scale, tier_scale, e2e_scale):
    """Teacher -> distilled student -> int8 twins -> calibrated routers."""
    teacher, detector_names = _build_selector(scale)
    config = DistillConfig(epochs=tier_scale["distill_epochs"],
                           features=tier_scale["features"],
                           seed=scale["seed"])
    transfer = _transfer_windows(scale, tier_scale)
    student, _ = distill_student(teacher, transfer, detector_names, config)
    quantized, _ = quantize_student(student, transfer, min_agreement=0.0)
    teacher_int8, teacher_gate = quantize_teacher(teacher, transfer,
                                                  min_agreement=0.0)

    calib = _calibration_windows(scale, e2e_scale)
    calibration = calibrate_margin_threshold(
        quantized.predict_proba(calib), teacher.predict_proba(calib),
        target_agreement=e2e_scale["calibration_target_agreement"])
    router = CascadeRouter.from_calibration(
        teacher, calibration, seed=scale["seed"], window=scale["window"])
    # same fast tier, same threshold, same escalation set — only the
    # selector answering the escalated rows changes
    router_int8 = CascadeRouter.from_calibration(
        teacher_int8, calibration, seed=scale["seed"], window=scale["window"],
        slow_tier="teacher-int8", slow_quality=teacher_gate["agreement"])
    return (teacher, quantized, router, router_int8, calibration,
            detector_names)


def _make_service(plan, teacher, quantized, routers, detector_names, window):
    if plan == "always-teacher":
        return SelectionService(teacher, detector_names,
                                ServingConfig(window=window))
    if plan == "always-int8":
        return SelectionService(quantized, detector_names,
                                ServingConfig(window=window,
                                              selector_tier="student-int8"))
    return SelectionService(quantized, detector_names,
                            ServingConfig(window=window,
                                          selector_tier="student-int8"),
                            cascade=routers[plan])


def _per_request_latencies(plan, records, repeats, make_service):
    """Best-of-``repeats`` cold per-request latency for each query series."""
    best = np.full(len(records), np.inf)
    for _ in range(repeats):
        service = make_service(plan)  # fresh selection cache each pass
        configure_transform_cache(None)  # and a cold transform cache
        for i, record in enumerate(records):
            start = time.perf_counter()
            service.select_batch([record])
            best[i] = min(best[i], (time.perf_counter() - start) * 1000.0)
    return best


def run_e2e_slo_benchmark(scale=None, tier_scale=None, e2e_scale=None,
                          verbose=True):
    """Race the three plans per request, then sweep the admission frontier."""
    scale = dict(SERVING_SCALE, **(scale or {}))
    tier_scale = dict(TIER_SCALE, **(tier_scale or {}))
    e2e_scale = dict(E2E_SCALE, **(e2e_scale or {}))
    scale["query_length"] = e2e_scale["query_length"]
    scale["n_query_series"] = e2e_scale["n_query_series"]
    window = scale["window"]

    (teacher, quantized, router, router_int8, calibration,
     detector_names) = _build_tiers(scale, tier_scale, e2e_scale)
    records = _query_records(scale)
    routers = {"cascade": router, "cascade-int8": router_int8}

    def make_service(plan):
        return _make_service(plan, teacher, quantized, routers,
                             detector_names, window)

    plans = ("always-teacher", "always-int8", "cascade", "cascade-int8")
    latencies = {
        plan: _per_request_latencies(plan, records, e2e_scale["timing_repeats"],
                                     make_service)
        for plan in plans
    }
    percentiles = {
        plan: {"p50": float(np.percentile(ms, 50)),
               "p99": float(np.percentile(ms, 99))}
        for plan, ms in latencies.items()
    }

    # quality: window-level selection agreement vs the teacher on the same
    # query windows the services just answered (route() is the exact math
    # the cascade service runs per batch)
    query_windows = np.vstack([extract_windows(r.series, window) for r in records])
    teacher_proba = teacher.predict_proba(query_windows)
    int8_proba = quantized.predict_proba(query_windows)
    cascade_proba, escalated = router.route(query_windows, int8_proba)
    cascade_int8_proba, escalated_int8 = router_int8.route(query_windows,
                                                           int8_proba)
    assert np.array_equal(escalated, escalated_int8), \
        "the two cascades must escalate the exact same window rows"
    agreement = {
        "always-teacher": 1.0,
        "always-int8": selection_agreement(int8_proba, teacher_proba),
        "cascade": selection_agreement(cascade_proba, teacher_proba),
        "cascade-int8": selection_agreement(cascade_int8_proba, teacher_proba),
    }

    # admission frontier: fit the cost model from the measured latencies,
    # then let the router admit at SLOs swept around the teacher's p50.
    # Shorter probe queries give the fit a second window count — with a
    # single count the per-window slope is unidentifiable from the
    # intercept and escalating even one window would be priced at a full
    # teacher pass.
    n_windows = len(extract_windows(records[0].series, window))
    probe_records = _query_records(dict(
        scale, query_length=max(4 * window, e2e_scale["query_length"] // 4),
        n_query_series=max(4, e2e_scale["n_query_series"] // 2)))
    probe_windows = len(extract_windows(probe_records[0].series, window))
    probe_latencies = {
        plan: _per_request_latencies(plan, probe_records, 2, make_service)
        for plan in ("always-teacher", "always-int8")
    }
    observations = [
        CostObservation(kind="selector_forward", target=tier,
                        n_windows=count, window=window, wall_ms=float(ms))
        for tier, plan in (("teacher", "always-teacher"),
                           ("student-int8", "always-int8"))
        for count, ms_array in ((n_windows, latencies[plan]),
                                (probe_windows, probe_latencies[plan]))
        for ms in ms_array
    ]
    router.cost_model = CostModel.fit(observations, window=window)
    teacher_p50 = percentiles["always-teacher"]["p50"]
    frontier = []
    for multiple in SLO_SWEEP:
        slo_ms = multiple * teacher_p50
        decision = router.admit(n_windows, latency_slo_ms=slo_ms)
        frontier.append({"slo_ms": slo_ms, **decision.as_dict()})

    out = {
        "n_requests": len(records),
        "windows_per_request": n_windows,
        "calibration": calibration.as_dict(),
        "escalation_rate": float(escalated.mean()),
        "percentiles": percentiles,
        "agreement": agreement,
        "speedup_p50": {
            plan: teacher_p50 / percentiles[plan]["p50"] for plan in plans
        },
        "int8_escalation_p99_speedup": (
            percentiles["cascade"]["p99"] / percentiles["cascade-int8"]["p99"]),
        "frontier": frontier,
    }

    if verbose:
        rows = [[plan,
                 f"{percentiles[plan]['p50']:.2f}",
                 f"{percentiles[plan]['p99']:.2f}",
                 f"{out['speedup_p50'][plan]:.2f}x",
                 f"{agreement[plan]:.4f}"]
                for plan in plans]
        print(format_table(
            ["plan", "p50 ms", "p99 ms", "p50 speedup", "window agreement"],
            rows))
        print(f"cascade: threshold {calibration.threshold:.4f}  "
              f"escalated {out['escalation_rate']:.1%} of "
              f"{len(query_windows)} query windows")
        print(f"int8 escalation: p99 {percentiles['cascade-int8']['p99']:.2f} ms "
              f"vs float {percentiles['cascade']['p99']:.2f} ms "
              f"({out['int8_escalation_p99_speedup']:.2f}x)")
        frontier_rows = [[f"{f['slo_ms']:.2f}", f["plan"],
                          f"{f['predicted_ms']:.2f}", f"{f['quality']:.4f}",
                          "yes" if f["fallback"] else ""]
                         for f in frontier]
        print(format_table(
            ["SLO ms", "admitted plan", "predicted ms", "quality", "fallback"],
            frontier_rows))
    return out


def _assert_e2e_contracts(out):
    """The scale-independent contracts (shared by pytest and smoke)."""
    speedup = out["speedup_p50"]["cascade"]
    assert speedup >= MIN_CASCADE_SPEEDUP, (
        f"cascade p50 only {speedup:.2f}x faster than always-teacher "
        f"(need >= {MIN_CASCADE_SPEEDUP}x)")
    agreement = out["agreement"]["cascade"]
    assert agreement >= MIN_CASCADE_AGREEMENT, (
        f"cascade agrees with the teacher on only {agreement:.4f} of query "
        f"windows (need >= {MIN_CASCADE_AGREEMENT})")
    assert out["agreement"]["cascade"] >= out["agreement"]["always-int8"] - 1e-12, (
        "escalating windows to the teacher must not lower agreement below "
        "the always-int8 floor")
    p99 = {plan: out["percentiles"][plan]["p99"]
           for plan in ("cascade", "cascade-int8")}
    assert p99["cascade-int8"] <= MAX_INT8_P99_RATIO * p99["cascade"], (
        f"int8 escalation inflated the cascade p99: "
        f"{p99['cascade-int8']:.2f} ms vs float {p99['cascade']:.2f} ms "
        f"(allowed ratio {MAX_INT8_P99_RATIO})")
    int8_drop = out["agreement"]["cascade"] - out["agreement"]["cascade-int8"]
    assert int8_drop <= MAX_INT8_AGREEMENT_DROP, (
        f"int8 escalation dropped window agreement by {int8_drop:.4f} "
        f"(allowed <= {MAX_INT8_AGREEMENT_DROP})")
    # the frontier must be monotone: a looser SLO never admits a plan of
    # lower predicted quality, and an impossible SLO falls back (flagged)
    qualities = [f["quality"] for f in out["frontier"] if not f["fallback"]]
    assert qualities == sorted(qualities), (
        f"admission frontier is not quality-monotone: {qualities}")


@pytest.mark.benchmark(group="e2e-slo")
def test_e2e_slo_frontier(benchmark):
    """Cascade: >= 2x teacher p50 at <= 1 % window-agreement drop."""
    out = benchmark.pedantic(run_e2e_slo_benchmark, rounds=1, iterations=1)
    _assert_e2e_contracts(out)


# --------------------------------------------------------------------------- #
# smoke mode (CI gate against recorded baselines)
# --------------------------------------------------------------------------- #
def run_smoke(record: bool = False) -> int:
    out = run_e2e_slo_benchmark(
        scale={"n_train_series": 6, "epochs": 1},
        tier_scale={"n_transfer_series": 12, "distill_epochs": 15},
        e2e_scale={"n_query_series": 12, "query_length": 3200,
                   "n_calibration_series": 6, "timing_repeats": 2},
    )
    _assert_e2e_contracts(out)  # absolute contracts hold at any scale
    measured = {
        "cascade_p50_speedup": round(out["speedup_p50"]["cascade"], 3),
        "int8_p50_speedup": round(out["speedup_p50"]["always-int8"], 3),
        "int8_cascade_p50_speedup": round(out["speedup_p50"]["cascade-int8"], 3),
    }
    print(f"smoke measurements: {json.dumps(measured)}")

    if record:
        baselines_doc = json.loads(BASELINES_PATH.read_text()) \
            if BASELINES_PATH.exists() else {}
        baselines_doc["e2e_slo"] = {
            "description": ("bench_e2e_slo --smoke baselines "
                            "(plan p50 speedups; regenerate with --record)"),
            **measured,
        }
        BASELINES_PATH.write_text(json.dumps(baselines_doc, indent=2) + "\n")
        print(f"recorded baselines -> {BASELINES_PATH}")
        return 0

    baselines = json.loads(BASELINES_PATH.read_text())["e2e_slo"]
    failures = []
    for key, baseline in baselines.items():
        if key == "description":
            continue
        floor = REGRESSION_TOLERANCE * baseline
        if measured[key] < floor:
            failures.append(f"{key}: measured {measured[key]:.2f} < "
                            f"{floor:.2f} (80% of baseline {baseline:.2f})")
    if failures:
        print("SMOKE REGRESSION:\n  " + "\n  ".join(failures))
        return 1
    print("smoke: OK (within 20% of recorded baselines)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced-scale run gated against baselines.json")
    parser.add_argument("--record", action="store_true",
                        help="with --smoke: rewrite the e2e_slo baselines")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(record=args.record)
    out = run_e2e_slo_benchmark()
    _assert_e2e_contracts(out)
    print("e2e SLO: all acceptance assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
