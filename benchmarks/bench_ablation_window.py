"""Ablation — selector window length L.

The paper's baseline protocol sweeps the subsequence length
L ∈ {16, ..., 1024} and reports the best per dataset (Sect. B.1).  This
ablation reproduces a reduced sweep and reports how the window length
affects the selection quality of the standard ResNet selector, which also
documents why the reproduction fixes one moderate window size elsewhere.
"""

from __future__ import annotations

import pytest

from repro.core import TrainerConfig
from repro.data import TSBUADBenchmark, build_selector_dataset
from repro.detectors import make_default_model_set
from repro.eval import Oracle, evaluate_selection
from repro.selectors import make_selector
from repro.system.reporting import format_table

from _harness import CACHE_DIR

WINDOW_LENGTHS = [48, 96, 192]


@pytest.mark.benchmark(group="ablation-window")
def test_ablation_window_length(benchmark, bench_world):
    """Train the standard ResNet selector at several window lengths."""
    # Rebuild the windowed dataset per length from the already-labelled series.
    scale = bench_world.scale
    split = TSBUADBenchmark(
        n_train_per_dataset=scale["n_train_per_dataset"],
        n_test_per_dataset=scale["n_test_per_dataset"],
        series_length=scale["series_length"],
        seed=7,
    ).load()
    oracle = Oracle(make_default_model_set(window=scale["detector_window"], fast=True),
                    metric="auc_pr", cache_dir=CACHE_DIR)
    perf_train = oracle.performance_matrix(split.train_records)

    def experiment():
        results = {}
        for window in WINDOW_LENGTHS:
            dataset = build_selector_dataset(
                split.train_records, perf_train, oracle.detector_names,
                window=window, stride=window // 2, seed=0,
            )
            selector = make_selector("ResNet", window=window, n_classes=dataset.n_classes,
                                     mid_channels=12, num_layers=2, seed=0)
            selector.fit(dataset, config=TrainerConfig(epochs=scale["epochs"],
                                                       batch_size=scale["batch_size"], seed=0))
            evaluation = evaluate_selection(
                selector, bench_world.test_records, bench_world.perf_test,
                bench_world.detector_names, window=window,
            )
            results[window] = (evaluation.average_score, selector.last_report_.total_time)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n=== Ablation: selector window length ===")
    rows = [[f"L={window}", auc, time_s] for window, (auc, time_s) in results.items()]
    print(format_table(["Window", "Avg AUC-PR", "Train time s"], rows))

    for auc, _ in results.values():
        assert 0.0 < auc <= 1.0
