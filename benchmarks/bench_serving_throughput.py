"""Serving throughput — cold sequential vs batched vs warm-cache selection.

The serving layer (``repro.serving``) reorganises the one-shot pipeline's
per-series work for query traffic: batches of series share one windowing
pass and one chunked selector forward pass, and a content-addressed LRU
cache answers repeated queries without touching the selector.  This
benchmark measures all three regimes on the same query set:

* **cold sequential** — the one-shot path (:func:`predict_for_series`
  per series), the pre-serving baseline,
* **cold batched**    — ``SelectionService.select_batch`` with an empty
  cache (vectorised windowing + one forward pass),
* **warm batched**    — the same batch again, now answered from the cache.

A second benchmark pins the **selector tiers** of ``repro.distill``: the
teacher is distilled into a float student and a gated int8 student, the
teacher itself is quantized into the int8 teacher tier, and each tier's
forward throughput and selection agreement are measured on the same
query windows.

Acceptance (checked by assertions):

* batched selections are **bitwise identical** to sequential ones
  (same selected model, same aggregated vote vector),
* warm-cache batched serving is **>= 5x** faster than cold sequential,
* the int8 student's forward throughput is **>= 3x** the teacher's while
  its per-window selections agree with the teacher on **>= 97 %** of
  held-out query windows,
* the int8 **teacher** tier clears the same bar — forward throughput
  **>= 3x** the float teacher at **>= 97 %** window agreement — and
* the teacher's float64 probabilities are **bitwise identical** before
  and after distillation/quantization (the fast paths never perturb the
  slow path).

Run modes:

* ``pytest benchmarks/bench_serving_throughput.py`` — full scale,
  asserts everything above.
* ``python benchmarks/bench_serving_throughput.py --smoke`` — CI gate at
  reduced scale: asserts the agreement/bitwise contracts absolutely,
  then compares the measured tier speedups against the
  ``selector_tiers`` and ``teacher_int8`` sections of
  ``benchmarks/baselines.json`` and fails on a > 20 % regression.
  ``--record`` rewrites those sections.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import TrainerConfig
from repro.data import build_selector_dataset, generate_series
from repro.data.records import DATASET_NAMES
from repro.data.windows import extract_windows
from repro.distill import (
    DistillConfig,
    distill_student,
    quantize_student,
    quantize_teacher,
    selection_agreement,
)
from repro.eval import aggregate_window_probas, predict_for_series
from repro.selectors import make_selector
from repro.serving import SelectionService, ServingConfig, configure_transform_cache
from repro.system.reporting import format_cache_stats, format_table

BASELINES_PATH = Path(__file__).resolve().parent / "baselines.json"

#: Benchmark scale (small enough for CPU laptops; raise for stress runs).
SERVING_SCALE = {
    "n_train_series": 8,
    "n_query_series": 48,
    "train_length": 800,
    "query_length": 1600,
    "window": 96,
    "epochs": 2,
    "seed": 0,
}

#: Selector-tier benchmark scale (transfer set + distillation budget).
TIER_SCALE = {
    "n_transfer_series": 24,
    "transfer_length": 1600,
    "transfer_stride": 48,
    "distill_epochs": 30,
    "features": "stats",
    "timing_repeats": 3,
}

#: The acceptance threshold: warm cache must beat cold sequential by this.
MIN_WARM_SPEEDUP = 5.0

#: Tier acceptance: int8 student forward throughput vs the teacher ...
MIN_INT8_SPEEDUP = 3.0
#: ... at at least this per-window selection agreement with the teacher.
MIN_TIER_AGREEMENT = 0.97

#: smoke gate: tier speedups may regress at most 20 % below the baselines
REGRESSION_TOLERANCE = 0.8


def _build_selector(scale):
    """Train a small MLP selector on synthetic oracle knowledge."""
    names = DATASET_NAMES[: scale["n_train_series"]]
    train_records = [generate_series(name, 0, scale["train_length"], seed=scale["seed"])
                     for name in names]
    detector_names = ["IForest", "LOF", "HBOS", "MP", "POLY", "CNN"]
    gen = np.random.default_rng(scale["seed"] + 1)
    matrix = gen.uniform(0.05, 0.4, size=(len(train_records), len(detector_names)))
    matrix[np.arange(len(train_records)), np.arange(len(train_records)) % len(detector_names)] += 0.5

    dataset = build_selector_dataset(train_records, matrix, detector_names,
                                     window=scale["window"], stride=scale["window"],
                                     seed=scale["seed"])
    # ResNet is the paper's default selector architecture — the realistic
    # (convolutional, forward-pass-bound) serving workload.
    selector = make_selector("ResNet", window=scale["window"], n_classes=dataset.n_classes,
                             mid_channels=12, num_layers=2, seed=scale["seed"])
    selector.fit(dataset, config=TrainerConfig(epochs=scale["epochs"], batch_size=64,
                                               seed=scale["seed"]))
    return selector, detector_names


def _query_records(scale):
    families = DATASET_NAMES[: min(8, len(DATASET_NAMES))]
    return [
        generate_series(families[i % len(families)], i, scale["query_length"],
                        seed=scale["seed"] + 2)
        for i in range(scale["n_query_series"])
    ]


def run_serving_benchmark(scale=None):
    """Time the three serving regimes; returns rates, results and stats."""
    scale = dict(SERVING_SCALE, **(scale or {}))
    selector, detector_names = _build_selector(scale)
    records = _query_records(scale)
    window = scale["window"]

    # Cold sequential: the pre-serving, per-series path.
    start = time.perf_counter()
    sequential = [predict_for_series(selector, record, window) for record in records]
    seq_time = time.perf_counter() - start

    # Cold batched: one windowing pass + one chunked forward pass.
    service = SelectionService(selector, detector_names, ServingConfig(window=window))
    start = time.perf_counter()
    cold_results = service.select_batch(records)
    cold_time = time.perf_counter() - start

    # Warm batched: answered entirely from the content-addressed cache.
    start = time.perf_counter()
    warm_results = service.select_batch(records)
    warm_time = time.perf_counter() - start

    # --- equivalence: batched results must be bitwise identical ---------- #
    for record, (choice, aggregated), cold, warm in zip(records, sequential,
                                                        cold_results, warm_results):
        assert cold.selected_index == choice, f"batch != sequential on {record.name}"
        assert cold.selected_model == detector_names[choice]
        assert list(cold.votes.values()) == [float(v) for v in aggregated], \
            f"vote vector differs on {record.name}"
        assert warm.votes == cold.votes and warm.selected_index == cold.selected_index
    assert all(r.from_cache for r in warm_results)

    n = len(records)
    return {
        "n_series": n,
        "seq_time": seq_time,
        "cold_time": cold_time,
        "warm_time": warm_time,
        "rates": {
            "cold sequential": n / seq_time,
            "cold batched": n / cold_time,
            "warm batched": n / warm_time,
        },
        "warm_speedup": seq_time / warm_time,
        "batch_speedup": seq_time / cold_time,
        "stats": service.stats,
    }


@pytest.mark.benchmark(group="serving-throughput")
def test_serving_throughput(benchmark):
    """Warm-cache batched serving must beat cold sequential by >= 5x."""
    out = benchmark.pedantic(run_serving_benchmark, rounds=1, iterations=1)

    rows = [[label, f"{rate:.1f}"] for label, rate in out["rates"].items()]
    rows.append(["warm speedup vs cold sequential", f"{out['warm_speedup']:.1f}x"])
    rows.append(["batch speedup vs cold sequential", f"{out['batch_speedup']:.2f}x"])
    print()
    print(format_table(["regime", "series/sec"], rows))
    print(format_cache_stats(out["stats"]))

    assert out["warm_speedup"] >= MIN_WARM_SPEEDUP, (
        f"warm cache only {out['warm_speedup']:.1f}x faster than cold sequential "
        f"(need >= {MIN_WARM_SPEEDUP}x)"
    )


# --------------------------------------------------------------------------- #
# selector tiers: teacher vs distilled student vs int8 student
# --------------------------------------------------------------------------- #
def _transfer_windows(scale, tier_scale):
    """Fresh series from the training families, windowed as a transfer set."""
    families = DATASET_NAMES[: scale["n_train_series"]]
    records = [
        generate_series(families[i % len(families)], i, tier_scale["transfer_length"],
                        seed=scale["seed"] + 3)
        for i in range(tier_scale["n_transfer_series"])
    ]
    return np.vstack([
        extract_windows(r.series, scale["window"], stride=tier_scale["transfer_stride"])
        for r in records
    ])


def _timed_forward(selector, windows, repeats):
    """Best-of-``repeats`` cold forward pass (transform cache reset each time)."""
    best = np.inf
    proba = None
    for _ in range(repeats):
        configure_transform_cache(None)  # drop memoised transforms: cold path
        start = time.perf_counter()
        proba = selector.predict_proba(windows)
        best = min(best, time.perf_counter() - start)
    return proba, best


def run_selector_tier_benchmark(scale=None, tier_scale=None, verbose=True):
    """Distill + quantize the benchmark teacher and race the four tiers."""
    scale = dict(SERVING_SCALE, **(scale or {}))
    tier_scale = dict(TIER_SCALE, **(tier_scale or {}))
    window = scale["window"]

    teacher, detector_names = _build_selector(scale)
    records = _query_records(scale)
    query_windows = np.vstack([extract_windows(r.series, window) for r in records])
    per_series = [len(extract_windows(r.series, window)) for r in records]

    # The float64 teacher path must be bitwise untouched by distillation.
    teacher_before = teacher.predict_proba(query_windows)

    config = DistillConfig(epochs=tier_scale["distill_epochs"],
                           features=tier_scale["features"],
                           seed=scale["seed"])
    transfer = _transfer_windows(scale, tier_scale)
    student, report = distill_student(teacher, transfer, detector_names, config)
    quantized, gate = quantize_student(student, transfer,
                                       min_agreement=MIN_TIER_AGREEMENT)
    teacher_int8, teacher_gate = quantize_teacher(teacher, transfer,
                                                  min_agreement=MIN_TIER_AGREEMENT)

    repeats = tier_scale["timing_repeats"]
    tiers = {"teacher": teacher, "teacher-int8": teacher_int8,
             "student": student, "student-int8": quantized}
    probas, times = {}, {}
    for tier, selector in tiers.items():
        probas[tier], times[tier] = _timed_forward(selector, query_windows, repeats)

    assert np.array_equal(probas["teacher"], teacher_before), \
        "distillation/quantization perturbed the float64 teacher probabilities"

    n_windows = len(query_windows)
    out = {
        "n_windows": n_windows,
        "report": report,
        "gate": gate,
        "teacher_gate": teacher_gate,
        "throughput": {t: n_windows / dt for t, dt in times.items()},
        "speedup": {t: times["teacher"] / dt for t, dt in times.items()},
        "window_agreement": {
            t: selection_agreement(probas[t], probas["teacher"]) for t in tiers
        },
    }

    # per-series selections through the shared vote aggregation
    series_agree = {t: 0 for t in tiers}
    offset = 0
    for count in per_series:
        rows = slice(offset, offset + count)
        picks = {t: aggregate_window_probas(probas[t][rows], "vote")[0] for t in tiers}
        for t in tiers:
            series_agree[t] += int(picks[t] == picks["teacher"])
        offset += count
    out["series_agreement"] = {t: series_agree[t] / len(per_series) for t in tiers}

    if verbose:
        rows = [[t, f"{out['throughput'][t]:.0f}", f"{out['speedup'][t]:.2f}x",
                 f"{out['window_agreement'][t]:.4f}", f"{out['series_agreement'][t]:.4f}"]
                for t in tiers]
        print(format_table(
            ["tier", "windows/sec", "speedup", "window agreement", "series agreement"],
            rows))
        print(f"teacher params: {report.teacher_parameters}  "
              f"student params: {report.student_parameters}  "
              f"int8 gate agreement: {gate['agreement']:.4f} "
              f"(max |dproba| {gate['max_proba_diff']:.4f})")
        print(f"teacher-int8 gate agreement: {teacher_gate['agreement']:.4f} "
              f"(max |dproba| {teacher_gate['max_proba_diff']:.4f})  "
              f"scales hash {teacher_gate['act_scales_hash']}")
    return out


def _assert_tier_contracts(out):
    """The scale-independent tier contracts (shared by pytest and smoke)."""
    for tier in ("student-int8", "teacher-int8"):
        assert out["speedup"][tier] >= MIN_INT8_SPEEDUP, (
            f"{tier} only {out['speedup'][tier]:.2f}x faster than the "
            f"teacher (need >= {MIN_INT8_SPEEDUP}x)")
    for tier in ("student", "student-int8", "teacher-int8"):
        agreement = out["window_agreement"][tier]
        assert agreement >= MIN_TIER_AGREEMENT, (
            f"{tier} agrees with the teacher on only {agreement:.4f} of query "
            f"windows (need >= {MIN_TIER_AGREEMENT})")


@pytest.mark.benchmark(group="serving-throughput")
def test_selector_tier_throughput(benchmark):
    """Int8 student: >= 3x teacher throughput at >= 0.97 window agreement."""
    out = benchmark.pedantic(run_selector_tier_benchmark, rounds=1, iterations=1)
    _assert_tier_contracts(out)


# --------------------------------------------------------------------------- #
# smoke mode (CI gate against recorded baselines)
# --------------------------------------------------------------------------- #
def run_smoke(record: bool = False) -> int:
    out = run_selector_tier_benchmark(
        scale={"n_query_series": 16, "epochs": 1},
        tier_scale={"n_transfer_series": 12, "distill_epochs": 15,
                    "timing_repeats": 2},
    )
    _assert_tier_contracts(out)  # absolute contracts hold at any scale
    measured = {
        "int8_speedup": round(out["speedup"]["student-int8"], 3),
        "student_speedup": round(out["speedup"]["student"], 3),
    }
    int8_teacher = {
        "forward_speedup": round(out["speedup"]["teacher-int8"], 3),
        "window_agreement": round(out["window_agreement"]["teacher-int8"], 4),
    }
    print(f"smoke measurements: {json.dumps({**measured, 'teacher_int8': int8_teacher})}")

    if record:
        # merge into the shared baselines file — other benchmarks keep
        # their own sections (e.g. smoke, service_smoke)
        baselines_doc = json.loads(BASELINES_PATH.read_text()) \
            if BASELINES_PATH.exists() else {}
        baselines_doc["selector_tiers"] = {
            "description": ("bench_serving_throughput --smoke baselines "
                            "(tier speedups; regenerate with --record)"),
            **measured,
        }
        baselines_doc["teacher_int8"] = {
            "description": ("bench_serving_throughput --smoke baselines for the "
                            "int8 teacher tier (regenerate with --record)"),
            **int8_teacher,
        }
        BASELINES_PATH.write_text(json.dumps(baselines_doc, indent=2) + "\n")
        print(f"recorded baselines -> {BASELINES_PATH}")
        return 0

    baselines_doc = json.loads(BASELINES_PATH.read_text())
    baselines = baselines_doc["selector_tiers"]
    teacher_baselines = baselines_doc.get("teacher_int8", {})
    failures = []
    for key, baseline in measured.items():
        floor = REGRESSION_TOLERANCE * baselines[key]
        if measured[key] < floor:
            failures.append(f"{key}: measured {measured[key]:.2f} < "
                            f"{floor:.2f} (80% of baseline {baselines[key]:.2f})")
    baseline_speedup = teacher_baselines.get("forward_speedup")
    if baseline_speedup is None:
        failures.append("teacher_int8 baselines missing — run with --record")
    elif int8_teacher["forward_speedup"] < REGRESSION_TOLERANCE * baseline_speedup:
        failures.append(
            f"teacher_int8 forward_speedup: measured "
            f"{int8_teacher['forward_speedup']:.2f} < "
            f"{REGRESSION_TOLERANCE * baseline_speedup:.2f} "
            f"(80% of baseline {baseline_speedup:.2f})")
    if failures:
        print("SMOKE REGRESSION:\n  " + "\n  ".join(failures))
        return 1
    print("smoke: OK (within 20% of recorded baselines)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced-scale tier run gated against baselines.json")
    parser.add_argument("--record", action="store_true",
                        help="with --smoke: rewrite the selector_tiers baselines")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(record=args.record)
    out = run_serving_benchmark()
    for label, rate in out["rates"].items():
        print(f"{label:>16}: {rate:10.1f} series/sec")
    print(f"warm speedup: {out['warm_speedup']:.1f}x  (threshold {MIN_WARM_SPEEDUP}x)")
    tiers = run_selector_tier_benchmark()
    _assert_tier_contracts(tiers)
    print("selector tiers: all acceptance assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
