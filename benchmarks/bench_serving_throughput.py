"""Serving throughput — cold sequential vs batched vs warm-cache selection.

The serving layer (``repro.serving``) reorganises the one-shot pipeline's
per-series work for query traffic: batches of series share one windowing
pass and one chunked selector forward pass, and a content-addressed LRU
cache answers repeated queries without touching the selector.  This
benchmark measures all three regimes on the same query set:

* **cold sequential** — the one-shot path (:func:`predict_for_series`
  per series), the pre-serving baseline,
* **cold batched**    — ``SelectionService.select_batch`` with an empty
  cache (vectorised windowing + one forward pass),
* **warm batched**    — the same batch again, now answered from the cache.

Acceptance (checked by assertions):

* batched selections are **bitwise identical** to sequential ones
  (same selected model, same aggregated vote vector), and
* warm-cache batched serving is **>= 5x** faster than cold sequential.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import TrainerConfig
from repro.data import build_selector_dataset, generate_series
from repro.data.records import DATASET_NAMES
from repro.eval import predict_for_series
from repro.selectors import make_selector
from repro.serving import SelectionService, ServingConfig
from repro.system.reporting import format_cache_stats, format_table

#: Benchmark scale (small enough for CPU laptops; raise for stress runs).
SERVING_SCALE = {
    "n_train_series": 8,
    "n_query_series": 48,
    "train_length": 800,
    "query_length": 1600,
    "window": 96,
    "epochs": 2,
    "seed": 0,
}

#: The acceptance threshold: warm cache must beat cold sequential by this.
MIN_WARM_SPEEDUP = 5.0


def _build_selector(scale):
    """Train a small MLP selector on synthetic oracle knowledge."""
    names = DATASET_NAMES[: scale["n_train_series"]]
    train_records = [generate_series(name, 0, scale["train_length"], seed=scale["seed"])
                     for name in names]
    detector_names = ["IForest", "LOF", "HBOS", "MP", "POLY", "CNN"]
    gen = np.random.default_rng(scale["seed"] + 1)
    matrix = gen.uniform(0.05, 0.4, size=(len(train_records), len(detector_names)))
    matrix[np.arange(len(train_records)), np.arange(len(train_records)) % len(detector_names)] += 0.5

    dataset = build_selector_dataset(train_records, matrix, detector_names,
                                     window=scale["window"], stride=scale["window"],
                                     seed=scale["seed"])
    # ResNet is the paper's default selector architecture — the realistic
    # (convolutional, forward-pass-bound) serving workload.
    selector = make_selector("ResNet", window=scale["window"], n_classes=dataset.n_classes,
                             mid_channels=12, num_layers=2, seed=scale["seed"])
    selector.fit(dataset, config=TrainerConfig(epochs=scale["epochs"], batch_size=64,
                                               seed=scale["seed"]))
    return selector, detector_names


def _query_records(scale):
    families = DATASET_NAMES[: min(8, len(DATASET_NAMES))]
    return [
        generate_series(families[i % len(families)], i, scale["query_length"],
                        seed=scale["seed"] + 2)
        for i in range(scale["n_query_series"])
    ]


def run_serving_benchmark(scale=None):
    """Time the three serving regimes; returns rates, results and stats."""
    scale = dict(SERVING_SCALE, **(scale or {}))
    selector, detector_names = _build_selector(scale)
    records = _query_records(scale)
    window = scale["window"]

    # Cold sequential: the pre-serving, per-series path.
    start = time.perf_counter()
    sequential = [predict_for_series(selector, record, window) for record in records]
    seq_time = time.perf_counter() - start

    # Cold batched: one windowing pass + one chunked forward pass.
    service = SelectionService(selector, detector_names, ServingConfig(window=window))
    start = time.perf_counter()
    cold_results = service.select_batch(records)
    cold_time = time.perf_counter() - start

    # Warm batched: answered entirely from the content-addressed cache.
    start = time.perf_counter()
    warm_results = service.select_batch(records)
    warm_time = time.perf_counter() - start

    # --- equivalence: batched results must be bitwise identical ---------- #
    for record, (choice, aggregated), cold, warm in zip(records, sequential,
                                                        cold_results, warm_results):
        assert cold.selected_index == choice, f"batch != sequential on {record.name}"
        assert cold.selected_model == detector_names[choice]
        assert list(cold.votes.values()) == [float(v) for v in aggregated], \
            f"vote vector differs on {record.name}"
        assert warm.votes == cold.votes and warm.selected_index == cold.selected_index
    assert all(r.from_cache for r in warm_results)

    n = len(records)
    return {
        "n_series": n,
        "seq_time": seq_time,
        "cold_time": cold_time,
        "warm_time": warm_time,
        "rates": {
            "cold sequential": n / seq_time,
            "cold batched": n / cold_time,
            "warm batched": n / warm_time,
        },
        "warm_speedup": seq_time / warm_time,
        "batch_speedup": seq_time / cold_time,
        "stats": service.stats,
    }


@pytest.mark.benchmark(group="serving-throughput")
def test_serving_throughput(benchmark):
    """Warm-cache batched serving must beat cold sequential by >= 5x."""
    out = benchmark.pedantic(run_serving_benchmark, rounds=1, iterations=1)

    rows = [[label, f"{rate:.1f}"] for label, rate in out["rates"].items()]
    rows.append(["warm speedup vs cold sequential", f"{out['warm_speedup']:.1f}x"])
    rows.append(["batch speedup vs cold sequential", f"{out['batch_speedup']:.2f}x"])
    print()
    print(format_table(["regime", "series/sec"], rows))
    print(format_cache_stats(out["stats"]))

    assert out["warm_speedup"] >= MIN_WARM_SPEEDUP, (
        f"warm cache only {out['warm_speedup']:.1f}x faster than cold sequential "
        f"(need >= {MIN_WARM_SPEEDUP}x)"
    )


if __name__ == "__main__":  # pragma: no cover - manual smoke entry point
    out = run_serving_benchmark()
    for label, rate in out["rates"].items():
        print(f"{label:>16}: {rate:10.1f} series/sec")
    print(f"warm speedup: {out['warm_speedup']:.1f}x  (threshold {MIN_WARM_SPEEDUP}x)")
