"""Micro-benchmarks of the KDSelector building blocks.

These use pytest-benchmark's repeated timing (unlike the table benches,
which run the full experiment once) and track the cost of the pieces the
paper's training loop touches every step: soft-label computation (PISL),
frozen text embedding + InfoNCE (MKI), SimHash signatures and bucket
construction (PA), the selector forward/backward pass, and the oracle's
per-detector scoring.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import PruningConfig, PAPruner, SimHashLSH, performance_to_soft_labels
from repro.core.mki import MKIModule
from repro.core.config import MKIConfig
from repro.data import generate_series
from repro.detectors import make_detector
from repro.selectors import ResNetEncoder, extract_features
from repro.text import HashingTextEncoder

RNG = np.random.default_rng(0)


@pytest.mark.benchmark(group="micro-pisl")
def test_micro_soft_label_computation(benchmark):
    performances = RNG.uniform(0, 1, size=(2048, 12))
    result = benchmark(performance_to_soft_labels, performances, 0.25)
    assert result.shape == (2048, 12)


@pytest.mark.benchmark(group="micro-mki")
def test_micro_text_embedding(benchmark):
    encoder = HashingTextEncoder(dim=768)
    texts = [
        f"This is a time series from dataset ECG. The length of the series is {1000 + i}. "
        f"There are {i % 4} anomalies in this series."
        for i in range(64)
    ]

    def encode():
        encoder._cache.clear()  # measure cold encoding, not the cache
        return encoder.encode(texts)

    out = benchmark(encode)
    assert out.shape == (64, 768)


@pytest.mark.benchmark(group="micro-mki")
def test_micro_infonce_loss(benchmark):
    config = MKIConfig(enabled=True, projection_dim=64, text_dim=256)
    module = MKIModule(feature_dim=64, config=config)
    features = nn.Tensor(RNG.normal(size=(64, 64)), requires_grad=True)
    embeddings = RNG.normal(size=(64, 256))

    def loss_and_grad():
        loss = module.loss(features, embeddings).mean()
        loss.backward()
        return loss.item()

    value = benchmark(loss_and_grad)
    assert value > 0


@pytest.mark.benchmark(group="micro-pa")
def test_micro_simhash_signatures(benchmark):
    windows = RNG.normal(size=(4096, 128))
    lsh = SimHashLSH(n_bits=14, seed=0).fit(windows)
    signatures = benchmark(lsh.signatures, windows)
    assert signatures.shape == (4096,)


@pytest.mark.benchmark(group="micro-pa")
def test_micro_pa_selection(benchmark):
    n = 4096
    config = PruningConfig(method="pa", ratio=0.8, lsh_bits=14, n_bins=8,
                           full_data_last_fraction=0.0)
    pruner = PAPruner(n, config, total_epochs=10, seed=0)
    pruner.setup(RNG.normal(size=(n, 128)))
    pruner.update(np.arange(n), RNG.uniform(0, 2, size=n))

    indices, weights = benchmark(pruner.select, 1)
    assert len(indices) == len(weights)
    assert len(indices) < n


@pytest.mark.benchmark(group="micro-selector")
def test_micro_resnet_forward_backward(benchmark):
    nn.init.set_seed(0)
    encoder = ResNetEncoder(mid_channels=12, num_layers=2)
    head = nn.Linear(encoder.feature_dim, 12)
    batch = RNG.normal(size=(64, 1, 96))
    labels = RNG.integers(0, 12, size=64)

    def step():
        logits = head(encoder(nn.Tensor(batch)))
        loss = nn.cross_entropy(logits, labels)
        encoder.zero_grad()
        head.zero_grad()
        loss.backward()
        return loss.item()

    value = benchmark(step)
    assert value > 0


@pytest.mark.benchmark(group="micro-selector")
def test_micro_feature_extraction(benchmark):
    windows = RNG.normal(size=(512, 96))
    features = benchmark(extract_features, windows)
    assert features.shape[0] == 512


@pytest.mark.benchmark(group="micro-oracle")
@pytest.mark.parametrize("detector_name", ["IForest", "MP", "HBOS", "POLY"])
def test_micro_detector_scoring(benchmark, detector_name):
    record = generate_series("IOPS", 0, 1000, seed=3)
    detector = make_detector(detector_name, window=24)
    scores = benchmark(detector.detect, record.series)
    assert scores.shape == record.series.shape
