"""Scalability — model selection vs running everything (ensembling).

The paper motivates model selection as the scalable alternative to
ensembles: an ensemble must run all ``m`` candidate detectors per series,
while a selector runs exactly one.  This benchmark measures the detection
cost (wall-clock per series) and the quality of four strategies on the same
test series:

* single best detector (no selection),
* the learned selector ("Ours": ResNet + PISL + MKI),
* the mean ensemble of all 12 detectors,
* the oracle (perfect per-series selection — quality ceiling, cost of one).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import MKIConfig, PISLConfig
from repro.detectors import DetectorEnsemble, make_default_model_set
from repro.eval import auc_pr, oracle_upper_bound, single_best_baseline
from repro.system.reporting import format_table

from _harness import default_trainer_config, train_and_evaluate


@pytest.mark.benchmark(group="scalability")
def test_scalability_selection_vs_ensemble(benchmark, bench_world):
    """Quality and per-series detection cost of selection vs ensembling."""

    def experiment():
        # Quality of the learned selector (reuses the Fig. 4 "Ours" config).
        ours_config = default_trainer_config(bench_world, seed=0).replace(
            pisl=PISLConfig(enabled=True, alpha=0.4, t_soft=0.25),
            mki=MKIConfig(enabled=True, weight=0.78, projection_dim=64),
        )
        ours = train_and_evaluate("ResNet", bench_world, trainer_config=ours_config, label="Ours")

        # Reference points from the oracle matrix.
        upper = oracle_upper_bound(bench_world.test_records, bench_world.perf_test)
        single = single_best_baseline(bench_world.test_records, bench_world.perf_test,
                                      bench_world.detector_names)
        oracle_avg = float(np.mean(list(upper.values())))
        single_avg = float(np.mean([v for k, v in single.items() if not k.startswith("__")]))

        # Detection cost and ensemble quality measured on a handful of series.
        sample_records = bench_world.test_records[:4]
        window = bench_world.scale["detector_window"]
        model_set = make_default_model_set(window=window, fast=True)
        ensemble = DetectorEnsemble(model_set=model_set, aggregation="mean", window=window)

        single_name = single["__detector_name__"]
        start = time.perf_counter()
        single_scores = [model_set[single_name].detect(r.series) for r in sample_records]
        single_cost = (time.perf_counter() - start) / len(sample_records)

        start = time.perf_counter()
        ensemble_scores = [ensemble.detect(r.series) for r in sample_records]
        ensemble_cost = (time.perf_counter() - start) / len(sample_records)

        ensemble_quality = float(np.mean([
            auc_pr(record.labels, scores)
            for record, scores in zip(sample_records, ensemble_scores)
        ]))
        del single_scores
        return {
            "ours": ours,
            "oracle_avg": oracle_avg,
            "single_avg": single_avg,
            "single_name": single_name,
            "single_cost": single_cost,
            "ensemble_cost": ensemble_cost,
            "ensemble_quality": ensemble_quality,
            "n_detectors": len(model_set),
        }

    out = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n=== Scalability: selection vs ensembling ===")
    rows = [
        [f"Single best ({out['single_name']})", out["single_avg"], "1 detector run", f"{out['single_cost']:.2f}s"],
        ["Learned selector (Ours)", out["ours"].average_auc_pr, "1 detector run", f"~{out['single_cost']:.2f}s"],
        ["Mean ensemble (all 12)", out["ensemble_quality"],
         f"{out['n_detectors']} detector runs", f"{out['ensemble_cost']:.2f}s"],
        ["Oracle selection (ceiling)", out["oracle_avg"], "1 detector run", "-"],
    ]
    print(format_table(["Strategy", "Avg AUC-PR", "Detection cost / series", "Measured cost"], rows))

    # Shape checks: the ensemble is far more expensive per series; the learned
    # selector beats the single-best baseline and stays below the oracle.
    assert out["ensemble_cost"] > 3.0 * out["single_cost"]
    assert out["ours"].average_auc_pr >= out["single_avg"] - 0.05
    assert out["ours"].average_auc_pr <= out["oracle_avg"] + 1e-9
