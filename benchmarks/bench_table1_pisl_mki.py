"""Table 1 / Table 6 — effect of PISL and MKI on selector accuracy.

Paper (ResNet selector, 16 TSB-UAD subsets):

    Method        Standard   +PISL    +MKI    +PISL & MKI
    AUC-PR        0.421      0.449    0.424   0.461
    Time (mins)   281.90     280.42   282.05  282.03

Expected shape at this reproduction's scale: the knowledge-enhanced
configurations (especially PISL & MKI together) match or beat the standard
framework in average AUC-PR of the selected detectors, while the training
time overhead stays negligible (within a few percent).
"""

from __future__ import annotations

import pytest

from repro.core import MKIConfig, PISLConfig, TrainerConfig
from repro.system.reporting import format_table, per_dataset_table

from _harness import default_trainer_config, train_and_evaluate

PAPER_ROWS = {
    "Standard": (0.421, 281.90),
    "+PISL": (0.449, 280.42),
    "+MKI": (0.424, 282.05),
    "+PISL & MKI": (0.461, 282.03),
}


def _configs(world):
    base = default_trainer_config(world, seed=0)
    pisl = PISLConfig(enabled=True, alpha=0.4, t_soft=0.25)
    mki = MKIConfig(enabled=True, weight=0.78, projection_dim=64)
    return {
        "Standard": base,
        "+PISL": base.replace(pisl=pisl),
        "+MKI": base.replace(mki=mki),
        "+PISL & MKI": base.replace(pisl=pisl, mki=mki),
    }


@pytest.mark.benchmark(group="table1")
def test_table1_pisl_mki(benchmark, bench_world):
    """Train the ResNet selector under the four Table-1 configurations."""

    def experiment():
        results = {}
        for label, config in _configs(bench_world).items():
            results[label] = train_and_evaluate("ResNet", bench_world, trainer_config=config, label=label)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n=== Table 1: Results of PISL and MKI (reproduction) ===")
    rows = []
    for label, run in results.items():
        paper_auc, paper_time = PAPER_ROWS[label]
        rows.append([label, run.average_auc_pr, run.training_time_s,
                     paper_auc, paper_time])
    print(format_table(
        ["Method", "AUC-PR (ours)", "Time s (ours)", "AUC-PR (paper)", "Time min (paper)"], rows
    ))
    print("\nPer-dataset AUC-PR (reproduction, cf. paper Table 6):")
    print(per_dataset_table({label: run.per_dataset for label, run in results.items()}))

    # Shape checks (not absolute-value checks): knowledge enhancement should
    # not hurt, and the combined configuration should be at least as good as
    # the plain standard framework.  Training-time overhead stays small.
    standard = results["Standard"]
    combined = results["+PISL & MKI"]
    assert combined.average_auc_pr >= standard.average_auc_pr - 0.05
    for run in results.values():
        assert run.average_auc_pr > 0.0
    # MKI/PISL do not use pruning here, so no samples should be skipped.
    assert all(run.pruned_fraction == 0.0 for run in results.values())
