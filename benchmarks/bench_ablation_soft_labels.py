"""Ablation — PISL hyper-parameters (alpha and the soft-label temperature).

The paper selects alpha from {0.2, 0.4, 1.0} and t_soft from
{0.2, 0.22, 0.25} (Sect. B.1).  This ablation sweeps the mixing weight to
show how the balance between the hard label and the performance-derived
soft label affects the selector, and verifies the degenerate cases:
alpha = 0 is exactly the standard framework, alpha = 1 ignores hard labels.
"""

from __future__ import annotations

import pytest

from repro.core import PISLConfig
from repro.system.reporting import format_table

from _harness import default_trainer_config, train_and_evaluate

ALPHAS = [0.0, 0.2, 0.4, 1.0]


@pytest.mark.benchmark(group="ablation-pisl")
def test_ablation_pisl_alpha(benchmark, bench_world):
    """Sweep the PISL mixing weight alpha at fixed t_soft."""

    def experiment():
        results = {}
        for alpha in ALPHAS:
            config = default_trainer_config(bench_world, seed=0)
            if alpha > 0:
                config = config.replace(pisl=PISLConfig(enabled=True, alpha=alpha, t_soft=0.25))
            label = f"alpha={alpha}"
            results[label] = train_and_evaluate("ResNet", bench_world, trainer_config=config, label=label)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n=== Ablation: PISL mixing weight alpha (t_soft = 0.25) ===")
    rows = [[label, run.average_auc_pr, run.training_time_s] for label, run in results.items()]
    print(format_table(["Config", "Avg AUC-PR", "Train time s"], rows))

    values = [run.average_auc_pr for run in results.values()]
    assert all(0.0 < v <= 1.0 for v in values)
    # Soft labels should not catastrophically hurt at any mixing weight.
    baseline = results["alpha=0.0"].average_auc_pr
    assert max(values) >= baseline - 1e-9
    assert min(values) >= baseline - 0.12
