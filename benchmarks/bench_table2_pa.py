"""Table 2 / Table 7 — pruning-based acceleration vs InfoBatch vs full data.

Paper (ResNet selector with PISL + MKI enabled, 16 TSB-UAD subsets):

    Method        Full data   +InfoBatch        +PA (Ours)
    AUC-PR        0.461       0.455 (-0.006)    0.452 (-0.009)
    Time (mins)   282.03      171.73 (-39.1%)   117.72 (-58.3%)

Expected shape here: both pruning strategies cut the number of processed
samples (and hence training time) substantially, PA prunes at least as much
as InfoBatch, and the accuracy drop stays small.
"""

from __future__ import annotations

import pytest

from repro.core import MKIConfig, PISLConfig, PruningConfig
from repro.system.reporting import format_table, per_dataset_table

from _harness import BENCH_LSH_BITS, default_trainer_config, train_and_evaluate

PAPER_ROWS = {
    "Full data": (0.461, 282.03),
    "+InfoBatch": (0.455, 171.73),
    "+PA (Ours)": (0.452, 117.72),
}


def _configs(world):
    base = default_trainer_config(world, seed=0).replace(
        pisl=PISLConfig(enabled=True, alpha=0.4, t_soft=0.25),
        mki=MKIConfig(enabled=True, weight=0.78, projection_dim=64),
    )
    return {
        "Full data": base,
        "+InfoBatch": base.replace(pruning=PruningConfig(method="infobatch", ratio=0.8)),
        "+PA (Ours)": base.replace(
            pruning=PruningConfig(method="pa", ratio=0.8, lsh_bits=BENCH_LSH_BITS, n_bins=8)
        ),
    }


@pytest.mark.benchmark(group="table2")
def test_table2_pruning_acceleration(benchmark, bench_world):
    """Compare full-data training against InfoBatch and PA pruning."""

    def experiment():
        results = {}
        for label, config in _configs(bench_world).items():
            results[label] = train_and_evaluate("ResNet", bench_world, trainer_config=config, label=label)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    full = results["Full data"]
    print("\n=== Table 2: Results of PA (reproduction) ===")
    rows = []
    for label, run in results.items():
        paper_auc, paper_time = PAPER_ROWS[label]
        saved = 1.0 - run.training_time_s / max(full.training_time_s, 1e-9)
        rows.append([
            label, run.average_auc_pr, run.training_time_s, f"{100 * saved:.1f}%",
            f"{100 * run.pruned_fraction:.1f}%", paper_auc, paper_time,
        ])
    print(format_table(
        ["Method", "AUC-PR (ours)", "Time s (ours)", "Time saved (ours)",
         "Samples pruned", "AUC-PR (paper)", "Time min (paper)"],
        rows,
    ))
    print("\nPer-dataset AUC-PR (reproduction, cf. paper Table 7):")
    print(per_dataset_table({label: run.per_dataset for label, run in results.items()}))

    infobatch = results["+InfoBatch"]
    pa = results["+PA (Ours)"]

    # Shape checks: pruning skips a substantial share of sample visits, PA at
    # least as much as InfoBatch, and accuracy stays within a small margin of
    # full-data training.
    assert full.pruned_fraction == 0.0
    assert infobatch.pruned_fraction > 0.15
    assert pa.pruned_fraction >= infobatch.pruned_fraction - 0.02
    assert pa.average_auc_pr >= full.average_auc_pr - 0.10
    assert infobatch.average_auc_pr >= full.average_auc_pr - 0.10
