"""Streaming throughput — incremental vs from-scratch selection on live ticks.

The streaming engine (``repro.streaming``) turns the one-shot pipeline into
an incremental loop: per tick it windows only the new points, runs the
selector forward pass only over the newly complete windows, and extends the
running vote — where the from-scratch alternative re-windows and
re-classifies the entire prefix on every tick.  This benchmark replays the
same multi-stream tick sequence through both:

* **from-scratch** — per tick and stream, ``predict_for_series`` over the
  whole prefix so far (the pre-streaming baseline),
* **incremental** — the same ticks through ``StreamEngine`` (incremental
  windowing + cross-stream batched forward over new windows only).

Acceptance (checked by assertions):

* at steady state (the second half of the replay, where prefixes are long)
  incremental selection is **>= 5x** faster per tick than from-scratch
  re-selection,
* the final streaming selections are **bitwise identical** to the batch
  pipeline on the same final series (same selected model, same aggregated
  vote vector), and
* streaming per-point anomaly scores (incremental tail re-scoring for
  local detectors, full re-runs for global ones) are **bitwise identical**
  to running the selected detector on the final series.

``python benchmarks/bench_streaming_throughput.py --smoke`` additionally
gates the cost of the ``repro.obs`` instrumentation: the same tick replay
runs once with observability disabled (the default no-op mode) and once
fully instrumented (enabled registry + tracer + in-memory audit log), the
selections must stay bitwise-equal, and the enabled/disabled time ratio
must stay within ``OBS_MAX_OVERHEAD``.  Results are compared against the
``streaming_obs_smoke`` section of ``benchmarks/baselines.json``;
``--record`` rewrites that section (other sections are preserved).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import TrainerConfig
from repro.data import build_selector_dataset, generate_series
from repro.data.records import DATASET_NAMES
from repro.detectors import make_detector
from repro.eval import predict_for_series
from repro.selectors import make_selector
from repro.streaming import StreamEngine, StreamingConfig, replay_records
from repro.system.reporting import format_table

#: Benchmark scale (small enough for CPU laptops; raise for stress runs).
STREAMING_SCALE = {
    "n_train_series": 8,
    "n_streams": 4,
    "train_length": 800,
    "stream_length": 2048,
    "window": 96,
    "chunk": 64,
    "epochs": 2,
    "seed": 0,
}

#: The acceptance threshold: steady-state incremental vs from-scratch per tick.
MIN_STEADY_STATE_SPEEDUP = 5.0

BASELINES_PATH = Path(__file__).resolve().parent / "baselines.json"

#: Reduced scale for the obs-overhead smoke gate (fast enough for CI).
OBS_SMOKE_SCALE = {
    "n_train_series": 4,
    "n_streams": 3,
    "train_length": 400,
    "stream_length": 2048,
    "window": 64,
    "chunk": 64,
    "epochs": 1,
    "seed": 0,
}

#: Hard cap on fully-instrumented vs disabled tick time (the ISSUE budget).
OBS_MAX_OVERHEAD = 1.05

#: Regression ceiling on disabled tick time vs the recorded baseline.  This
#: is an absolute-wall-clock backstop (catching e.g. an accidentally hot
#: no-op path); the primary gate is the machine-independent overhead ratio.
OBS_TICK_TOLERANCE = 1.5


def _build_selector(scale):
    """Train a small ResNet selector on synthetic oracle knowledge."""
    names = DATASET_NAMES[: scale["n_train_series"]]
    train_records = [generate_series(name, 0, scale["train_length"], seed=scale["seed"])
                     for name in names]
    detector_names = ["IForest", "HBOS", "MP", "POLY"]
    gen = np.random.default_rng(scale["seed"] + 1)
    matrix = gen.uniform(0.05, 0.4, size=(len(train_records), len(detector_names)))
    matrix[np.arange(len(train_records)), np.arange(len(train_records)) % len(detector_names)] += 0.5

    dataset = build_selector_dataset(train_records, matrix, detector_names,
                                     window=scale["window"], stride=scale["window"],
                                     seed=scale["seed"])
    selector = make_selector("ResNet", window=scale["window"], n_classes=dataset.n_classes,
                             mid_channels=12, num_layers=2, seed=scale["seed"])
    selector.fit(dataset, config=TrainerConfig(epochs=scale["epochs"], batch_size=64,
                                               seed=scale["seed"]))
    return selector, detector_names


def _stream_records(scale):
    families = DATASET_NAMES[: scale["n_streams"]]
    return [generate_series(families[i % len(families)], i, scale["stream_length"],
                            seed=scale["seed"] + 2)
            for i in range(scale["n_streams"])]


def run_streaming_benchmark(scale=None):
    """Time both regimes on identical ticks; returns times, speedups, stats."""
    scale = dict(STREAMING_SCALE, **(scale or {}))
    selector, detector_names = _build_selector(scale)
    records = _stream_records(scale)
    window, chunk = scale["window"], scale["chunk"]
    n_ticks = -(-scale["stream_length"] // chunk)  # ticks per stream

    # From-scratch: per tick, re-window + re-classify the whole prefix.
    scratch_tick_times = []
    for tick in range(1, n_ticks + 1):
        start = time.perf_counter()
        for record in records:
            prefix = record.series[: tick * chunk]
            predict_for_series(selector, type(record)(
                name=record.name, dataset=record.dataset,
                series=prefix, labels=record.labels[: len(prefix)],
            ), window)
        scratch_tick_times.append(time.perf_counter() - start)

    # Incremental: the same ticks through the streaming engine.
    engine = StreamEngine(selector, detector_names, StreamingConfig(window=window))
    incremental_tick_times = []
    final_updates = {}
    previous = time.perf_counter()
    for updates in replay_records(engine, records, chunk=chunk):
        now = time.perf_counter()
        incremental_tick_times.append(now - previous)
        previous = now
        final_updates.update(updates)

    # --- equivalence: streaming selections == batch pipeline, bitwise ----- #
    for record in records:
        update = final_updates[record.name]
        choice, aggregated = predict_for_series(selector, record, window)
        assert update.selected_index == choice, f"streaming != batch on {record.name}"
        assert update.selected_model == detector_names[choice]
        assert list(update.votes.values()) == [float(v) for v in aggregated], \
            f"vote vector differs on {record.name}"

    # --- equivalence: streaming scores == running the detector in batch --- #
    model_set = {name: make_detector(name, window=16) for name in detector_names}
    scoring_engine = StreamEngine(selector, detector_names,
                                  StreamingConfig(window=window), model_set=model_set)
    short = [type(r)(name=r.name, dataset=r.dataset, series=r.series[:512],
                     labels=r.labels[:512]) for r in records[:2]]
    for _ in replay_records(scoring_engine, short, chunk=chunk):
        pass
    for record in short:
        update = scoring_engine.selection(record.name)
        detector = model_set[detector_names[update.selected_index]]
        streaming_scores = scoring_engine.scores(record.name)
        assert len(streaming_scores) == len(record.series)
        assert np.array_equal(streaming_scores, detector.detect(record.series)), \
            f"streaming scores != batch detection on {record.name}"

    # Steady state: the second half of the replay, where prefixes are long.
    half = len(scratch_tick_times) // 2
    scratch_steady = sum(scratch_tick_times[half:])
    incremental_steady = sum(incremental_tick_times[half:])
    return {
        "n_streams": len(records),
        "n_ticks": len(scratch_tick_times),
        "scratch_time": sum(scratch_tick_times),
        "incremental_time": sum(incremental_tick_times),
        "total_speedup": sum(scratch_tick_times) / sum(incremental_tick_times),
        "steady_state_speedup": scratch_steady / incremental_steady,
        "stats": engine.stats,
    }


@pytest.mark.benchmark(group="streaming-throughput")
def test_streaming_throughput(benchmark):
    """Steady-state incremental selection must beat from-scratch by >= 5x."""
    out = benchmark.pedantic(run_streaming_benchmark, rounds=1, iterations=1)

    stats = out["stats"]
    rows = [
        ["streams x ticks", f"{out['n_streams']} x {out['n_ticks']}"],
        ["from-scratch total", f"{out['scratch_time']:.3f} s"],
        ["incremental total", f"{out['incremental_time']:.3f} s"],
        ["total speedup", f"{out['total_speedup']:.1f}x"],
        ["steady-state speedup", f"{out['steady_state_speedup']:.1f}x"],
        ["windows emitted", stats.windows],
        ["forward-pass windows", stats.forward_windows],
    ]
    print()
    print(format_table(["measure", "value"], rows))

    assert out["steady_state_speedup"] >= MIN_STEADY_STATE_SPEEDUP, (
        f"incremental selection only {out['steady_state_speedup']:.1f}x faster than "
        f"from-scratch at steady state (need >= {MIN_STEADY_STATE_SPEEDUP}x)"
    )


# --------------------------------------------------------------------------- #
# smoke mode: obs instrumentation overhead (CI gate against recorded baselines)
# --------------------------------------------------------------------------- #
def _time_replay(selector, detector_names, records, window, chunk, instrumented):
    """Replay all ticks once; returns (elapsed seconds, final updates).

    With ``instrumented=True`` the engine is constructed under an enabled
    metrics registry, a default tracer and an in-memory audit log — the
    full observability surface; otherwise everything stays in the default
    no-op mode the instrumented call sites see in production.
    """
    from repro import obs

    previous_registry = previous_tracer = audit = None
    if instrumented:
        previous_registry = obs.set_default_registry(obs.MetricsRegistry(enabled=True))
        previous_tracer = obs.set_default_tracer(obs.Tracer())
        audit = obs.AuditLog()
    try:
        engine = StreamEngine(selector, detector_names,
                              StreamingConfig(window=window), audit=audit)
        final_updates = {}
        start = time.perf_counter()
        for updates in replay_records(engine, records, chunk=chunk):
            final_updates.update(updates)
        elapsed = time.perf_counter() - start
    finally:
        if instrumented:
            obs.set_default_registry(previous_registry)
            obs.set_default_tracer(previous_tracer)
    return elapsed, final_updates


def run_obs_overhead_smoke(record: bool = False) -> int:
    """Gate the ``repro.obs`` overhead: disabled vs fully instrumented."""
    scale = dict(STREAMING_SCALE, **OBS_SMOKE_SCALE)
    selector, detector_names = _build_selector(scale)
    records = _stream_records(scale)
    window, chunk = scale["window"], scale["chunk"]
    n_ticks = -(-scale["stream_length"] // chunk)

    # One untimed warmup replay heats allocator/cache state, then each repeat
    # times the two modes back-to-back: the per-pair ratio cancels slow drift
    # (thermal, CPU frequency) and the median filters scheduler spikes.
    _time_replay(selector, detector_names, records, window, chunk,
                 instrumented=False)
    disabled_s = float("inf")
    ratios = []
    disabled_updates = instrumented_updates = None
    for _ in range(5):
        plain_s, disabled_updates = _time_replay(
            selector, detector_names, records, window, chunk, instrumented=False)
        instr_s, instrumented_updates = _time_replay(
            selector, detector_names, records, window, chunk, instrumented=True)
        disabled_s = min(disabled_s, plain_s)
        ratios.append(instr_s / plain_s)
    overhead_ratio = sorted(ratios)[len(ratios) // 2]

    # Observability must only read: selections bitwise-equal either way.
    for name in sorted(disabled_updates):
        plain, instrumented = disabled_updates[name], instrumented_updates[name]
        assert plain.selected_index == instrumented.selected_index, name
        assert plain.votes == instrumented.votes, f"vote vector differs on {name}"

    measured = {
        "disabled_tick_ms": round(disabled_s / n_ticks * 1000.0, 3),
        "obs_overhead_ratio": round(overhead_ratio, 3),
    }
    print(f"obs smoke measurements: {json.dumps(measured)}")

    baselines_doc = json.loads(BASELINES_PATH.read_text()) \
        if BASELINES_PATH.exists() else {}
    if record:
        baselines_doc["streaming_obs_smoke"] = {
            "description": "bench_streaming_throughput --smoke baselines "
                           "(obs overhead; regenerate with --record)",
            **measured,
        }
        BASELINES_PATH.write_text(json.dumps(baselines_doc, indent=2) + "\n")
        print(f"recorded obs baselines -> {BASELINES_PATH}")
        return 0

    failures = []
    if measured["obs_overhead_ratio"] > OBS_MAX_OVERHEAD:
        failures.append(
            f"obs_overhead_ratio: measured {measured['obs_overhead_ratio']:.3f} "
            f"> cap {OBS_MAX_OVERHEAD:.2f} (instrumented vs disabled)")
    baseline_tick = baselines_doc.get("streaming_obs_smoke", {}).get("disabled_tick_ms")
    if baseline_tick is None:
        print("no recorded obs baselines; run with --record first")
        return 1
    ceiling = OBS_TICK_TOLERANCE * baseline_tick
    if measured["disabled_tick_ms"] > ceiling:
        failures.append(
            f"disabled_tick_ms: measured {measured['disabled_tick_ms']:.3f} "
            f"> {ceiling:.3f} ({OBS_TICK_TOLERANCE:.0%} of baseline "
            f"{baseline_tick:.3f})")
    if failures:
        print("SMOKE REGRESSION:\n  " + "\n  ".join(failures))
        return 1
    print("streaming obs smoke OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="obs-overhead CI gate against baselines.json")
    parser.add_argument("--record", action="store_true",
                        help="rewrite the streaming_obs_smoke section of baselines.json")
    args = parser.parse_args()
    if args.smoke or args.record:
        return run_obs_overhead_smoke(record=args.record)
    out = run_streaming_benchmark()
    print(f"total speedup:        {out['total_speedup']:.1f}x")
    print(f"steady-state speedup: {out['steady_state_speedup']:.1f}x "
          f"(threshold {MIN_STEADY_STATE_SPEEDUP}x)")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual smoke entry point
    sys.exit(main())
