"""Streaming throughput — incremental vs from-scratch selection on live ticks.

The streaming engine (``repro.streaming``) turns the one-shot pipeline into
an incremental loop: per tick it windows only the new points, runs the
selector forward pass only over the newly complete windows, and extends the
running vote — where the from-scratch alternative re-windows and
re-classifies the entire prefix on every tick.  This benchmark replays the
same multi-stream tick sequence through both:

* **from-scratch** — per tick and stream, ``predict_for_series`` over the
  whole prefix so far (the pre-streaming baseline),
* **incremental** — the same ticks through ``StreamEngine`` (incremental
  windowing + cross-stream batched forward over new windows only).

Acceptance (checked by assertions):

* at steady state (the second half of the replay, where prefixes are long)
  incremental selection is **>= 5x** faster per tick than from-scratch
  re-selection,
* the final streaming selections are **bitwise identical** to the batch
  pipeline on the same final series (same selected model, same aggregated
  vote vector), and
* streaming per-point anomaly scores (incremental tail re-scoring for
  local detectors, full re-runs for global ones) are **bitwise identical**
  to running the selected detector on the final series.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import TrainerConfig
from repro.data import build_selector_dataset, generate_series
from repro.data.records import DATASET_NAMES
from repro.detectors import make_detector
from repro.eval import predict_for_series
from repro.selectors import make_selector
from repro.streaming import StreamEngine, StreamingConfig, replay_records
from repro.system.reporting import format_table

#: Benchmark scale (small enough for CPU laptops; raise for stress runs).
STREAMING_SCALE = {
    "n_train_series": 8,
    "n_streams": 4,
    "train_length": 800,
    "stream_length": 2048,
    "window": 96,
    "chunk": 64,
    "epochs": 2,
    "seed": 0,
}

#: The acceptance threshold: steady-state incremental vs from-scratch per tick.
MIN_STEADY_STATE_SPEEDUP = 5.0


def _build_selector(scale):
    """Train a small ResNet selector on synthetic oracle knowledge."""
    names = DATASET_NAMES[: scale["n_train_series"]]
    train_records = [generate_series(name, 0, scale["train_length"], seed=scale["seed"])
                     for name in names]
    detector_names = ["IForest", "HBOS", "MP", "POLY"]
    gen = np.random.default_rng(scale["seed"] + 1)
    matrix = gen.uniform(0.05, 0.4, size=(len(train_records), len(detector_names)))
    matrix[np.arange(len(train_records)), np.arange(len(train_records)) % len(detector_names)] += 0.5

    dataset = build_selector_dataset(train_records, matrix, detector_names,
                                     window=scale["window"], stride=scale["window"],
                                     seed=scale["seed"])
    selector = make_selector("ResNet", window=scale["window"], n_classes=dataset.n_classes,
                             mid_channels=12, num_layers=2, seed=scale["seed"])
    selector.fit(dataset, config=TrainerConfig(epochs=scale["epochs"], batch_size=64,
                                               seed=scale["seed"]))
    return selector, detector_names


def _stream_records(scale):
    families = DATASET_NAMES[: scale["n_streams"]]
    return [generate_series(families[i % len(families)], i, scale["stream_length"],
                            seed=scale["seed"] + 2)
            for i in range(scale["n_streams"])]


def run_streaming_benchmark(scale=None):
    """Time both regimes on identical ticks; returns times, speedups, stats."""
    scale = dict(STREAMING_SCALE, **(scale or {}))
    selector, detector_names = _build_selector(scale)
    records = _stream_records(scale)
    window, chunk = scale["window"], scale["chunk"]
    n_ticks = -(-scale["stream_length"] // chunk)  # ticks per stream

    # From-scratch: per tick, re-window + re-classify the whole prefix.
    scratch_tick_times = []
    for tick in range(1, n_ticks + 1):
        start = time.perf_counter()
        for record in records:
            prefix = record.series[: tick * chunk]
            predict_for_series(selector, type(record)(
                name=record.name, dataset=record.dataset,
                series=prefix, labels=record.labels[: len(prefix)],
            ), window)
        scratch_tick_times.append(time.perf_counter() - start)

    # Incremental: the same ticks through the streaming engine.
    engine = StreamEngine(selector, detector_names, StreamingConfig(window=window))
    incremental_tick_times = []
    final_updates = {}
    previous = time.perf_counter()
    for updates in replay_records(engine, records, chunk=chunk):
        now = time.perf_counter()
        incremental_tick_times.append(now - previous)
        previous = now
        final_updates.update(updates)

    # --- equivalence: streaming selections == batch pipeline, bitwise ----- #
    for record in records:
        update = final_updates[record.name]
        choice, aggregated = predict_for_series(selector, record, window)
        assert update.selected_index == choice, f"streaming != batch on {record.name}"
        assert update.selected_model == detector_names[choice]
        assert list(update.votes.values()) == [float(v) for v in aggregated], \
            f"vote vector differs on {record.name}"

    # --- equivalence: streaming scores == running the detector in batch --- #
    model_set = {name: make_detector(name, window=16) for name in detector_names}
    scoring_engine = StreamEngine(selector, detector_names,
                                  StreamingConfig(window=window), model_set=model_set)
    short = [type(r)(name=r.name, dataset=r.dataset, series=r.series[:512],
                     labels=r.labels[:512]) for r in records[:2]]
    for _ in replay_records(scoring_engine, short, chunk=chunk):
        pass
    for record in short:
        update = scoring_engine.selection(record.name)
        detector = model_set[detector_names[update.selected_index]]
        streaming_scores = scoring_engine.scores(record.name)
        assert len(streaming_scores) == len(record.series)
        assert np.array_equal(streaming_scores, detector.detect(record.series)), \
            f"streaming scores != batch detection on {record.name}"

    # Steady state: the second half of the replay, where prefixes are long.
    half = len(scratch_tick_times) // 2
    scratch_steady = sum(scratch_tick_times[half:])
    incremental_steady = sum(incremental_tick_times[half:])
    return {
        "n_streams": len(records),
        "n_ticks": len(scratch_tick_times),
        "scratch_time": sum(scratch_tick_times),
        "incremental_time": sum(incremental_tick_times),
        "total_speedup": sum(scratch_tick_times) / sum(incremental_tick_times),
        "steady_state_speedup": scratch_steady / incremental_steady,
        "stats": engine.stats,
    }


@pytest.mark.benchmark(group="streaming-throughput")
def test_streaming_throughput(benchmark):
    """Steady-state incremental selection must beat from-scratch by >= 5x."""
    out = benchmark.pedantic(run_streaming_benchmark, rounds=1, iterations=1)

    stats = out["stats"]
    rows = [
        ["streams x ticks", f"{out['n_streams']} x {out['n_ticks']}"],
        ["from-scratch total", f"{out['scratch_time']:.3f} s"],
        ["incremental total", f"{out['incremental_time']:.3f} s"],
        ["total speedup", f"{out['total_speedup']:.1f}x"],
        ["steady-state speedup", f"{out['steady_state_speedup']:.1f}x"],
        ["windows emitted", stats.windows],
        ["forward-pass windows", stats.forward_windows],
    ]
    print()
    print(format_table(["measure", "value"], rows))

    assert out["steady_state_speedup"] >= MIN_STEADY_STATE_SPEEDUP, (
        f"incremental selection only {out['steady_state_speedup']:.1f}x faster than "
        f"from-scratch at steady state (need >= {MIN_STEADY_STATE_SPEEDUP}x)"
    )


if __name__ == "__main__":  # pragma: no cover - manual smoke entry point
    out = run_streaming_benchmark()
    print(f"total speedup:        {out['total_speedup']:.1f}x")
    print(f"steady-state speedup: {out['steady_state_speedup']:.1f}x "
          f"(threshold {MIN_STEADY_STATE_SPEEDUP}x)")
