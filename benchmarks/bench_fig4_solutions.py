"""Fig. 4 / Table 9 — comparison against existing model-selection solutions.

The paper compares "Ours" (ResNet selector trained with KDSelector, without
PA for fairness) against nine baselines over 14 test datasets: feature-based
KNN / SVC / AdaBoost / RandomForest, kernel-based Rocket, and NN-based
ConvNet / ResNet / InceptionTime / Transformer, reporting the AUC-PR of the
selected detectors per dataset.

Expected shape here: "Ours" is the strongest NN-based solution (in
particular it beats its own ResNet backbone trained the standard way) and
ranks in the upper half of all ten solutions.  One deviation from the paper
is expected at this scale: the synthetic dataset families are separable
from simple window statistics, so the feature-based baselines (KNN /
AdaBoost / RandomForest) are relatively stronger here than on the real
TSB-UAD data, where they trail the NN selectors by a wide margin.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MKIConfig, PISLConfig
from repro.system.reporting import format_table, per_dataset_table

from _harness import default_trainer_config, train_and_evaluate

BASELINES = [
    "KNN", "SVC", "AdaBoost", "RandomForest", "Rocket",
    "ConvNet", "ResNet", "InceptionTime", "Transformer",
]

#: Average AUC-PR of each solution in the paper (Table 9 bottom row averages).
PAPER_AVERAGES = {
    "KNN": 0.335, "SVC": 0.302, "AdaBoost": 0.286, "RandomForest": 0.297,
    "ConvNet": 0.434, "ResNet": 0.421, "InceptionTime": 0.414,
    "Transformer": 0.435, "Rocket": 0.357, "Ours": 0.461,
}


@pytest.mark.benchmark(group="fig4")
def test_fig4_model_selection_solutions(benchmark, bench_world):
    """Evaluate all baseline selectors plus the KDSelector-enhanced ResNet."""

    def experiment():
        results = {}
        for name in BASELINES:
            config = default_trainer_config(bench_world, seed=0)
            results[name] = train_and_evaluate(name, bench_world, trainer_config=config, label=name)
        # "Ours": ResNet + PISL + MKI (PA excluded, as in the paper's Fig. 4 protocol).
        ours_config = default_trainer_config(bench_world, seed=0).replace(
            pisl=PISLConfig(enabled=True, alpha=0.4, t_soft=0.25),
            mki=MKIConfig(enabled=True, weight=0.78, projection_dim=64),
        )
        results["Ours"] = train_and_evaluate("ResNet", bench_world, trainer_config=ours_config, label="Ours")
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n=== Fig. 4 / Table 9: AUC-PR of different solutions (reproduction) ===")
    print(per_dataset_table({name: run.per_dataset for name, run in results.items()}))

    rows = []
    for name, run in results.items():
        rows.append([name, run.average_auc_pr, PAPER_AVERAGES[name], run.training_time_s])
    rows.sort(key=lambda row: -row[1])
    print("\nAverage over datasets (ours vs paper):")
    print(format_table(["Solution", "Avg AUC-PR (ours)", "Avg AUC-PR (paper)", "Train time s"], rows))

    ours = results["Ours"]
    averages = {name: run.average_auc_pr for name, run in results.items()}
    ranking = sorted(averages, key=averages.get, reverse=True)

    # Shape checks: Ours beats its own backbone (ResNet trained the standard
    # way), is the best (or tied-best) NN-based solution, and sits in the
    # upper half of the overall ranking.
    assert ours.average_auc_pr >= results["ResNet"].average_auc_pr - 0.02
    nn_based = ["ConvNet", "ResNet", "InceptionTime", "Transformer"]
    best_nn_baseline = max(results[name].average_auc_pr for name in nn_based)
    assert ours.average_auc_pr >= best_nn_baseline - 0.02
    assert ranking.index("Ours") < len(ranking) // 2, \
        f"Ours ranked {ranking.index('Ours') + 1} in {ranking}"

    # Ours should win or tie on a reasonable share of datasets against every
    # individual baseline (Fig. 4 shows it winning most panels).
    win_or_tie = 0
    datasets = list(ours.per_dataset)
    for dataset in datasets:
        best_baseline = max(results[name].per_dataset[dataset] for name in BASELINES)
        if ours.per_dataset[dataset] >= best_baseline - 0.05:
            win_or_tie += 1
    assert win_or_tie >= len(datasets) // 3
