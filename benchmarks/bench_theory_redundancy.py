"""Empirical check of the paper's Sect. A.1 redundancy analysis.

The theoretical argument behind PA: training samples that are similar in
value and in loss contribute nearly identical gradients, so pruning some of
them (and rescaling the rest) barely changes the SGD update.  This
benchmark measures per-sample gradient distances on a trained selector and
compares pairs drawn from the same PA bucket (same LSH table, same loss
bin, above-average loss) against random pairs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PruningConfig, TrainerConfig, gradient_redundancy
from repro.system.reporting import format_table

from _harness import build_world, make_bench_selector


@pytest.mark.benchmark(group="theory")
def test_theory_gradient_redundancy(benchmark, bench_world):
    """Bucketed pairs should have closer gradients than random pairs."""

    def experiment():
        selector = make_bench_selector("MLP", bench_world, seed=0)
        selector.fit(
            bench_world.train_dataset,
            config=TrainerConfig(epochs=3, batch_size=64, seed=0),
        )
        # Use each sample's current cross-entropy loss as the loss signal.
        proba = selector.predict_proba(bench_world.train_dataset.windows)
        eps = 1e-12
        losses = -np.log(
            proba[np.arange(len(proba)), bench_world.train_dataset.hard_labels] + eps
        )
        return gradient_redundancy(
            selector,
            bench_world.train_dataset,
            losses,
            config=PruningConfig(method="pa", ratio=0.8, lsh_bits=8, n_bins=8),
            max_pairs=24,
            seed=0,
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n=== Theory check (Sect. A.1): gradient redundancy of PA buckets ===")
    rows = [
        ["same PA bucket", result["bucket_pair_distance"], int(result["n_bucket_pairs"])],
        ["random pairs", result["random_pair_distance"], int(result["n_random_pairs"])],
    ]
    print(format_table(["Pair type", "Mean relative gradient distance", "Pairs measured"], rows))

    assert result["n_random_pairs"] > 0
    assert np.isfinite(result["random_pair_distance"])
    if result["n_bucket_pairs"] >= 5:
        # The paper's claim: redundant (bucketed) samples have more similar
        # gradients than arbitrary sample pairs.
        assert result["bucket_pair_distance"] < result["random_pair_distance"]
