"""Ablation — PA pruning internals (ratio r, LSH bits, loss bins).

This ablation is not a numbered table in the paper, but it exercises the
design choices the paper exposes in its system interface (Fig. 3: pruning
ratio, number of LSH bits, number of bins) and quantifies the trade-off
between the amount of pruning and the selector quality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PruningConfig, PAPruner
from repro.system.reporting import format_table

from _harness import default_trainer_config, train_and_evaluate


@pytest.mark.benchmark(group="ablation-pruning")
def test_ablation_pruning_ratio(benchmark, bench_world):
    """Sweep the pruning ratio r and report accuracy vs samples processed."""

    ratios = [0.0, 0.5, 0.8]

    def experiment():
        results = {}
        for ratio in ratios:
            if ratio == 0.0:
                config = default_trainer_config(bench_world, seed=0)
                label = "r=0.0 (full data)"
            else:
                config = default_trainer_config(bench_world, seed=0).replace(
                    pruning=PruningConfig(method="pa", ratio=ratio, lsh_bits=14, n_bins=8)
                )
                label = f"r={ratio}"
            results[label] = train_and_evaluate("ResNet", bench_world, trainer_config=config, label=label)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n=== Ablation: PA pruning ratio ===")
    rows = [
        [label, run.average_auc_pr, f"{100 * run.pruned_fraction:.1f}%", run.training_time_s]
        for label, run in results.items()
    ]
    print(format_table(["Config", "AUC-PR", "Samples pruned", "Time s"], rows))

    pruned_fracs = [run.pruned_fraction for run in results.values()]
    # More aggressive pruning never processes more samples.
    assert all(pruned_fracs[i] <= pruned_fracs[i + 1] + 1e-9 for i in range(len(pruned_fracs) - 1))
    # Accuracy at r=0.8 stays within a reasonable band of full-data training.
    full = results["r=0.0 (full data)"]
    aggressive = results["r=0.8"]
    assert aggressive.average_auc_pr >= full.average_auc_pr - 0.12


@pytest.mark.benchmark(group="ablation-pruning")
def test_ablation_lsh_granularity(benchmark, bench_world):
    """How LSH bits / bin count change the share of prunable 'hard' samples.

    Fewer bits mean coarser buckets (more collisions, more pruning of
    above-average-loss samples); more bits mean finer buckets and less
    pruning.  This is measured directly on the pruner, without retraining.
    """
    dataset = bench_world.train_dataset
    rng = np.random.default_rng(0)
    losses = rng.uniform(0.5, 2.5, size=len(dataset))

    def measure(bits: int, bins: int) -> float:
        config = PruningConfig(method="pa", ratio=0.8, lsh_bits=bits, n_bins=bins,
                               full_data_last_fraction=0.0)
        pruner = PAPruner(len(dataset), config, total_epochs=10, seed=0)
        pruner.setup(dataset.windows)
        pruner.update(np.arange(len(dataset)), losses)
        indices, _ = pruner.select(epoch=1)
        return 1.0 - len(indices) / len(dataset)

    def experiment():
        grid = {}
        for bits in (4, 8, 14):
            for bins in (2, 8):
                grid[(bits, bins)] = measure(bits, bins)
        return grid

    grid = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n=== Ablation: LSH bits / loss bins vs pruned fraction ===")
    rows = [[f"bits={bits}", f"bins={bins}", f"{100 * frac:.1f}%"] for (bits, bins), frac in grid.items()]
    print(format_table(["LSH bits", "Loss bins", "Pruned fraction"], rows))

    # Coarser hashing (fewer bits) should prune at least as much as finer hashing.
    assert grid[(4, 8)] >= grid[(14, 8)] - 1e-9
    for frac in grid.values():
        assert 0.0 <= frac < 1.0
