"""Benchmark: detector kernel speedups and memory budgets (``repro.accel``).

Pins the two acceptance claims of the kernel layer:

1. **Matrix profile** — the diagonal cumulative-sum kernel vs the pre-PR
   blocked matmul (:func:`repro.accel.reference.matrix_profile_matmul`).
   At the largest benchmark configuration the float32 fast path must be
   ≥ 5x faster and float64 ≥ 3x, while float64 stays within atol 1e-8 of
   the pre-PR profile at *every* configuration (the two sum the same
   correlations in different orders, so bitwise equality is not
   achievable — the tolerance is the documented contract).
2. **LOF/KNN distance memory** — the memory-budgeted tiled k-NN vs the
   historical full-distance-matrix path on 20 000 windows: ≥ 4x lower
   peak memory (tracemalloc), identical LOF values (rtol 1e-8), and the
   under-budget dense path bitwise identical to the pre-PR k-NN for
   distinct operands (self-joins: symmetrised, within one ulp).

Run modes:

* ``pytest benchmarks/bench_detector_kernels.py`` — full scale; asserts
  the criteria above (the matrix-profile grid tops out at n=32768,
  w=1024; the memory comparison materialises the historical ~3 GB+
  distance matrices, so it needs a machine with ≥ 16 GB RAM).
* ``python benchmarks/bench_detector_kernels.py --smoke`` — CI gate at
  reduced scale: asserts the same equivalences, then compares the
  measured speedup/memory ratios against ``benchmarks/baselines.json``
  and fails on a > 20 % regression.  ``--record`` rewrites the baselines
  from the current machine.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.accel import matrix_profile, tile_kneighbors
from repro.accel.reference import kneighbors_dense, matrix_profile_matmul
from repro.detectors.base import sliding_windows
from repro.ml.neighbors import kneighbors

BASELINES_PATH = Path(__file__).resolve().parent / "baselines.json"

#: full-scale matrix-profile grid; the last entry is "the largest benchmark
#: series length" of the acceptance criterion
MP_GRID_FULL = [(8192, 128), (16384, 256), (32768, 1024)]
MP_GRID_SMOKE = [(8192, 256)]

LOF_WINDOWS_FULL = 20_000
LOF_WINDOWS_SMOKE = 4_000

#: smoke gate: measured ratios may regress at most 20 % below the recorded
#: baselines
REGRESSION_TOLERANCE = 0.8


def _series(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(size=n)) + 0.05 * rng.normal(size=n)


def _time(fn, repeats: int = 1) -> tuple[object, float]:
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _peak_memory(fn) -> tuple[object, int]:
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


# --------------------------------------------------------------------------- #
# matrix profile
# --------------------------------------------------------------------------- #
def run_matrix_profile_bench(grid, repeats: int = 1, verbose: bool = True) -> dict:
    rows = []
    for n, window in grid:
        series = _series(n + window - 1, seed=n)
        old, t_old = _time(lambda: matrix_profile_matmul(series, window), repeats)
        f64, t_f64 = _time(lambda: matrix_profile(series, window), repeats)
        f32, t_f32 = _time(lambda: matrix_profile(series, window, dtype="float32"),
                           repeats)
        err64 = float(np.abs(f64 - old).max())
        err32 = float(np.abs(f32 - old).max())
        # The float64 equivalence contract holds at every configuration.
        assert err64 <= 1e-8, f"float64 profile deviates by {err64:.2e} at n={n} w={window}"
        rows.append({
            "n": n, "window": window,
            "t_matmul_s": t_old, "t_float64_s": t_f64, "t_float32_s": t_f32,
            "speedup_float64": t_old / t_f64, "speedup_float32": t_old / t_f32,
            "max_abs_err_float64": err64, "max_abs_err_float32": err32,
        })
        if verbose:
            print(f"matrix profile  n={n:>6} w={window:>4}  "
                  f"matmul {t_old:7.2f}s  float64 {t_f64:6.2f}s ({t_old / t_f64:4.1f}x)  "
                  f"float32 {t_f32:6.2f}s ({t_old / t_f32:4.1f}x)  "
                  f"err64 {err64:.1e}  err32 {err32:.1e}")
    return {"rows": rows, "largest": rows[-1]}


# --------------------------------------------------------------------------- #
# LOF / k-NN memory
# --------------------------------------------------------------------------- #
def _lof_from_kneighbors(x: np.ndarray, n_neighbors: int, kneighbors_fn) -> np.ndarray:
    """The LOF math of ``repro.detectors.lof`` over a pluggable k-NN kernel."""
    n = x.shape[0]
    k = max(1, min(n_neighbors, n - 1))
    dist, idx = kneighbors_fn(x, x, k)
    k_dist = dist[:, -1]
    reach = np.maximum(k_dist[idx], dist)
    lrd = 1.0 / np.maximum(reach.mean(axis=1), 1e-12)
    return (lrd[idx].mean(axis=1)) / np.maximum(lrd, 1e-12)


def run_lof_memory_bench(n_windows: int, window: int = 24, n_neighbors: int = 20,
                         tile_budget_mb: float = 64.0, verbose: bool = True) -> dict:
    series = _series(n_windows + window - 1, seed=7)
    subs = sliding_windows(series, window)
    assert subs.shape[0] == n_windows

    dense, peak_dense = _peak_memory(lambda: _lof_from_kneighbors(
        subs, n_neighbors,
        lambda q, r, k: kneighbors_dense(q, r, k, exclude_self=True)))
    tiled, peak_tiled = _peak_memory(lambda: _lof_from_kneighbors(
        subs, n_neighbors,
        lambda q, r, k: tile_kneighbors(q, q, k, exclude_self=True,
                                        memory_budget_mb=tile_budget_mb)))
    np.testing.assert_allclose(tiled, dense, rtol=1e-8)

    # Under the memory budget the public kneighbors stays the historical
    # code path: bit for bit for distinct operands; the self-join goes
    # through the symmetrised fast path, identical to the last ulp.
    small = subs[:256]
    other = np.ascontiguousarray(subs[256:512])
    d_new, i_new = kneighbors(small, other, n_neighbors)
    d_old, i_old = kneighbors_dense(small, other, n_neighbors)
    assert np.array_equal(d_new, d_old) and np.array_equal(i_new, i_old)
    d_self, _ = kneighbors(small, small, n_neighbors, exclude_self=True)
    d_self_old, _ = kneighbors_dense(small, small, n_neighbors, exclude_self=True)
    np.testing.assert_allclose(d_self, d_self_old, rtol=1e-12)

    ratio = peak_dense / peak_tiled
    if verbose:
        print(f"LOF peak memory n={n_windows} w={window} k={n_neighbors}:  "
              f"dense {peak_dense / 1e6:8.1f} MB   tiled {peak_tiled / 1e6:7.1f} MB   "
              f"reduction {ratio:5.1f}x")
    return {"n_windows": n_windows, "peak_dense_bytes": peak_dense,
            "peak_tiled_bytes": peak_tiled, "memory_ratio": ratio}


# --------------------------------------------------------------------------- #
# pytest entry points (full scale — the acceptance criteria)
# --------------------------------------------------------------------------- #
def test_matrix_profile_speedup_and_equivalence():
    result = run_matrix_profile_bench(MP_GRID_FULL)
    largest = result["largest"]
    assert largest["speedup_float32"] >= 5.0, (
        f"float32 fast path {largest['speedup_float32']:.1f}x < 5x at "
        f"n={largest['n']} w={largest['window']}")
    assert largest["speedup_float64"] >= 3.0, (
        f"float64 kernel {largest['speedup_float64']:.1f}x < 3x at "
        f"n={largest['n']} w={largest['window']}")


def test_lof_memory_reduction():
    result = run_lof_memory_bench(LOF_WINDOWS_FULL)
    assert result["memory_ratio"] >= 4.0, (
        f"peak-memory reduction {result['memory_ratio']:.1f}x < 4x "
        f"on {result['n_windows']} windows")


# --------------------------------------------------------------------------- #
# smoke mode (CI gate against recorded baselines)
# --------------------------------------------------------------------------- #
def run_smoke(record: bool = False) -> int:
    mp = run_matrix_profile_bench(MP_GRID_SMOKE, repeats=2)["largest"]
    lof = run_lof_memory_bench(LOF_WINDOWS_SMOKE, tile_budget_mb=8.0)
    measured = {
        "mp_speedup_float64": round(mp["speedup_float64"], 3),
        "mp_speedup_float32": round(mp["speedup_float32"], 3),
        "lof_memory_ratio": round(lof["memory_ratio"], 3),
    }
    print(f"smoke measurements: {json.dumps(measured)}")

    if record:
        # merge into the shared baselines file — other benchmarks keep
        # their own sections (e.g. service_smoke)
        baselines_doc = json.loads(BASELINES_PATH.read_text()) \
            if BASELINES_PATH.exists() else {}
        baselines_doc["description"] = ("bench_detector_kernels --smoke baselines "
                                        "(speedup/memory ratios; regenerate with --record)")
        baselines_doc["smoke"] = measured
        BASELINES_PATH.write_text(json.dumps(baselines_doc, indent=2) + "\n")
        print(f"recorded baselines -> {BASELINES_PATH}")
        return 0

    baselines = json.loads(BASELINES_PATH.read_text())["smoke"]
    failures = []
    for key, baseline in baselines.items():
        floor = REGRESSION_TOLERANCE * baseline
        if measured[key] < floor:
            failures.append(f"{key}: measured {measured[key]:.2f} < "
                            f"{floor:.2f} (80% of baseline {baseline:.2f})")
    # The memory reduction is also an absolute contract, scale-independent.
    if lof["memory_ratio"] < 4.0:
        failures.append(f"lof_memory_ratio {lof['memory_ratio']:.2f} < 4.0")
    if failures:
        print("SMOKE REGRESSION:\n  " + "\n  ".join(failures))
        return 1
    print("smoke: OK (within 20% of recorded baselines)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced-scale run gated against baselines.json")
    parser.add_argument("--record", action="store_true",
                        help="with --smoke: rewrite baselines.json from this machine")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(record=args.record)
    test_matrix_profile_speedup_and_equivalence()
    test_lof_memory_reduction()
    print("full benchmark: all acceptance assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
