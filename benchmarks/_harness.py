"""Shared infrastructure for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper at a
laptop-friendly scale.  The expensive, experiment-independent work — running
the 12-detector oracle over the synthetic TSB-UAD benchmark — is done once
per session and cached on disk under ``.bench_cache`` so repeated benchmark
runs are fast.

Scale note: the paper trains for ~280 GPU-minutes on the real TSB-UAD data;
here everything runs on CPU over synthetic data, so absolute AUC-PR values
and times differ.  The harness reports the same rows as the paper and the
comparisons (which method wins, by roughly what factor) are what should be
compared against the paper's tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.core import TrainerConfig
from repro.data import TSBUADBenchmark, build_selector_dataset
from repro.data.windows import SelectorDataset
from repro.detectors import make_default_model_set
from repro.eval import Oracle, evaluate_selection
from repro.eval.evaluation import SelectionEvaluation
from repro.selectors import make_selector
from repro.selectors.nn_selector import NNSelector

CACHE_DIR = Path(__file__).resolve().parent.parent / ".bench_cache"

#: Experiment scale (kept deliberately small; raise for closer-to-paper runs).
BENCH_SCALE = {
    "n_train_per_dataset": 2,
    "n_test_per_dataset": 2,
    "series_length": 1000,
    "detector_window": 24,
    "selector_window": 96,
    "selector_stride": 48,
    "epochs": 8,
    "batch_size": 64,
    "seed": 0,
}

#: LSH bits used by PA in the benchmark runs.  The paper's 14 bits are tuned
#: for training sets of 10^4-10^5 windows; with the few hundred windows of
#: this reduced scale, 14-bit signatures almost never collide and PA would
#: degenerate to InfoBatch.  8 bits keeps the expected collision rate (and
#: therefore the bucketed-pruning behaviour) comparable to the paper's setup.
BENCH_LSH_BITS = 8

#: Architecture kwargs used across experiments (small but non-trivial models).
ARCH_KWARGS = {
    "ConvNet": {"mid_channels": 12},
    "ResNet": {"mid_channels": 12, "num_layers": 2},
    "InceptionTime": {"mid_channels": 12, "num_layers": 2},
    "Transformer": {"embed_dim": 24, "num_layers": 1, "num_heads": 4, "patch_stride": 8},
    "MLP": {"hidden": 64, "feature_dim": 32},
    "LSTMSelector": {"hidden": 16, "downsample": 8},
}


@dataclass
class BenchWorld:
    """Everything an experiment needs: data, oracle knowledge, test sets."""

    train_dataset: SelectorDataset
    test_records: list
    perf_test: np.ndarray
    detector_names: List[str]
    scale: Dict[str, int]


@dataclass
class RunResult:
    """Outcome of training + evaluating one selector configuration."""

    name: str
    average_auc_pr: float
    per_dataset: Dict[str, float]
    training_time_s: float
    pruned_fraction: float = 0.0
    evaluation: Optional[SelectionEvaluation] = None


_WORLD_CACHE: Dict[str, BenchWorld] = {}


def build_world() -> BenchWorld:
    """Build (or return the cached) benchmark world for this process."""
    if "world" in _WORLD_CACHE:
        return _WORLD_CACHE["world"]
    scale = BENCH_SCALE
    benchmark = TSBUADBenchmark(
        n_train_per_dataset=scale["n_train_per_dataset"],
        n_test_per_dataset=scale["n_test_per_dataset"],
        series_length=scale["series_length"],
        seed=7,
    ).load()
    model_set = make_default_model_set(window=scale["detector_window"], fast=True)
    oracle = Oracle(model_set, metric="auc_pr", cache_dir=CACHE_DIR)

    perf_train = oracle.performance_matrix(benchmark.train_records)
    test_records = benchmark.all_test_records
    perf_test = oracle.performance_matrix(test_records)

    train_dataset = build_selector_dataset(
        benchmark.train_records,
        perf_train,
        oracle.detector_names,
        window=scale["selector_window"],
        stride=scale["selector_stride"],
        seed=scale["seed"],
    )
    world = BenchWorld(
        train_dataset=train_dataset,
        test_records=test_records,
        perf_test=perf_test,
        detector_names=oracle.detector_names,
        scale=dict(scale),
    )
    _WORLD_CACHE["world"] = world
    return world


def make_bench_selector(name: str, world: BenchWorld, seed: int = 0):
    """Instantiate a selector sized for the benchmark scale."""
    kwargs = dict(ARCH_KWARGS.get(name, {}))
    if name in ARCH_KWARGS:
        return make_selector(
            name,
            window=world.scale["selector_window"],
            n_classes=world.train_dataset.n_classes,
            seed=seed,
            **kwargs,
        )
    extra = {}
    if name == "Rocket":
        extra = {"n_kernels": 128}
    elif name == "RandomForest":
        extra = {"n_estimators": 30}
    elif name == "AdaBoost":
        extra = {"n_estimators": 30}
    return make_selector(name, seed=seed, **extra)


def train_and_evaluate(
    selector_name: str,
    world: BenchWorld,
    trainer_config: Optional[TrainerConfig] = None,
    label: Optional[str] = None,
    seed: int = 0,
) -> RunResult:
    """Train one selector configuration and evaluate it on the test series."""
    selector = make_bench_selector(selector_name, world, seed=seed)

    start = time.perf_counter()
    if isinstance(selector, NNSelector):
        config = trainer_config or TrainerConfig(
            epochs=world.scale["epochs"], batch_size=world.scale["batch_size"], seed=seed
        )
        selector.fit(world.train_dataset, config=config)
        pruned = selector.last_report_.pruned_fraction
        training_time = selector.last_report_.total_time
    else:
        selector.fit(world.train_dataset)
        pruned = 0.0
        training_time = time.perf_counter() - start

    evaluation = evaluate_selection(
        selector,
        world.test_records,
        world.perf_test,
        world.detector_names,
        window=world.scale["selector_window"],
    )
    return RunResult(
        name=label or selector_name,
        average_auc_pr=evaluation.average_score,
        per_dataset=evaluation.per_dataset_score,
        training_time_s=training_time,
        pruned_fraction=pruned,
        evaluation=evaluation,
    )


def default_trainer_config(world: BenchWorld, seed: int = 0, **overrides) -> TrainerConfig:
    """Standard-framework trainer config at the benchmark scale."""
    config = TrainerConfig(
        epochs=world.scale["epochs"], batch_size=world.scale["batch_size"], seed=seed
    )
    return config.replace(**overrides) if overrides else config
