"""Quickstart: train a TSAD model selector with KDSelector and use it.

This walks through the three steps of the demo system (Sect. 4 of the
paper) on a small synthetic benchmark:

1. **Selector learning** — label historical series with the oracle (which
   detector performs best on each), build the windowed training set, and
   train a ResNet selector with the full KDSelector configuration
   (PISL + MKI + PA).
2. **Model selection** — predict the best TSAD model for an unseen series.
3. **Anomaly detection** — run the selected model and report its metrics.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import kdselector_config
from repro.data import TSBUADBenchmark
from repro.system import ModelSelectionPipeline, PipelineConfig
from repro.system.reporting import format_table


def main() -> None:
    # ------------------------------------------------------------------ #
    # 0. Historical data: a small synthetic TSB-UAD-style benchmark.
    # ------------------------------------------------------------------ #
    benchmark = TSBUADBenchmark(
        n_train_per_dataset=1,
        n_test_per_dataset=1,
        series_length=800,
        seed=7,
    ).load()
    print(f"historical series: {len(benchmark.train_records)}  "
          f"test series: {len(benchmark.all_test_records)}")

    pipeline = ModelSelectionPipeline(
        config=PipelineConfig(window=64, stride=32, detector_window=24,
                              cache_dir=".quickstart_cache"),
    )

    # ------------------------------------------------------------------ #
    # 1. Selector learning (oracle labelling + KDSelector training).
    # ------------------------------------------------------------------ #
    print("\n[1/3] labelling historical data with the 12-detector oracle ...")
    pipeline.prepare_training_data(benchmark.train_records)

    print("[1/3] training a ResNet selector with PISL + MKI + PA ...")
    pipeline.train_selector(
        "ResNet",
        trainer_config=kdselector_config(epochs=4, batch_size=64, seed=0),
        mid_channels=12, num_layers=2, seed=0,
    )
    report = pipeline.selector.last_report_
    print(f"      training time: {report.total_time:.1f}s, "
          f"sample visits pruned: {100 * report.pruned_fraction:.1f}%")

    # ------------------------------------------------------------------ #
    # 2. Model selection for a new series.
    # ------------------------------------------------------------------ #
    record = benchmark.test_records["ECG"][0]
    selection = pipeline.select_model(record)
    print(f"\n[2/3] selected TSAD model for {record.name}: {selection['selected_model']}")
    top_votes = sorted(selection["votes"].items(), key=lambda kv: -kv[1])[:3]
    print("      top votes:", ", ".join(f"{name}={share:.2f}" for name, share in top_votes))

    # ------------------------------------------------------------------ #
    # 3. Anomaly detection with the selected model.
    # ------------------------------------------------------------------ #
    result = pipeline.detect(record)
    print(f"\n[3/3] detection metrics of the selected model on {record.name}:")
    print(format_table(["metric", "value"], sorted(result.metrics.items())))


if __name__ == "__main__":
    main()
