"""Observability walkthrough: metrics, tracing, audit replay and explain.

Runs the streaming engine under full instrumentation (``repro.obs``) and
demonstrates each surface:

1. **Metrics** — the process-wide registry collects cache, engine and
   serving counters/histograms and renders Prometheus text.
2. **Tracing** — explicit-clock spans (``engine.flush`` with nested
   ``engine.forward`` / ``engine.score``) exported as JSONL.
3. **Audit trail** — every selection/drift/re-selection is recorded with
   content-hashed inputs; a recorded selection is then **replayed
   bit-for-bit** from the log + the series bytes alone.
4. **Explain** — the per-window vote breakdown, winner margin and drift
   trajectory, from live engine state *and* from the audit log.

The invariant on display: with everything enabled, selections and scores
are bitwise identical to an uninstrumented run.

Run with:  python examples/observability_demo.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import obs
from repro.data import generate_series
from repro.streaming import DriftConfig, StreamEngine, StreamingConfig
from repro.system import ModelSelectionPipeline, PipelineConfig


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_obs_demo_"))

    # ------------------------------------------------------------------ #
    # 0. Train a small selector (the batch pipeline's job), then switch
    #    every observability surface on BEFORE building engines.
    # ------------------------------------------------------------------ #
    history = [generate_series(name, 0, 600, seed=1)
               for name in ("ECG", "IOPS", "MGAB", "SMD")]
    pipeline = ModelSelectionPipeline(
        config=PipelineConfig(window=64, stride=32, detector_window=16))
    print("[0] labelling history + training a ConvNet selector ...")
    pipeline.prepare_training_data(history)
    pipeline.train_selector("ConvNet", mid_channels=8, seed=0)

    registry = obs.enable()
    tracer = obs.Tracer(sink=workdir / "spans.jsonl")
    obs.set_default_tracer(tracer)
    audit = obs.AuditLog(workdir / "audit.jsonl")

    # ------------------------------------------------------------------ #
    # 1. Drive live streams through an instrumented engine.
    # ------------------------------------------------------------------ #
    engine = StreamEngine(
        pipeline.selector, pipeline.detector_names,
        StreamingConfig(window=64, stride=32,
                        drift=DriftConfig(reference_size=8, recent_size=8,
                                          threshold=0.35, release=0.15,
                                          cooldown=8)),
        audit=audit)
    steady = generate_series("ECG", 5, 1500, seed=11).series
    drifting = np.concatenate([
        generate_series("IOPS", 6, 750, seed=12).series,
        generate_series("MGAB", 7, 750, seed=13).series,
    ])
    print("[1] replaying 2 streams in 125-point ticks ...")
    for start in range(0, 1500, 125):
        engine.append("steady", steady[start:start + 125])
        engine.append("drifting", drifting[start:start + 125])
        engine.flush()

    # ------------------------------------------------------------------ #
    # 2. Metrics: the registry saw every layer.
    # ------------------------------------------------------------------ #
    print("\n[2] Prometheus exposition (first lines):")
    for line in registry.render_prometheus().splitlines()[:12]:
        print("   ", line)

    # ------------------------------------------------------------------ #
    # 3. Tracing: nested spans with real durations.
    # ------------------------------------------------------------------ #
    flushes = [s for s in tracer.spans if s.name == "engine.flush"]
    forwards = [s for s in tracer.spans if s.name == "engine.forward"]
    print(f"\n[3] traced {len(tracer.spans)} spans: {len(flushes)} flushes, "
          f"{len(forwards)} nested forward passes "
          f"(JSONL at {workdir / 'spans.jsonl'})")

    # ------------------------------------------------------------------ #
    # 4. Audit replay: re-derive a recorded decision bit-for-bit.
    # ------------------------------------------------------------------ #
    audit.close()
    events = obs.AuditLog.read(workdir / "audit.jsonl")
    final = [e for e in events if e["event"] == "selection"
             and e["stream"] == "drifting" and not e["provisional"]][-1]
    replayed = obs.replay_selection(final, engine.series("drifting"),
                                    pipeline.selector)
    assert replayed["selected_index"] == final["selected_index"]
    assert replayed["votes"] == final["votes"]
    print(f"\n[4] replayed the final 'drifting' selection from the audit log: "
          f"{replayed['selected_model']} — votes bitwise-equal to the "
          f"recording ({len(events)} events on the trail)")

    # ------------------------------------------------------------------ #
    # 5. Explain: live state vs. the recording.
    # ------------------------------------------------------------------ #
    print("\n[5] explain (live engine state):")
    print(obs.format_explain(obs.explain_stream(engine, "drifting")))
    print("\n    explain (audit log alone):")
    print(obs.format_explain(obs.explain_from_audit(events, "drifting")))

    obs.set_default_tracer(None)
    obs.disable()
    print(f"\nartifacts kept in {workdir}")


if __name__ == "__main__":
    main()
