"""Scenario: why model selection matters — no single detector wins everywhere.

This example reproduces the motivation of the paper's introduction: it runs
all 12 TSAD models over series from several heterogeneous dataset families
and prints the per-family AUC-PR matrix.  The winning detector changes from
family to family (periodic ECG-like data favours discord/pattern methods,
noisy server metrics favour density/histogram methods, chaotic MGAB favours
forecasting methods), which is exactly why a learned selector helps.

Run with:  python examples/detector_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.data import generate_series
from repro.detectors import make_default_model_set
from repro.eval import Oracle
from repro.system.reporting import format_table

FAMILIES = ["ECG", "MGAB", "IOPS", "SensorScope", "SMD", "Genesis"]
SERIES_PER_FAMILY = 2
LENGTH = 800


def main() -> None:
    model_set = make_default_model_set(window=24, fast=True)
    oracle = Oracle(model_set, metric="auc_pr", cache_dir=".quickstart_cache")

    records = [
        generate_series(family, index, LENGTH, seed=3)
        for family in FAMILIES
        for index in range(SERIES_PER_FAMILY)
    ]
    print(f"scoring {len(records)} series with {len(model_set)} detectors "
          "(this is the expensive 'oracle' step; results are cached) ...")
    matrix = oracle.performance_matrix(records)

    # Average the per-series AUC-PR within each family.
    rows = []
    winners = {}
    for f_idx, family in enumerate(FAMILIES):
        block = matrix[f_idx * SERIES_PER_FAMILY:(f_idx + 1) * SERIES_PER_FAMILY]
        means = block.mean(axis=0)
        winner = oracle.detector_names[int(means.argmax())]
        winners[family] = winner
        rows.append([family] + list(means) + [winner])

    print("\nPer-family average AUC-PR of each TSAD model:")
    print(format_table(["Family"] + oracle.detector_names + ["Winner"], rows, float_format="{:.2f}"))

    print("\nWinning detector per family:")
    for family, winner in winners.items():
        print(f"  {family:12s} -> {winner}")

    distinct = len(set(winners.values()))
    print(f"\n{distinct} distinct winners across {len(FAMILIES)} families — "
          "no single TSAD model dominates, which is the case for model selection.")

    best_single = matrix.mean(axis=0).max()
    oracle_choice = matrix.max(axis=1).mean()
    print(f"best single detector (average AUC-PR): {best_single:.4f}")
    print(f"perfect per-series selection (oracle):  {oracle_choice:.4f}")
    print(f"headroom unlocked by model selection:   {oracle_choice - best_single:+.4f}")


if __name__ == "__main__":
    main()
