"""Streaming quickstart: online model selection + detection on live series.

The batch pipeline answers queries over complete series; real traffic is
streams.  This example trains a selector on historical data, then feeds two
live streams tick by tick through the streaming engine
(``repro.streaming``):

1. **Incremental selection** — each tick, only the newly complete windows
   take a selector forward pass; the running vote extends incrementally
   and stays bitwise identical to re-running the batch pipeline on the
   whole prefix.
2. **Drift-aware re-selection** — a distribution-shift monitor over the
   selector's own probabilities re-selects the detector (with hysteresis)
   when a stream changes character mid-flight.
3. **Online scoring** — per-point anomaly scores of the selected detector
   extend incrementally (exact tail re-scoring for windowed-local
   detectors).

Run with:  python examples/streaming_quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.data import generate_series
from repro.system import ModelSelectionPipeline, PipelineConfig
from repro.streaming import DriftConfig


def main() -> None:
    # ------------------------------------------------------------------ #
    # 0. Train a selector on historical data (the batch pipeline's job).
    # ------------------------------------------------------------------ #
    history = [generate_series(name, 0, 600, seed=1)
               for name in ("ECG", "IOPS", "MGAB", "SMD")]
    pipeline = ModelSelectionPipeline(
        config=PipelineConfig(window=64, stride=32, detector_window=16),
    )
    print("[0] labelling history + training a ConvNet selector ...")
    pipeline.prepare_training_data(history)
    pipeline.train_selector("ConvNet", mid_channels=8, seed=0)

    # ------------------------------------------------------------------ #
    # 1. Hand the trained selector to the streaming engine.
    # ------------------------------------------------------------------ #
    engine = pipeline.as_stream_engine(
        score=True,  # maintain per-point anomaly scores (opt-in)
        drift=DriftConfig(reference_size=8, recent_size=8, threshold=0.35,
                          release=0.15, cooldown=8),
        # Globally-scored detectors need a full re-run to extend their
        # scores; re-score every 250 points instead of every tick.
        rescore_every=250,
    )

    # Two live sources: a steady ECG-like stream and one that drifts into a
    # different regime halfway through.
    steady = generate_series("ECG", 5, 2000, seed=11).series
    drifting = np.concatenate([
        generate_series("IOPS", 6, 1000, seed=12).series,
        generate_series("MGAB", 7, 1000, seed=13).series,
    ])

    print("[1] replaying 2 streams in 50-point ticks ...\n")
    for start in range(0, 2000, 50):
        engine.append("steady", steady[start:start + 50])
        engine.append("drifting", drifting[start:start + 50])
        for update in engine.flush().values():
            if update.changed or update.drift_triggered:
                flag = "drift!" if update.drift_triggered else "change"
                print(f"    [{flag}] {update.stream} @ {update.length} pts -> "
                      f"{update.selected_model} (stat={update.drift_statistic:.2f})")

    # ------------------------------------------------------------------ #
    # 2. Final state: selections, votes and incremental anomaly scores.
    # ------------------------------------------------------------------ #
    stats = engine.stats
    print(f"\n[2] {stats.points} points -> {stats.windows} windows, "
          f"{stats.forward_windows} forward-pass windows, "
          f"{stats.drift_triggers} drift re-selection(s)")
    for stream_id in engine.stream_ids:
        view = engine.selection(stream_id)
        scores = engine.scores(stream_id)
        print(f"    {stream_id}: model={pipeline.detector_names[view.selected_index]} "
              f"over {view.n_windows} windows, "
              f"{len(scores)} points scored (max score {scores.max():.2f})")


if __name__ == "__main__":
    main()
