"""Scenario: cost-aware cascade serving under latency SLOs.

The distilled int8 student answers most windows cheaply, but some windows
it is simply unsure about — and a hard latency SLO sometimes cannot
afford the teacher at all.  This example walks the whole
``repro.cascade`` path at a small scale:

1. train a teacher and distill + quantize a fast tier (``repro.distill``),
2. calibrate the cascade's confidence threshold on held-out windows
   (:func:`repro.cascade.calibrate_margin_threshold`) — the smallest
   margin whose kept windows still agree with the teacher,
3. route query windows: confident rows keep the int8 answer, uncertain
   rows escalate to one teacher forward
   (:class:`repro.cascade.CascadeRouter`),
4. serve live streams through a cascade-enabled ``StreamEngine`` with
   auditing on, harvest the recorded ``cost_observation`` events, add two
   offline probe measurements per tier (so the ridge fit sees more than
   one window count) and fit a :class:`repro.cascade.CostModel` — the
   same labels the ``train-cost-model`` CLI command consumes,
5. sweep SLO admission: price the ``teacher`` / ``cascade`` / ``fast``
   plans through the fitted model and watch the chosen plan move along
   the quality-vs-latency frontier as the SLO loosens.

Run with:  python examples/cascade_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.cascade import (
    CascadeRouter,
    CostModel,
    CostObservation,
    calibrate_margin_threshold,
    harvest_cost_observations,
    observed_cost,
)
from repro.core import TrainerConfig
from repro.data import build_selector_dataset, generate_series
from repro.data.records import DATASET_NAMES
from repro.data.windows import extract_windows
from repro.distill import DistillConfig, distill_student, quantize_student, \
    selection_agreement
from repro.obs import AuditLog
from repro.selectors import make_selector
from repro.streaming import StreamEngine, StreamingConfig
from repro.system.reporting import format_table

WINDOW = 96
SEED = 0
FAMILIES = DATASET_NAMES[:8]


def train_teacher():
    records = [generate_series(name, 0, 800, seed=SEED) for name in FAMILIES]
    detector_names = ["IForest", "LOF", "HBOS", "MP", "POLY", "CNN"]
    gen = np.random.default_rng(SEED + 1)
    matrix = gen.uniform(0.05, 0.4, size=(len(records), len(detector_names)))
    matrix[np.arange(len(records)), np.arange(len(records)) % len(detector_names)] += 0.5
    dataset = build_selector_dataset(records, matrix, detector_names,
                                     window=WINDOW, stride=WINDOW, seed=SEED)
    teacher = make_selector("ResNet", window=WINDOW, n_classes=dataset.n_classes,
                            mid_channels=12, num_layers=2, seed=SEED)
    teacher.fit(dataset, config=TrainerConfig(epochs=2, batch_size=64, seed=SEED))
    return teacher, detector_names


def windows_from(n_series, length, seed):
    records = [generate_series(FAMILIES[i % len(FAMILIES)], i, length, seed=seed)
               for i in range(n_series)]
    return np.vstack([extract_windows(r.series, WINDOW, stride=48) for r in records])


def probe_observations(tiers, query):
    """Two offline forward timings per tier — the second window count is
    what lets the ridge fit tell the per-window slope from the fixed
    per-call cost (audit labels alone often sit at one batch size)."""
    observations = []
    for tier, selector in tiers.items():
        for n in (8, len(query)):
            _, wall_ms, _ = observed_cost(
                lambda sel=selector, k=n: sel.predict_proba(query[:k]))
            observations.append(CostObservation(
                kind="selector_forward", target=tier,
                n_windows=n, window=WINDOW, wall_ms=wall_ms))
    return observations


def main() -> None:
    print("training the teacher (small ResNet) ...")
    teacher, detector_names = train_teacher()

    print("distilling + quantizing the fast tier ...")
    transfer = windows_from(16, 1600, seed=SEED + 3)
    student, report = distill_student(
        teacher, transfer, detector_names,
        DistillConfig(epochs=20, features="stats", seed=SEED))
    quantized, gate = quantize_student(student, transfer, min_agreement=None)
    print(f"  teacher {report.teacher_parameters} params -> "
          f"student {report.student_parameters} params; "
          f"int8 gate agreement {gate['agreement']:.4f}")

    # --- calibrate the confidence threshold on held-out windows ----------- #
    held_out = windows_from(8, 1600, seed=SEED + 4)
    calibration = calibrate_margin_threshold(
        quantized.predict_proba(held_out), teacher.predict_proba(held_out),
        target_agreement=0.995)
    print(format_table(
        ["threshold", "escalation rate", "kept agreement", "overall agreement"],
        [[f"{calibration.threshold:.4f}",
          f"{calibration.escalation_rate:.3f}",
          f"{calibration.kept_agreement:.4f}",
          f"{calibration.overall_agreement:.4f}"]]))
    router = CascadeRouter.from_calibration(teacher, calibration,
                                            seed=SEED, window=WINDOW)

    # --- route fresh query windows ---------------------------------------- #
    query = windows_from(10, 1600, seed=SEED + 5)
    teacher_proba = teacher.predict_proba(query)
    fast_proba = quantized.predict_proba(query)
    routed_proba, escalated = router.route(query, fast_proba)
    print(f"routing {len(query)} query windows: "
          f"{int(escalated.sum())} escalated to the teacher "
          f"({escalated.mean():.1%})")
    rows = [
        ["always-int8", f"{selection_agreement(fast_proba, teacher_proba):.4f}"],
        ["cascade", f"{selection_agreement(routed_proba, teacher_proba):.4f}"],
        ["always-teacher", "1.0000"],
    ]
    print(format_table(["plan", "window agreement vs teacher"], rows))

    # --- stream with the cascade on, harvesting cost labels ---------------- #
    print("streaming with the cascade + audit; harvesting cost labels ...")
    audit = AuditLog()
    engine = StreamEngine(
        quantized, detector_names,
        StreamingConfig(window=WINDOW, stride=WINDOW,
                        selector_tier="student-int8"),
        audit=audit, cascade=router)
    streams = {f"{name}-live": np.asarray(
        generate_series(name, 7, 1200, seed=SEED + 6).series)
        for name in FAMILIES[:4]}
    for start in range(0, 1200, 128):
        for sid, series in streams.items():
            piece = series[start:start + 128]
            if len(piece):
                engine.append(sid, piece)
        engine.flush()
    harvested = harvest_cost_observations(audit.events())
    print(f"  {engine.stats.escalated_windows} windows escalated across "
          f"{len(streams)} streams; {len(harvested)} cost observations "
          f"harvested from the audit trail")

    observations = harvested + probe_observations(
        {"teacher": teacher, "student-int8": quantized}, query)
    cost_model = CostModel.fit(observations, window=WINDOW)
    router.cost_model = cost_model
    tier_rows = [[tier, f"{a:.3f} + {b:.4f}*n"]
                 for tier, (a, b) in sorted(cost_model.latency.items())]
    print(format_table(["tier", "fitted latency (ms)"], tier_rows))

    # --- sweep SLO admission along the frontier ---------------------------- #
    n_windows = 64
    teacher_ms = router.plan_cost("teacher", n_windows)[0]
    print(f"admission for a {n_windows}-window request "
          f"(predicted teacher cost {teacher_ms:.2f} ms):")
    rows = []
    for multiple in (0.05, 0.3, 0.8, 2.0):
        decision = router.admit(n_windows, latency_slo_ms=multiple * teacher_ms)
        rows.append([f"{multiple * teacher_ms:.2f}", decision.plan,
                     f"{decision.predicted_ms:.2f}",
                     f"{decision.quality:.4f}",
                     "yes" if decision.fallback else "no"])
    no_slo = router.admit(n_windows)
    rows.append(["(none)", no_slo.plan, f"{no_slo.predicted_ms:.2f}",
                 f"{no_slo.quality:.4f}", "no"])
    print(format_table(
        ["latency SLO (ms)", "plan", "predicted ms", "quality", "fallback"],
        rows))


if __name__ == "__main__":
    main()
