"""Scenario: a production fast path — distill, quantize, serve, refresh.

The teacher selector (the paper's ResNet) decides well but burns a full
convolutional forward pass per window.  This example walks the whole
``repro.distill`` fast path at a small scale:

1. train a teacher on synthetic oracle knowledge,
2. distill it into a thin float student over static window features
   (:func:`repro.distill.distill_student`, reusing the PISL soft-label
   machinery),
3. quantize the student to int8 behind the dequantize-compare gate
   (:func:`repro.distill.quantize_student`),
4. race the three tiers on the same query windows and compare their
   throughput and selection agreement,
5. simulate a drifted stream served by a stale student checkpoint and
   let a :class:`repro.distill.StudentRefresher` fine-tune it back into
   agreement — escalating to the teacher only because the probe showed
   agreement actually dropped.

Run with:  python examples/distill_demo.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import TrainerConfig
from repro.data import build_selector_dataset, generate_series
from repro.data.records import DATASET_NAMES
from repro.data.windows import extract_windows
from repro.distill import (
    DistillConfig,
    RefreshConfig,
    StudentRefresher,
    distill_student,
    quantize_student,
    selection_agreement,
)
from repro.selectors import make_selector
from repro.system.reporting import format_table

WINDOW = 96
SEED = 0


def train_teacher():
    families = DATASET_NAMES[:8]
    records = [generate_series(name, 0, 800, seed=SEED) for name in families]
    detector_names = ["IForest", "LOF", "HBOS", "MP", "POLY", "CNN"]
    gen = np.random.default_rng(SEED + 1)
    matrix = gen.uniform(0.05, 0.4, size=(len(records), len(detector_names)))
    matrix[np.arange(len(records)), np.arange(len(records)) % len(detector_names)] += 0.5

    dataset = build_selector_dataset(records, matrix, detector_names,
                                     window=WINDOW, stride=WINDOW, seed=SEED)
    teacher = make_selector("ResNet", window=WINDOW, n_classes=dataset.n_classes,
                            mid_channels=12, num_layers=2, seed=SEED)
    teacher.fit(dataset, config=TrainerConfig(epochs=2, batch_size=64, seed=SEED))
    return teacher, detector_names


def windows_from(families, n_series, length, seed):
    records = [generate_series(families[i % len(families)], i, length, seed=seed)
               for i in range(n_series)]
    return np.vstack([extract_windows(r.series, WINDOW, stride=48) for r in records])


def main() -> None:
    print("training the teacher (small ResNet) ...")
    teacher, detector_names = train_teacher()
    families = DATASET_NAMES[:8]

    print("distilling the student from teacher soft labels ...")
    transfer = windows_from(families, 16, 1600, seed=SEED + 3)
    student, report = distill_student(
        teacher, transfer, detector_names,
        DistillConfig(epochs=20, features="stats", seed=SEED))
    quantized, gate = quantize_student(student, transfer, min_agreement=0.97)
    print(f"  teacher {report.teacher_parameters} params -> "
          f"student {report.student_parameters} params; "
          f"int8 gate agreement {gate['agreement']:.4f} "
          f"(max |dproba| {gate['max_proba_diff']:.4f})")

    # --- race the tiers on fresh query windows ---------------------------- #
    query = windows_from(families, 12, 1600, seed=SEED + 4)
    tiers = {"teacher": teacher, "student": student, "student-int8": quantized}
    rows = []
    probas = {}
    for tier, selector in tiers.items():
        start = time.perf_counter()
        probas[tier] = selector.predict_proba(query)
        elapsed = time.perf_counter() - start
        rows.append([tier, f"{len(query) / elapsed:.0f}",
                     f"{selection_agreement(probas[tier], probas['teacher']):.4f}"])
    print(format_table(["tier", "windows/sec", "agreement vs teacher"], rows))

    # --- drift: refresh a stale student from streamed windows -------------- #
    print("simulating drift served by a stale student checkpoint ...")
    drifted = windows_from(["MGAB", "Daphnet"], 8, 1600, seed=SEED + 5)
    # a deployment that predates the drift: nudge the classifier off-policy
    noise = np.random.default_rng(SEED + 6)
    student.classifier.weight.data += noise.normal(scale=0.25,
                                                   size=student.classifier.weight.data.shape)
    refresher = StudentRefresher(teacher, student,
                                 RefreshConfig(min_agreement=0.99, steps=80, lr=1e-2),
                                 quantized=quantized)
    outcome = refresher.refresh(drifted)
    print(f"  probe agreement {outcome.agreement_before:.4f} -> "
          f"{outcome.agreement_after:.4f}  "
          f"(escalated: {outcome.escalated}, fine-tune steps: {outcome.steps})")
    after = selection_agreement(quantized.predict_proba(drifted),
                                teacher.predict_proba(drifted))
    print(f"  int8 twin re-quantized in place: drifted-window agreement {after:.4f}")


if __name__ == "__main__":
    main()
