"""Scenario: how much do PISL, MKI and PA each contribute?

This example mirrors the paper's Tables 1-2 at a small scale.  It trains
the same ResNet selector under five configurations — standard, +PISL, +MKI,
+PISL&MKI, and the full KDSelector with PA — and compares selection quality
(average AUC-PR of the chosen detectors on held-out series), training time
and the fraction of sample visits pruned.

Run with:  python examples/knowledge_enhanced_training.py
"""

from __future__ import annotations

from repro.core import MKIConfig, PISLConfig, PruningConfig, TrainerConfig
from repro.data import TSBUADBenchmark, build_selector_dataset
from repro.detectors import make_default_model_set
from repro.eval import Oracle, evaluate_selection, oracle_upper_bound
from repro.selectors import make_selector
from repro.system.reporting import format_table

WINDOW = 64
EPOCHS = 4


def build_world():
    """Generate data and oracle knowledge shared by all configurations."""
    benchmark = TSBUADBenchmark(n_train_per_dataset=1, n_test_per_dataset=1,
                                series_length=800, seed=11).load()
    oracle = Oracle(make_default_model_set(window=24, fast=True), metric="auc_pr",
                    cache_dir=".quickstart_cache")
    perf_train = oracle.performance_matrix(benchmark.train_records)
    test_records = benchmark.all_test_records
    perf_test = oracle.performance_matrix(test_records)
    dataset = build_selector_dataset(benchmark.train_records, perf_train,
                                     oracle.detector_names, window=WINDOW, stride=32)
    return dataset, test_records, perf_test, oracle


def run(label: str, config: TrainerConfig, dataset, test_records, perf_test, oracle):
    selector = make_selector("ResNet", window=WINDOW, n_classes=dataset.n_classes,
                             mid_channels=12, num_layers=2, seed=0)
    selector.fit(dataset, config=config)
    evaluation = evaluate_selection(selector, test_records, perf_test,
                                    oracle.detector_names, window=WINDOW)
    report = selector.last_report_
    return [label, evaluation.average_score, report.total_time,
            f"{100 * report.pruned_fraction:.1f}%", evaluation.selection_accuracy]


def main() -> None:
    print("building data and oracle knowledge (cached after the first run) ...")
    dataset, test_records, perf_test, oracle = build_world()

    base = TrainerConfig(epochs=EPOCHS, batch_size=64, seed=0)
    pisl = PISLConfig(enabled=True, alpha=0.4, t_soft=0.25)
    mki = MKIConfig(enabled=True, weight=0.78, projection_dim=64)
    pa = PruningConfig(method="pa", ratio=0.8, lsh_bits=14, n_bins=8)

    configs = {
        "Standard": base,
        "+PISL": base.replace(pisl=pisl),
        "+MKI": base.replace(mki=mki),
        "+PISL & MKI": base.replace(pisl=pisl, mki=mki),
        "KDSelector (PISL+MKI+PA)": base.replace(pisl=pisl, mki=mki, pruning=pa),
    }

    rows = []
    for label, config in configs.items():
        print(f"training: {label} ...")
        rows.append(run(label, config, dataset, test_records, perf_test, oracle))

    upper = oracle_upper_bound(test_records, perf_test)
    ceiling = sum(upper.values()) / len(upper)

    print("\nResults (cf. paper Tables 1-2):")
    print(format_table(
        ["Configuration", "Avg AUC-PR", "Train time s", "Pruned visits", "Selection acc"], rows
    ))
    print(f"\noracle upper bound (always pick the best detector): {ceiling:.4f}")


if __name__ == "__main__":
    main()
