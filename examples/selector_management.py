"""Scenario: train several selectors, persist them, reload and compare.

Mirrors the "Selector Management" component of the demo system: multiple
selectors (non-NN and NN, with and without KDSelector) are trained on the
same historical data, saved to a selector store with metadata, and later
reloaded to pick the best one for deployment.

Run with:  python examples/selector_management.py
"""

from __future__ import annotations

import tempfile

from repro.core import TrainerConfig, kdselector_config
from repro.data import TSBUADBenchmark, build_selector_dataset
from repro.detectors import make_default_model_set
from repro.eval import Oracle, evaluate_selection
from repro.selectors import make_selector
from repro.selectors.nn_selector import NNSelector
from repro.system import SelectorStore
from repro.system.reporting import format_table

WINDOW = 64


def main() -> None:
    # Shared historical data and oracle knowledge.
    benchmark = TSBUADBenchmark(n_train_per_dataset=1, n_test_per_dataset=1,
                                series_length=800, seed=5).load()
    oracle = Oracle(make_default_model_set(window=24, fast=True), metric="auc_pr",
                    cache_dir=".quickstart_cache")
    perf_train = oracle.performance_matrix(benchmark.train_records)
    dataset = build_selector_dataset(benchmark.train_records, perf_train,
                                     oracle.detector_names, window=WINDOW, stride=32)
    test_records = benchmark.all_test_records
    perf_test = oracle.performance_matrix(test_records)

    store_dir = tempfile.mkdtemp(prefix="kdselector_store_")
    store = SelectorStore(store_dir)
    print(f"selector store at {store_dir}\n")

    candidates = {
        "rocket": ("Rocket", {"n_kernels": 128}, None),
        "random_forest": ("RandomForest", {"n_estimators": 30}, None),
        "resnet_standard": ("ResNet", {"window": WINDOW, "mid_channels": 12, "num_layers": 2},
                            TrainerConfig(epochs=4, batch_size=64, seed=0)),
        "resnet_kdselector": ("ResNet", {"window": WINDOW, "mid_channels": 12, "num_layers": 2},
                              kdselector_config(epochs=4, batch_size=64, seed=0)),
    }

    # Train, evaluate and persist every candidate.
    for name, (selector_type, kwargs, config) in candidates.items():
        print(f"training {name} ({selector_type}) ...")
        selector = make_selector(selector_type, n_classes=dataset.n_classes, seed=0, **kwargs)
        if isinstance(selector, NNSelector):
            selector.fit(dataset, config=config)
        else:
            selector.fit(dataset)
        evaluation = evaluate_selection(selector, test_records, perf_test,
                                        oracle.detector_names, window=WINDOW)
        store.save(name, selector, metadata={
            "selector_type": selector_type,
            "avg_auc_pr": round(evaluation.average_score, 4),
            "selection_accuracy": round(evaluation.selection_accuracy, 4),
            "window": WINDOW,
        }, overwrite=True)

    # Later (possibly in another process): list the store and pick the best.
    print("\nstored selectors:")
    rows = [
        [info.name, info.selector_type, "NN" if info.is_neural else "non-NN",
         info.metadata.get("avg_auc_pr", float("nan")),
         info.metadata.get("selection_accuracy", float("nan"))]
        for info in store.list()
    ]
    print(format_table(["Name", "Type", "Kind", "Avg AUC-PR", "Selection acc"], rows))

    best = max(store.list(), key=lambda info: info.metadata.get("avg_auc_pr", 0.0))
    print(f"\nreloading best selector: {best.name}")
    reloaded = store.load(best.name)
    evaluation = evaluate_selection(reloaded, test_records, perf_test,
                                    oracle.detector_names, window=WINDOW)
    print(f"re-evaluated average AUC-PR after reload: {evaluation.average_score:.4f} "
          f"(stored: {best.metadata['avg_auc_pr']})")


if __name__ == "__main__":
    main()
