"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments that lack the ``wheel`` package (legacy editable
installs go through ``setup.py develop`` and do not need it).
"""

from setuptools import setup

setup()
