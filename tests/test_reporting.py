"""Direct unit tests for the plain-text reporting helpers (repro.system.reporting)."""

import math

from repro.serving.cache import CacheStats, LRUCache
from repro.system.reporting import (
    format_cache_stats,
    format_markdown_table,
    format_table,
    per_dataset_table,
)


class TestFormatTable:
    def test_columns_align_and_floats_format(self):
        text = format_table(["name", "score"], [["a", 0.5], ["longer", 1.0]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "0.5000" in text and "1.0000" in text
        assert len({len(line) for line in lines[:2]}) <= 2  # header + rule line up

    def test_empty_rows_render_headers_only(self):
        text = format_table(["a", "b"], [])
        assert text.splitlines() == ["a  b", "-  -"]

    def test_nan_renders_as_na(self):
        text = format_table(["v"], [[float("nan")], [0.25]])
        assert "n/a" in text and "nan" not in text

    def test_ragged_rows_do_not_raise(self):
        text = format_table(["only"], [["x", "extra", "more"], ["y"]])
        assert "extra" in text and "more" in text

    def test_custom_float_format(self):
        assert "0.1" in format_table(["v"], [[0.125]], float_format="{:.1f}")


class TestMarkdownTable:
    def test_structure_and_nan(self):
        text = format_markdown_table(["m", "v"], [["a", 1.0], ["b", float("nan")]])
        lines = text.splitlines()
        assert lines[0] == "| m | v |"
        assert lines[1] == "|---|---|"
        assert "| b | n/a |" in lines
        assert "nan" not in text


class TestFormatCacheStats:
    def test_fresh_cache_hit_rate_is_na_not_zero(self):
        text = format_cache_stats(LRUCache(capacity=4).stats)
        assert "hit rate" in text and "n/a" in text
        assert "0.0000" not in text.split("hit rate")[1].splitlines()[0]

    def test_counters_and_throughput_rows(self):
        stats = CacheStats(hits=3, misses=1, evictions=2, size=1, capacity=4)
        text = format_cache_stats(stats, throughput={"cold": 123.456})
        assert "cache hits" in text and "cache misses" in text
        assert "0.7500" in text  # hit rate
        assert "1/4" in text  # entries
        assert "cold throughput" in text and "123.5 series/s" in text

    def test_none_stats_render_disabled(self):
        text = format_cache_stats(None)
        assert "disabled" in text


class TestPerDatasetTable:
    def test_missing_scores_average_as_nan_not_crash(self):
        results = {"m1": {"ECG": 0.5, "IOPS": 0.7}, "m2": {}}
        text = per_dataset_table(results)
        assert "Average" in text
        assert "0.6000" in text  # m1 average
        assert "n/a" in text  # m2 has no scores anywhere
        assert not math.isnan(0.0)  # sanity: helper did not raise above

    def test_explicit_dataset_order_and_no_average(self):
        results = {"m": {"B": 1.0, "A": 0.0}}
        text = per_dataset_table(results, datasets=["B", "A"],
                                 include_average=False)
        lines = text.splitlines()
        assert lines[2].startswith("B") and lines[3].startswith("A")
        assert "Average" not in text
