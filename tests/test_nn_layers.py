"""Tests for repro.nn.layers and the module system."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestLinearAndConvModules:
    def test_linear_shapes(self):
        layer = nn.Linear(8, 3)
        out = layer(Tensor(np.zeros((5, 8))))
        assert out.shape == (5, 3)

    def test_linear_without_bias_has_single_parameter(self):
        layer = nn.Linear(4, 2, bias=False)
        assert len(layer.parameters()) == 1

    def test_conv1d_module(self):
        layer = nn.Conv1d(2, 6, kernel_size=3, padding=1)
        out = layer(Tensor(np.zeros((4, 2, 16))))
        assert out.shape == (4, 6, 16)

    def test_parameters_are_trainable(self):
        layer = nn.Linear(3, 3)
        for p in layer.parameters():
            assert p.requires_grad


class TestNormalisation:
    def test_batchnorm_normalises_batch(self):
        layer = nn.BatchNorm1d(4)
        x = Tensor(np.random.default_rng(0).normal(3.0, 2.0, size=(64, 4)))
        out = layer(x).numpy()
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_batchnorm_eval_uses_running_stats(self):
        layer = nn.BatchNorm1d(2)
        x = Tensor(np.random.default_rng(1).normal(5.0, 1.0, size=(32, 2)))
        for _ in range(40):
            layer(x)
        layer.eval()
        out = layer(Tensor(np.full((4, 2), 5.0))).numpy()
        # After many updates the running mean approaches 5, so a constant-5
        # input normalises to roughly zero in eval mode.
        assert np.all(np.abs(out) < 0.5)

    def test_batchnorm_3d_input(self):
        layer = nn.BatchNorm1d(3)
        out = layer(Tensor(np.random.default_rng(2).normal(size=(8, 3, 20))))
        assert out.shape == (8, 3, 20)

    def test_batchnorm_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            nn.BatchNorm1d(3)(Tensor(np.zeros(3)))

    def test_layernorm_normalises_last_dim(self):
        layer = nn.LayerNorm(16)
        out = layer(Tensor(np.random.default_rng(3).normal(2.0, 3.0, size=(4, 16)))).numpy()
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)


class TestActivationsAndDropout:
    def test_relu_module(self):
        assert np.allclose(nn.ReLU()(Tensor([-1.0, 2.0])).numpy(), [0.0, 2.0])

    def test_dropout_respects_training_flag(self):
        layer = nn.Dropout(0.9, seed=0)
        layer.eval()
        out = layer(Tensor(np.ones(100))).numpy()
        assert np.allclose(out, 1.0)

    def test_flatten(self):
        assert nn.Flatten()(Tensor(np.zeros((2, 3, 4)))).shape == (2, 12)

    def test_maxpool_module(self):
        assert nn.MaxPool1d(2)(Tensor(np.zeros((1, 1, 8)))).shape == (1, 1, 4)

    def test_global_pools(self):
        x = Tensor(np.random.default_rng(4).normal(size=(2, 3, 5)))
        assert nn.GlobalAvgPool1d()(x).shape == (2, 3)
        assert nn.GlobalMaxPool1d()(x).shape == (2, 3)


class TestSequentialAndModuleList:
    def test_sequential_chains(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        assert model(Tensor(np.zeros((3, 4)))).shape == (3, 2)
        assert len(model) == 3
        assert isinstance(model[0], nn.Linear)

    def test_sequential_collects_parameters(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.Linear(8, 2))
        assert len(model.parameters()) == 4

    def test_module_list(self):
        items = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(items) == 2
        assert len(items.parameters()) == 4
        with pytest.raises(RuntimeError):
            items(Tensor(np.zeros((1, 2))))

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5), nn.Linear(2, 2))
        model.eval()
        assert not model[0].training
        model.train()
        assert model[0].training


class TestAttentionTransformerLSTM:
    def test_attention_output_shape(self):
        attn = nn.MultiHeadSelfAttention(16, 4)
        out = attn(Tensor(np.random.default_rng(5).normal(size=(2, 10, 16))))
        assert out.shape == (2, 10, 16)

    def test_attention_rejects_bad_heads(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(10, 3)

    def test_transformer_layer_gradients_flow(self):
        layer = nn.TransformerEncoderLayer(8, 2, dropout=0.0)
        x = Tensor(np.random.default_rng(6).normal(size=(2, 6, 8)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in layer.parameters())

    def test_lstm_output_shape(self):
        lstm = nn.LSTM(3, 7)
        out = lstm(Tensor(np.random.default_rng(7).normal(size=(4, 9, 3))))
        assert out.shape == (4, 9, 7)

    def test_lstm_cell_state_shapes(self):
        cell = nn.LSTMCell(2, 5)
        h = Tensor(np.zeros((3, 5)))
        c = Tensor(np.zeros((3, 5)))
        h2, c2 = cell(Tensor(np.zeros((3, 2))), (h, c))
        assert h2.shape == (3, 5)
        assert c2.shape == (3, 5)

    def test_positional_encoding_adds_position_information(self):
        pe = nn.PositionalEncoding(8)
        x = Tensor(np.zeros((1, 5, 8)))
        out = pe(x).numpy()
        assert not np.allclose(out[0, 0], out[0, 1])

    def test_embedding_lookup(self):
        emb = nn.Embedding(10, 4)
        out = emb(np.array([1, 3, 3]))
        assert out.shape == (3, 4)
        assert np.allclose(out.numpy()[1], out.numpy()[2])


class TestStateDict:
    def test_state_dict_roundtrip(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        clone = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        clone.load_state_dict(model.state_dict())
        x = Tensor(np.random.default_rng(8).normal(size=(3, 4)))
        assert np.allclose(model(x).numpy(), clone(x).numpy())

    def test_state_dict_includes_buffers(self):
        bn = nn.BatchNorm1d(3)
        state = bn.state_dict()
        assert any(key.startswith("__buffer__.") for key in state)

    def test_load_state_dict_shape_mismatch_raises(self):
        model = nn.Linear(4, 2)
        bad = {"weight": np.zeros((3, 3)), "bias": np.zeros(2)}
        with pytest.raises(ValueError):
            model.load_state_dict(bad)

    def test_load_state_dict_unknown_key_raises(self):
        with pytest.raises(KeyError):
            nn.Linear(2, 2).load_state_dict({"nope": np.zeros(2)})

    def test_freeze_marks_parameters(self):
        model = nn.Linear(4, 2)
        model.freeze()
        assert all(not p.requires_grad for p in model.parameters())

    def test_num_parameters(self):
        model = nn.Linear(4, 2)
        assert model.num_parameters() == 4 * 2 + 2

    def test_zero_grad_clears(self):
        model = nn.Linear(3, 1)
        out = model(Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None
