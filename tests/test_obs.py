"""Tests for the observability subsystem (repro.obs).

The invariant everything here guards: observability only *reads* the
pipeline.  With metrics, tracing and auditing all enabled, every selection
and score must stay bitwise-identical to an uninstrumented run, and an
audited selection must replay bit-for-bit from its content-hashed inputs.
"""

import json

import numpy as np
import pytest

from repro.core import TrainerConfig
from repro.data import build_selector_dataset, generate_series
from repro.obs import (
    AuditLog,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_AUDIT,
    NULL_METRIC,
    NULL_TRACER,
    NullAuditLog,
    Tracer,
    content_hash,
    explain_from_audit,
    explain_stream,
    format_explain,
    replay_selection,
    set_default_tracer,
)
from repro.obs import metrics as obs_metrics
from repro.selectors import make_selector
from repro.streaming import StreamEngine, StreamingConfig, StreamingSelector


# --------------------------------------------------------------------------- #
# metrics registry
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_accumulates_and_rejects_negative(self):
        counter = Counter("t_total", "help")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("g", "help")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_histogram_buckets_are_cumulative(self):
        histogram = Histogram("h_seconds", "help", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(5.55)
        # per-bucket counts, last entry the +Inf overflow
        assert histogram.bucket_counts == [1, 1, 1]
        # exported rows are cumulative
        rows = {(suffix, labels.get("le")): value
                for suffix, labels, value in histogram.samples()}
        assert rows[("_bucket", "0.1")] == 1
        assert rows[("_bucket", "1")] == 2
        assert rows[("_bucket", "+Inf")] == 3

    def test_histogram_timer_observes_once(self):
        histogram = Histogram("h2_seconds", "help")
        with histogram.time():
            pass
        assert histogram.count == 1

    def test_registry_returns_same_metric_for_same_name_and_labels(self):
        registry = MetricsRegistry(enabled=True)
        a = registry.counter("x_total", "help", shard="s0")
        b = registry.counter("x_total", shard="s0")
        c = registry.counter("x_total", shard="s1")
        assert a is b and a is not c
        a.inc()
        assert registry.value("x_total", shard="s0") == 1

    def test_registry_rejects_kind_mismatch(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("y_total")
        with pytest.raises(TypeError):
            registry.gauge("y_total")

    def test_disabled_registry_hands_out_null_metrics(self):
        registry = MetricsRegistry(enabled=False)
        metric = registry.counter("z_total")
        assert metric is NULL_METRIC
        metric.inc()  # must be a no-op, not an error
        with metric.time():
            pass
        assert registry.render_prometheus() == ""

    def test_registered_metric_works_even_when_registry_disabled(self):
        # stats-bearing components construct real counters and register
        # them; the counter must count regardless of the registry switch
        registry = MetricsRegistry(enabled=False)
        counter = registry.register(Counter("real_total"))
        counter.inc(3)
        assert counter.value == 3
        assert registry.metrics() == []

    def test_register_collision_gets_instance_label(self):
        registry = MetricsRegistry(enabled=True)
        first = registry.register(Counter("dup_total", "h"))
        second = registry.register(Counter("dup_total", "h"))
        first.inc()
        second.inc(2)
        text = registry.render_prometheus()
        assert 'dup_total 1' in text
        assert 'dup_total{instance="2"} 2' in text

    def test_prometheus_rendering_format(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("req_total", "requests served", shard="s0").inc(7)
        histogram = registry.histogram("lat_seconds", "latency", buckets=(0.5,))
        histogram.observe(0.25)
        text = registry.render_prometheus()
        assert "# HELP req_total requests served" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{shard="s0"} 7' in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.5"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.25" in text
        assert "lat_seconds_count 1" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("esc_total", "h", path='a"b\\c\nd').inc()
        assert 'esc_total{path="a\\"b\\\\c\\nd"} 1' in registry.render_prometheus()

    def test_default_registry_swap_round_trip(self):
        replacement = MetricsRegistry(enabled=True)
        previous = obs_metrics.set_default_registry(replacement)
        try:
            assert obs_metrics.default_registry() is replacement
        finally:
            obs_metrics.set_default_registry(previous)
        assert obs_metrics.default_registry() is previous


# --------------------------------------------------------------------------- #
# tracing
# --------------------------------------------------------------------------- #
class TestTracer:
    def test_spans_nest_and_use_the_injected_clock(self):
        ticks = iter([1.0, 2.0, 3.0, 4.0])
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.span("outer", stream="s0"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans[0], tracer.spans[1]
        assert (outer.name, inner.name) == ("outer", "inner")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.start_s == 1.0 and inner.start_s == 2.0
        assert inner.duration_s == 1.0 and outer.duration_s == 3.0
        assert outer.attrs == {"stream": "s0"}

    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer(sink=path)
        with tracer.span("flush", streams=2):
            pass
        tracer.close()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0]["name"] == "flush"
        assert rows[0]["attrs"] == {"streams": 2}
        assert rows[0]["end_s"] >= rows[0]["start_s"]

    def test_default_tracer_swap_and_null(self):
        tracer = Tracer()
        previous = set_default_tracer(tracer)
        try:
            from repro.obs import span
            with span("top"):
                pass
            assert [s.name for s in tracer.spans] == ["top"]
        finally:
            set_default_tracer(previous)
        # the null tracer accepts spans silently
        with NULL_TRACER.span("ignored"):
            pass
        assert not NULL_TRACER.enabled


# --------------------------------------------------------------------------- #
# audit log
# --------------------------------------------------------------------------- #
class TestAuditLog:
    def test_record_read_round_trip(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        audit = AuditLog(path)
        audit.record("selection", stream="s0", selected_index=2)
        audit.record("drift", stream="s1", statistic=0.4)
        audit.close()
        events = AuditLog.read(path)
        assert [e["event"] for e in events] == ["selection", "drift"]
        assert [e["seq"] for e in events] == [1, 2]
        assert events[0]["stream"] == "s0"

    def test_logs_are_byte_identical_across_runs(self, tmp_path):
        # clock-free by default: the trail itself is replayable output
        def run(path):
            audit = AuditLog(path)
            for i in range(3):
                audit.record("selection", stream=f"s{i}", votes={"a": 1.0})
            audit.close()
            return path.read_bytes()

        assert run(tmp_path / "a.jsonl") == run(tmp_path / "b.jsonl")

    def test_event_and_stream_filters(self):
        audit = AuditLog()
        audit.record("selection", stream="s0")
        audit.record("selection", stream="s1")
        audit.record("drift", stream="s0")
        assert len(audit.events(event="selection")) == 2
        assert len(audit.events(stream="s0")) == 2
        assert len(audit.events(event="drift", stream="s1")) == 0

    def test_log_and_trace_sink_create_parent_directories(self, tmp_path):
        audit = AuditLog(tmp_path / "new" / "dir" / "audit.jsonl")
        audit.record("selection", stream="s0")
        audit.close()
        assert len(AuditLog.read(tmp_path / "new" / "dir" / "audit.jsonl")) == 1
        tracer = Tracer(clock=iter([0.0, 1.0]).__next__,
                        sink=tmp_path / "other" / "spans.jsonl")
        with tracer.span("t"):
            pass
        tracer.close()
        assert (tmp_path / "other" / "spans.jsonl").exists()

    def test_null_audit_is_disabled_and_inert(self):
        assert not NULL_AUDIT.enabled
        assert NULL_AUDIT.record("selection", stream="x") is None
        assert NULL_AUDIT.events() == []
        assert len(NullAuditLog()) == 0

    def test_content_hash_sensitive_to_data_and_knobs(self, rng):
        series = rng.normal(size=256)
        base = content_hash(series, extra=(64, 64, "vote"))
        assert base == content_hash(series.copy(), extra=(64, 64, "vote"))
        assert base != content_hash(series, extra=(64, 32, "vote"))
        perturbed = series.copy()
        perturbed[7] += 1e-12
        assert base != content_hash(perturbed, extra=(64, 64, "vote"))


# --------------------------------------------------------------------------- #
# the engine under full observability: bitwise equivalence + replay
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def obs_world():
    """A trained selector + live traffic, as in test_streaming."""
    train_records = [generate_series(name, 0, 400, seed=4)
                     for name in ("ECG", "IOPS", "MGAB", "SMD")]
    detector_names = ["IForest", "HBOS", "MP", "POLY"]
    gen = np.random.default_rng(9)
    matrix = gen.uniform(0.05, 0.4, size=(len(train_records), len(detector_names)))
    matrix[np.arange(len(train_records)), np.arange(len(train_records))] += 0.5
    dataset = build_selector_dataset(train_records, matrix, detector_names,
                                     window=64, stride=64)
    selector = make_selector("MLP", window=64, n_classes=4, hidden=16,
                             feature_dim=8, seed=0)
    selector.fit(dataset, config=TrainerConfig(epochs=2, batch_size=32))
    gen = np.random.default_rng(6)
    streams = {f"s{i}": gen.normal(size=300) for i in range(4)}
    return {"selector": selector, "detector_names": detector_names,
            "streams": streams}


def _drive_engine(engine, streams, n_ticks=3, chunk=100):
    updates = {}
    for tick in range(n_ticks):
        for sid, series in streams.items():
            engine.append(sid, series[tick * chunk:(tick + 1) * chunk])
        for sid, update in engine.flush().items():
            updates[sid] = update.as_dict()
    return updates


@pytest.fixture
def full_obs(tmp_path):
    """Enable every surface (registry + tracer), restore on exit."""
    registry = MetricsRegistry(enabled=True)
    previous_registry = obs_metrics.set_default_registry(registry)
    tracer = Tracer(sink=tmp_path / "spans.jsonl")
    previous_tracer = set_default_tracer(tracer)
    yield registry, tracer
    set_default_tracer(previous_tracer)
    tracer.close()
    obs_metrics.set_default_registry(previous_registry)


class TestBitwiseUnderObservability:
    def test_stream_engine_selections_identical_with_obs_on(self, obs_world,
                                                            full_obs, tmp_path):
        config = StreamingConfig(window=64, stride=32)
        plain = StreamEngine(obs_world["selector"], obs_world["detector_names"],
                             config)
        reference = _drive_engine(plain, obs_world["streams"])
        reference_scores = {s: plain.scores(s) for s in obs_world["streams"]}

        audit = AuditLog(tmp_path / "audit.jsonl")
        instrumented = StreamEngine(obs_world["selector"],
                                    obs_world["detector_names"], config,
                                    audit=audit)
        updates = _drive_engine(instrumented, obs_world["streams"])
        assert updates == reference
        for stream in obs_world["streams"]:
            assert np.array_equal(instrumented.scores(stream),
                                  reference_scores[stream])
        # the surfaces actually collected something
        registry, tracer = full_obs
        assert registry.value("repro_stream_flushes_total") == 3
        assert any(s.name == "engine.flush" for s in tracer.spans)
        assert len(audit.events(event="selection")) > 0

    def test_sharded_service_selections_identical_with_obs_on(self, obs_world,
                                                              full_obs, tmp_path):
        from repro.service import (ServiceConfig, ShardedService,
                                   make_engine_factory)

        config = StreamingConfig(window=64, stride=32)
        plain = StreamEngine(obs_world["selector"], obs_world["detector_names"],
                             config)
        reference = _drive_engine(plain, obs_world["streams"], n_ticks=2)

        audit = AuditLog(tmp_path / "service_audit.jsonl")
        factory = make_engine_factory(obs_world["selector"],
                                      obs_world["detector_names"], config)
        with ShardedService(factory, ServiceConfig(n_shards=2),
                            audit=audit) as service:
            updates = {}
            for tick in range(2):
                for sid, series in obs_world["streams"].items():
                    service.append(sid, series[tick * 100:(tick + 1) * 100])
                updates.update(service.flush())
            assert updates == reference
            assert service.stats()["totals"]["duplicates_suppressed"] == 0
        selections = audit.events(event="selection")
        assert len(selections) == 2 * len(obs_world["streams"])
        # router-side audit carries the same decision the engine made
        last = {e["stream"]: e for e in selections}
        for sid, update in reference.items():
            assert last[sid]["selected_index"] == update["selected_index"]
            assert last[sid]["votes"] == update["votes"]


class TestAuditReplay:
    def test_recorded_selection_replays_bitwise(self, obs_world, tmp_path):
        audit = AuditLog(tmp_path / "audit.jsonl")
        engine = StreamEngine(obs_world["selector"], obs_world["detector_names"],
                              StreamingConfig(window=64, stride=32), audit=audit)
        _drive_engine(engine, obs_world["streams"])
        audit.close()

        events = AuditLog.read(tmp_path / "audit.jsonl")
        replayed_any = False
        for stream in obs_world["streams"]:
            final = [e for e in events if e["event"] == "selection"
                     and e["stream"] == stream][-1]
            if final["provisional"]:
                continue
            result = replay_selection(final, engine.series(stream),
                                      obs_world["selector"])
            assert result["selected_index"] == final["selected_index"]
            assert result["votes"] == final["votes"]
            assert result["n_windows"] == final["n_windows"]
            replayed_any = True
        assert replayed_any

    def test_replay_refuses_tampered_series(self, obs_world, tmp_path):
        audit = AuditLog()
        engine = StreamEngine(obs_world["selector"], obs_world["detector_names"],
                              StreamingConfig(window=64, stride=32), audit=audit)
        _drive_engine(engine, obs_world["streams"])
        final = audit.events(event="selection", stream="s0")[-1]
        tampered = engine.series("s0").copy()
        tampered[0] += 1e-9
        with pytest.raises(ValueError, match="hash"):
            replay_selection(final, tampered, obs_world["selector"])

    def test_replay_refuses_foreign_events(self, obs_world):
        with pytest.raises(ValueError):
            replay_selection({"event": "drift"}, np.zeros(10),
                             obs_world["selector"])
        with pytest.raises(ValueError):
            replay_selection({"event": "selection", "provisional": True,
                              "inputs": None}, np.zeros(10),
                             obs_world["selector"])

    def test_stream_update_as_dict_round_trips_through_json(self, obs_world):
        engine = StreamEngine(obs_world["selector"], obs_world["detector_names"],
                              StreamingConfig(window=64, stride=32))
        update = engine.push("s0", obs_world["streams"]["s0"][:200])
        decoded = json.loads(json.dumps(update.as_dict()))
        assert decoded == update.as_dict()


# --------------------------------------------------------------------------- #
# explain
# --------------------------------------------------------------------------- #
class TestExplain:
    def test_engine_explain_matches_selection(self, obs_world):
        engine = StreamEngine(obs_world["selector"], obs_world["detector_names"],
                              StreamingConfig(window=64, stride=32))
        _drive_engine(engine, obs_world["streams"])
        for stream in obs_world["streams"]:
            info = engine.explain(stream)
            view = engine.selection(stream)
            assert info["selected_index"] == view.selected_index
            assert info["n_windows"] == view.n_windows
            votes = info["votes"]
            ranked = sorted(votes.values(), reverse=True)
            assert info["margin"] == pytest.approx(ranked[0] - ranked[1])
            assert sum(info["window_votes"].values()) == \
                view.n_windows - info["vote_start"]
        with pytest.raises(KeyError):
            engine.explain("unknown-stream")

    def test_explain_from_audit_reproduces_winner_and_margin(self, obs_world):
        audit = AuditLog()
        engine = StreamEngine(obs_world["selector"], obs_world["detector_names"],
                              StreamingConfig(window=64, stride=32), audit=audit)
        _drive_engine(engine, obs_world["streams"])
        for stream in obs_world["streams"]:
            live = explain_stream(engine, stream)
            recorded = explain_from_audit(audit.events(), stream)
            assert recorded["selected_index"] == live["selected_index"]
            assert recorded["selected_model"] == live["selected_model"]
            assert recorded["votes"] == live["votes"]
            assert recorded["margin"] == live["margin"]
        with pytest.raises(ValueError):
            explain_from_audit(audit.events(), "never-seen")

    def test_format_explain_renders_both_sources(self, obs_world):
        audit = AuditLog()
        engine = StreamEngine(obs_world["selector"], obs_world["detector_names"],
                              StreamingConfig(window=64, stride=32), audit=audit)
        _drive_engine(engine, obs_world["streams"])
        for info in (explain_stream(engine, "s0"),
                     explain_from_audit(audit.events(), "s0")):
            text = format_explain(info)
            assert "s0" in text and info["selected_model"] in text
            assert "Vote share" in text

    def test_format_explain_surfaces_quantization_provenance(self, obs_world):
        engine = StreamEngine(obs_world["selector"], obs_world["detector_names"],
                              StreamingConfig(window=64, stride=32))
        _drive_engine(engine, obs_world["streams"])
        info = explain_stream(engine, "s0")
        assert info["quantization"] is None  # float selector: nothing to show
        info["quantization"] = {"agreement": 0.9985, "n_calibration": 160,
                                "act_scales_hash": "f024bb7753935900",
                                "n_quantized_convs": 8, "n_folded_bns": 6}
        text = format_explain(info)
        assert "quantization: agreement 0.9985" in text
        assert "scales hash f024bb7753935900" in text
        assert "8 int8 convs, 6 folded norms" in text


# --------------------------------------------------------------------------- #
# registry-backed stats views stay coherent
# --------------------------------------------------------------------------- #
class TestStatsViews:
    def test_engine_stats_track_registry_counters(self, obs_world):
        engine = StreamEngine(obs_world["selector"], obs_world["detector_names"],
                              StreamingConfig(window=64, stride=32))
        _drive_engine(engine, obs_world["streams"], n_ticks=2)
        stats = engine.stats
        assert stats.flushes == 2
        assert stats.points == 2 * 100 * len(obs_world["streams"])
        selector = engine.streaming_selector
        assert stats.forward_windows == selector.forward_windows
        assert stats.cached_windows == selector.cached_windows

    def test_cache_stats_view_reflects_counter_values(self):
        from repro.serving.cache import LRUCache

        cache = LRUCache(capacity=2, name="t")
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.lookups) == (1, 1, 2)
        assert stats.hit_rate == pytest.approx(0.5)
