"""Tests for cost-aware cascade selection (repro.cascade).

The load-bearing properties:

* **bitwise opt-in** — with no router attached (or a threshold that never
  escalates) serving and streaming answers are bitwise identical to the
  pre-cascade pipeline; with a threshold that always escalates they are
  bitwise identical to the teacher-only pipeline,
* **content-local determinism** — a window row's escalation verdict
  depends only on its contents, the threshold and the seed, so the
  escalation set is invariant across chunk sizes, tick boundaries and
  shard counts,
* **report-only costs** — clocks feed the audit trail and the cost
  model's training labels, never a routing decision.
"""

import json

import numpy as np
import pytest

from repro.cascade import (
    COST_FEATURE_NAMES,
    AdmitDecision,
    CascadeRouter,
    CostModel,
    CostObservation,
    calibrate_margin_threshold,
    cost_features,
    cost_features_cached,
    harvest_cost_observations,
    margins,
    observed_cost,
)
from repro.cascade.harvest import cost_observation_event
from repro.core import TrainerConfig
from repro.data import build_selector_dataset, extract_windows, generate_series
from repro.obs import AuditLog
from repro.obs.explain import explain_from_audit, explain_stream, format_explain
from repro.selectors import make_selector
from repro.service import ServiceConfig, ShardedService, make_engine_factory
from repro.serving import SelectionService, ServingConfig
from repro.streaming import StreamEngine, StreamingConfig
from repro.system.cli import main


# --------------------------------------------------------------------------- #
# shared world: a teacher, an imperfect fast tier, deterministic traffic
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def cascade_world():
    """Two trained selectors + live traffic, as in test_streaming."""
    train_records = [generate_series(name, 0, 400, seed=4)
                     for name in ("ECG", "IOPS", "MGAB", "SMD")]
    detector_names = ["IForest", "HBOS", "MP", "POLY"]
    gen = np.random.default_rng(9)
    matrix = gen.uniform(0.05, 0.4, size=(len(train_records), len(detector_names)))
    matrix[np.arange(len(train_records)), np.arange(len(train_records))] += 0.5
    dataset = build_selector_dataset(train_records, matrix, detector_names,
                                     window=64, stride=64)

    teacher = make_selector("MLP", window=64, n_classes=4, hidden=16,
                            feature_dim=8, seed=0)
    teacher.fit(dataset, config=TrainerConfig(epochs=2, batch_size=32))
    # a thinner, differently-seeded selector stands in for the distilled
    # student: same interface, imperfect agreement, so escalations happen
    fast = make_selector("MLP", window=64, n_classes=4, hidden=8,
                         feature_dim=8, seed=1)
    fast.fit(dataset, config=TrainerConfig(epochs=1, batch_size=32))

    queries = [generate_series(name, 3, 700, seed=6)
               for name in ("ECG", "IOPS", "MGAB", "SMD", "NAB")]
    streams = {record.name: np.asarray(record.series) for record in queries}
    return {"teacher": teacher, "fast": fast,
            "detector_names": detector_names, "streams": streams}


def _router(world, threshold=0.1, seed=0, **kwargs):
    return CascadeRouter(world["teacher"], threshold=threshold, seed=seed,
                         window=64, **kwargs)


def _drive(target, streams, chunk=100):
    """Feed every stream in fixed-size ticks; returns updates per stream."""
    updates = {}
    length = max(len(s) for s in streams.values())
    for start in range(0, length, chunk):
        for sid, series in streams.items():
            piece = series[start:start + chunk]
            if len(piece):
                target.append(sid, piece)
        for sid, update in target.flush().items():
            updates[sid] = update.as_dict() if hasattr(update, "as_dict") else update
    return updates


def _strip(update, *keys):
    return {k: v for k, v in update.items() if k not in keys}


# --------------------------------------------------------------------------- #
# cost model
# --------------------------------------------------------------------------- #
class TestCostModel:
    def test_fit_recovers_tier_line(self):
        observations = [
            CostObservation(kind="selector_forward", target="teacher",
                            n_windows=n, window=96, wall_ms=2.0 + 0.5 * n)
            for n in (1, 4, 16, 64, 256)
        ]
        model = CostModel.fit(observations, window=96)
        assert model.predict_latency_ms("teacher", 100) == pytest.approx(52.0, rel=0.01)

    def test_fit_recovers_detector_length_line(self):
        observations = [
            CostObservation(kind="detection", target="IForest", n_windows=0,
                            window=96, wall_ms=5.0 + 0.02 * length, length=length)
            for length in (200, 400, 1600, 6400)
        ]
        model = CostModel.fit(observations, window=96)
        series = np.zeros(1000)
        predicted = model.predict_detection_ms("IForest", series)
        assert predicted == pytest.approx(25.0, rel=0.05)

    def test_unseen_tier_keeps_analytic_default(self):
        model = CostModel.fit([], window=96)
        default = CostModel.default(96)
        assert model.predict_latency_ms("student", 40) \
            == default.predict_latency_ms("student", 40)
        assert model.predict_detection_ms("NoSuchDetector", np.zeros(100)) is None

    def test_predictions_are_non_negative(self):
        observations = [
            CostObservation(kind="selector_forward", target="teacher",
                            n_windows=n, window=96, wall_ms=ms)
            for n, ms in ((10, 50.0), (100, 5.0))  # absurd negative slope
        ]
        model = CostModel.fit(observations, window=96)
        assert model.predict_latency_ms("teacher", 10_000) >= 0.0

    def test_save_load_round_trip(self, tmp_path):
        observations = [
            CostObservation(kind="selector_forward", target="student-int8",
                            n_windows=n, window=64, wall_ms=1.0 + 0.1 * n,
                            peak_mb=0.5 + 0.01 * n)
            for n in (2, 8, 32)
        ]
        model = CostModel.fit(observations, window=64)
        path = tmp_path / "cost_model.json"
        model.save(path)
        loaded = CostModel.load(path)
        assert loaded.to_dict() == model.to_dict()
        assert loaded.predict_latency_ms("student-int8", 20) \
            == model.predict_latency_ms("student-int8", 20)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"not\": \"a cost model\"}")
        with pytest.raises((KeyError, ValueError)):
            CostModel.load(path)

    def test_cost_features_cached_matches_uncached(self):
        series = np.sin(np.linspace(0, 20, 500))
        direct = cost_features(series, 64, 64)
        cached = cost_features_cached(series, 64, 64)
        again = cost_features_cached(series, 64, 64)
        assert np.array_equal(direct, cached)
        assert np.array_equal(cached, again)
        assert len(direct) == len(COST_FEATURE_NAMES)


class TestHarvest:
    def test_observed_cost_measures_wall_only_by_default(self):
        result, wall_ms, peak_mb = observed_cost(lambda: sum(range(1000)))
        assert result == sum(range(1000))
        assert wall_ms >= 0.0
        assert peak_mb is None  # tracemalloc not tracing -> no memory label

    def test_observed_cost_tracks_memory_when_asked(self):
        result, _, peak_mb = observed_cost(lambda: np.zeros(100_000),
                                           track_memory=True)
        assert len(result) == 100_000
        assert peak_mb is not None and peak_mb > 0.1  # ~0.76 MB of float64

    def test_harvest_round_trips_and_skips_malformed(self):
        obs = CostObservation(kind="selector_forward", target="teacher",
                              n_windows=12, window=64, wall_ms=3.25)
        events = [
            {"event": "selection", "stream": "s0"},
            {"event": "cost_observation", **cost_observation_event(obs)},
            {"event": "cost_observation", "kind": "detection"},  # malformed
        ]
        harvested = harvest_cost_observations(events)
        assert harvested == [obs]


# --------------------------------------------------------------------------- #
# margins + threshold calibration
# --------------------------------------------------------------------------- #
class TestCalibration:
    def test_margins_are_top1_minus_top2(self):
        proba = np.array([[0.7, 0.2, 0.1], [0.4, 0.4, 0.2]])
        assert margins(proba) == pytest.approx([0.5, 0.0])

    def test_calibration_meets_target_on_kept_windows(self):
        gen = np.random.default_rng(0)
        slow = gen.dirichlet(np.ones(4) * 0.5, size=400)
        noise = gen.normal(scale=0.12, size=slow.shape)
        fast = np.abs(slow + noise)
        fast /= fast.sum(axis=1, keepdims=True)
        cal = calibrate_margin_threshold(fast, slow, target_agreement=0.99)
        kept = margins(fast) > cal.threshold
        fast_pick = fast[kept].argmax(axis=1)
        slow_pick = slow[kept].argmax(axis=1)
        assert (fast_pick == slow_pick).mean() >= 0.99
        assert 0.0 < cal.escalation_rate < 1.0

    def test_perfect_agreement_escalates_nothing(self):
        proba = np.eye(4)[np.array([0, 1, 2, 3, 0, 1])]
        cal = calibrate_margin_threshold(proba, proba, target_agreement=0.99)
        assert cal.escalation_rate == 0.0
        assert cal.kept_agreement == 1.0

    def test_hopeless_fast_tier_escalates_everything(self):
        # fast always disagrees with slow -> no prefix can reach the target
        fast = np.tile([0.9, 0.1], (50, 1))
        slow = np.tile([0.1, 0.9], (50, 1))
        cal = calibrate_margin_threshold(fast, slow, target_agreement=0.99)
        assert cal.escalation_rate == 1.0
        assert (margins(fast) < cal.threshold).all()

    def test_tied_margins_move_together(self):
        # four identical rows (one margin value): the cut may not split them
        fast = np.tile([0.6, 0.4], (4, 1))
        slow = np.array([[0.7, 0.3], [0.7, 0.3], [0.3, 0.7], [0.3, 0.7]])
        cal = calibrate_margin_threshold(fast, slow, target_agreement=0.99)
        mask = margins(fast) < cal.threshold
        assert mask.all() or not mask.any()


# --------------------------------------------------------------------------- #
# router: deterministic, content-local escalation
# --------------------------------------------------------------------------- #
class TestRouterDeterminism:
    @pytest.fixture(scope="class")
    def query_windows(self, cascade_world):
        return np.vstack([extract_windows(s, 64, stride=64)
                          for s in cascade_world["streams"].values()])

    def test_escalation_is_chunk_invariant(self, cascade_world, query_windows):
        router = _router(cascade_world)
        fast_proba = cascade_world["fast"].predict_proba(query_windows)
        full_mask = router.escalate_mask(fast_proba, query_windows)
        for chunk in (1, 7, 16, len(query_windows)):
            parts = [router.escalate_mask(fast_proba[i:i + chunk],
                                          query_windows[i:i + chunk])
                     for i in range(0, len(query_windows), chunk)]
            assert np.array_equal(np.concatenate(parts), full_mask)

    def test_same_seed_reproduces_routing(self, cascade_world, query_windows):
        fast_proba = cascade_world["fast"].predict_proba(query_windows)
        mask_a = _router(cascade_world, seed=7).escalate_mask(fast_proba,
                                                              query_windows)
        mask_b = _router(cascade_world, seed=7).escalate_mask(fast_proba,
                                                              query_windows)
        assert np.array_equal(mask_a, mask_b)

    def test_route_preserves_confident_rows_bitwise(self, cascade_world,
                                                    query_windows):
        router = _router(cascade_world)
        fast_proba = cascade_world["fast"].predict_proba(query_windows)
        routed, mask = router.route(query_windows, fast_proba)
        assert np.array_equal(routed[~mask], fast_proba[~mask])
        if mask.any():
            teacher_rows = cascade_world["teacher"].predict_proba(
                query_windows[mask])
            assert np.array_equal(routed[mask], teacher_rows)

    def test_threshold_extremes_select_pure_tiers(self, cascade_world,
                                                  query_windows):
        fast_proba = cascade_world["fast"].predict_proba(query_windows)
        never, none_mask = _router(cascade_world, threshold=-1.0).route(
            query_windows, fast_proba)
        assert not none_mask.any()
        assert never is fast_proba  # no escalation -> fast rows untouched
        always, all_mask = _router(cascade_world, threshold=2.0).route(
            query_windows, fast_proba)
        assert all_mask.all()
        assert np.array_equal(
            always, cascade_world["teacher"].predict_proba(query_windows))


class TestAdmission:
    def test_no_slo_admits_cascade(self, cascade_world):
        decision = _router(cascade_world).admit(100)
        assert isinstance(decision, AdmitDecision)
        assert decision.plan == "cascade" and not decision.fallback

    def test_loose_slo_admits_teacher(self, cascade_world):
        decision = _router(cascade_world).admit(100, latency_slo_ms=1e9)
        assert decision.plan == "teacher" and decision.quality == 1.0

    def test_impossible_slo_falls_back_to_cheapest(self, cascade_world):
        decision = _router(cascade_world).admit(100, latency_slo_ms=1e-6)
        assert decision.fallback
        assert decision.plan == "fast"  # cheapest predicted plan

    def test_memory_budget_is_enforced(self, cascade_world):
        router = _router(cascade_world)
        roomy = router.admit(100, memory_budget_mb=1e9)
        tight = router.admit(100, memory_budget_mb=1e-9)
        assert roomy.plan == "teacher" and not roomy.fallback
        assert tight.fallback

    def test_admission_never_consults_a_clock(self, cascade_world):
        router = _router(cascade_world)
        first = router.admit(64, latency_slo_ms=5.0)
        again = router.admit(64, latency_slo_ms=5.0)
        assert first.as_dict() == again.as_dict()


# --------------------------------------------------------------------------- #
# serving integration
# --------------------------------------------------------------------------- #
class TestServingCascade:
    def _service(self, world, cascade=None, **cfg):
        config = ServingConfig(window=64, selector_tier="student", **cfg)
        return SelectionService(world["fast"], world["detector_names"],
                                config, cascade=cascade)

    def _records(self, world):
        return [generate_series(name, 5, 600, seed=11)
                for name in ("ECG", "IOPS", "MGAB")]

    def test_disabled_cascade_is_bitwise_identical(self, cascade_world):
        records = self._records(cascade_world)
        plain = self._service(cascade_world).select_batch(records)
        never = self._service(
            cascade_world,
            cascade=_router(cascade_world, threshold=-1.0)).select_batch(records)
        assert [r.votes for r in never] == [r.votes for r in plain]
        assert [r.selected_index for r in never] == [r.selected_index for r in plain]

    def test_always_escalating_matches_teacher_service(self, cascade_world):
        records = self._records(cascade_world)
        teacher_service = SelectionService(
            cascade_world["teacher"], cascade_world["detector_names"],
            ServingConfig(window=64))
        expected = teacher_service.select_batch(records)
        routed = self._service(
            cascade_world,
            cascade=_router(cascade_world, threshold=2.0)).select_batch(records)
        assert [r.votes for r in routed] == [r.votes for r in expected]

    def test_audit_records_costs_and_cascade(self, cascade_world):
        audit = AuditLog()
        service = SelectionService(
            cascade_world["fast"], cascade_world["detector_names"],
            ServingConfig(window=64, selector_tier="student"),
            audit=audit, cascade=_router(cascade_world, threshold=2.0))
        service.select_batch(self._records(cascade_world))
        costs = audit.events(event="cost_observation")
        assert costs and all(e["kind"] == "selector_forward" for e in costs)
        tiers = {e["target"] for e in costs}
        assert "teacher" in tiers  # the escalation forward was measured too
        assert service.last_cascade["plan"] == "cascade"
        assert service.last_cascade["escalated_windows"] > 0

    def test_slo_fallback_is_audited_and_answers_anyway(self, cascade_world):
        audit = AuditLog()
        service = SelectionService(
            cascade_world["fast"], cascade_world["detector_names"],
            ServingConfig(window=64, selector_tier="student",
                          latency_slo_ms=1e-6),
            audit=audit, cascade=_router(cascade_world))
        results = service.select_batch(self._records(cascade_world))
        assert len(results) == 3  # degraded, never refused
        fallbacks = audit.events(event="slo_fallback")
        assert fallbacks and fallbacks[0]["fallback"] is True


# --------------------------------------------------------------------------- #
# streaming integration
# --------------------------------------------------------------------------- #
class TestStreamingCascade:
    def _engine(self, world, cascade=None, audit=None, **cfg):
        cfg.setdefault("window", 64)
        cfg.setdefault("stride", 64)
        return StreamEngine(world["fast"], world["detector_names"],
                            StreamingConfig(**cfg), audit=audit,
                            cascade=cascade)

    def test_disabled_cascade_is_bitwise_identical(self, cascade_world):
        plain = _drive(self._engine(cascade_world), cascade_world["streams"])
        never = _drive(self._engine(cascade_world,
                                    cascade=_router(cascade_world,
                                                    threshold=-1.0)),
                       cascade_world["streams"])
        assert never == plain  # escalated_windows stays 0 on both sides

    def test_always_escalating_matches_teacher_engine(self, cascade_world):
        teacher_engine = StreamEngine(
            cascade_world["teacher"], cascade_world["detector_names"],
            StreamingConfig(window=64, stride=64))
        expected = _drive(teacher_engine, cascade_world["streams"])
        routed = _drive(self._engine(cascade_world,
                                     cascade=_router(cascade_world,
                                                     threshold=2.0)),
                        cascade_world["streams"])
        for sid, update in routed.items():
            assert _strip(update, "escalated_windows") \
                == _strip(expected[sid], "escalated_windows")
            assert update["escalated_windows"] > 0
            assert expected[sid]["escalated_windows"] == 0

    def test_escalation_set_is_tick_invariant(self, cascade_world):
        runs = {}
        for chunk in (32, 100, 700):
            engine = self._engine(cascade_world,
                                  cascade=_router(cascade_world))
            _drive(engine, cascade_world["streams"], chunk=chunk)
            runs[chunk] = {
                "escalated": engine.stats.escalated_windows,
                "selections": {sid: engine.selection(sid).selected_index
                               for sid in cascade_world["streams"]},
            }
        assert runs[32] == runs[100] == runs[700]
        assert runs[32]["escalated"] > 0  # the invariance is not vacuous

    def test_same_seed_reproduces_run(self, cascade_world):
        first = _drive(self._engine(cascade_world,
                                    cascade=_router(cascade_world, seed=3)),
                       cascade_world["streams"])
        second = _drive(self._engine(cascade_world,
                                     cascade=_router(cascade_world, seed=3)),
                        cascade_world["streams"])
        assert first == second

    def test_slo_fallback_counted_and_audited(self, cascade_world):
        audit = AuditLog()
        engine = self._engine(cascade_world, audit=audit,
                              cascade=_router(cascade_world),
                              latency_slo_ms=1e-6)
        _drive(engine, cascade_world["streams"])
        assert engine.stats.slo_fallbacks > 0
        fallbacks = audit.events(event="slo_fallback")
        assert fallbacks and fallbacks[0]["layer"] == "streaming"
        # degraded to the cheapest plan, but every stream still answered
        for sid in cascade_world["streams"]:
            assert engine.selection(sid) is not None

    def test_selection_audit_carries_cascade_fields(self, cascade_world):
        audit = AuditLog()
        engine = self._engine(cascade_world, audit=audit,
                              cascade=_router(cascade_world))
        _drive(engine, cascade_world["streams"])
        selections = audit.events(event="selection")
        assert selections
        assert all("cascade" in e for e in selections)
        assert {e["cascade"]["plan"] for e in selections} <= {"cascade", "fast"}


# --------------------------------------------------------------------------- #
# sharded service: escalation is shard-count invariant
# --------------------------------------------------------------------------- #
class TestShardedCascade:
    @pytest.fixture(scope="class")
    def single_process_run(self, cascade_world):
        engine = StreamEngine(cascade_world["fast"],
                              cascade_world["detector_names"],
                              StreamingConfig(window=64, stride=64),
                              cascade=_router(cascade_world))
        updates = _drive(engine, cascade_world["streams"])
        return {"updates": updates,
                "escalated": engine.stats.escalated_windows}

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_escalation_invariant_across_shard_counts(self, cascade_world,
                                                      single_process_run,
                                                      n_shards):
        factory = make_engine_factory(
            cascade_world["fast"], cascade_world["detector_names"],
            StreamingConfig(window=64, stride=64),
            cascade=_router(cascade_world))
        with ShardedService(factory,
                            ServiceConfig(n_shards=n_shards)) as service:
            updates = _drive(service, cascade_world["streams"])
            totals = service.stats()["totals"]
        assert updates == single_process_run["updates"]
        assert totals["escalated_windows"] == single_process_run["escalated"]
        assert totals["escalated_windows"] > 0
        assert totals["slo_fallbacks"] == 0


# --------------------------------------------------------------------------- #
# explain + train-cost-model CLI
# --------------------------------------------------------------------------- #
class TestExplainCascade:
    def test_live_explain_reports_stage_and_margin(self, cascade_world):
        engine = StreamEngine(cascade_world["fast"],
                              cascade_world["detector_names"],
                              StreamingConfig(window=64, stride=64),
                              cascade=_router(cascade_world))
        _drive(engine, cascade_world["streams"])
        sid = next(iter(cascade_world["streams"]))
        info = explain_stream(engine, sid)
        block = info["cascade"]
        assert block["enabled"] and block["stage"] in ("student", "escalated")
        assert block["threshold"] == pytest.approx(0.1)
        assert block["min_margin"] is not None
        assert "cascade:" in format_explain(info)

    def test_explain_without_cascade_omits_block(self, cascade_world):
        engine = StreamEngine(cascade_world["fast"],
                              cascade_world["detector_names"],
                              StreamingConfig(window=64, stride=64))
        _drive(engine, cascade_world["streams"])
        sid = next(iter(cascade_world["streams"]))
        info = explain_stream(engine, sid)
        assert info["cascade"] is None
        assert "cascade:" not in format_explain(info)

    def test_explain_from_audit_reconstructs_decision(self, cascade_world):
        audit = AuditLog()
        engine = StreamEngine(cascade_world["fast"],
                              cascade_world["detector_names"],
                              StreamingConfig(window=64, stride=64),
                              audit=audit, cascade=_router(cascade_world))
        _drive(engine, cascade_world["streams"])
        sid = next(iter(cascade_world["streams"]))
        live = explain_stream(engine, sid)["cascade"]
        replayed = explain_from_audit(audit.events(), sid)["cascade"]
        assert replayed["plan"] == live["plan"]
        assert replayed["escalated_total"] == live["escalated_total"]


class TestTrainCostModelCLI:
    def _audit_file(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        audit = AuditLog(path=path)
        for n, ms in ((4, 4.0), (16, 10.0), (64, 34.0)):
            audit.record("cost_observation", **cost_observation_event(
                CostObservation(kind="selector_forward", target="teacher",
                                n_windows=n, window=64, wall_ms=ms)))
        audit.record("selection", stream="s0")  # foreign events are ignored
        audit.close()
        return path

    def test_fits_and_saves_model(self, tmp_path, capsys):
        audit_path = self._audit_file(tmp_path)
        output = tmp_path / "cost_model.json"
        assert main(["train-cost-model", str(audit_path),
                     "--output", str(output), "--window", "64"]) == 0
        model = CostModel.load(output)
        assert model.predict_latency_ms("teacher", 32) == pytest.approx(
            18.0, rel=0.05)
        assert "teacher" in capsys.readouterr().out

    def test_harvest_only_prints_observations(self, tmp_path, capsys):
        audit_path = self._audit_file(tmp_path)
        assert main(["train-cost-model", str(audit_path),
                     "--harvest-only"]) == 0
        lines = [json.loads(line) for line
                 in capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 3
        assert all(line["target"] == "teacher" for line in lines)

    def test_rejects_audit_without_observations(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        audit = AuditLog(path=path)
        audit.record("selection", stream="s0")
        audit.close()
        with pytest.raises(SystemExit, match="no cost_observation"):
            main(["train-cost-model", str(path),
                  "--output", str(tmp_path / "out.json")])

    def test_output_required_without_harvest_only(self, tmp_path):
        with pytest.raises(SystemExit, match="--output"):
            main(["train-cost-model", str(self._audit_file(tmp_path))])
