"""Tests for the KDSelector core modules: configs, PISL, MKI, LSH, pruning."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    InfoBatchPruner,
    MKIConfig,
    MKIModule,
    NoPruning,
    PAPruner,
    PISLConfig,
    PISLLoss,
    ProjectionHead,
    PruningConfig,
    SimHashLSH,
    TrainerConfig,
    bucket_indices,
    kdselector_config,
    make_pruner,
    performance_to_soft_labels,
    standard_config,
)
from repro.text import AveragedWordVectorEncoder


class TestConfigs:
    def test_standard_config_disables_everything(self):
        config = standard_config()
        assert not config.pisl.enabled
        assert not config.mki.enabled
        assert config.pruning.method == "none"
        assert not config.uses_knowledge

    def test_kdselector_config_enables_everything(self):
        config = kdselector_config()
        assert config.pisl.enabled and config.mki.enabled
        assert config.pruning.method == "pa"
        assert config.uses_knowledge

    def test_replace_returns_modified_copy(self):
        config = standard_config(epochs=3)
        other = config.replace(epochs=7)
        assert config.epochs == 3 and other.epochs == 7

    def test_invalid_pruning_method_raises(self):
        with pytest.raises(ValueError):
            PruningConfig(method="bogus")

    def test_invalid_pruning_ratio_raises(self):
        with pytest.raises(ValueError):
            PruningConfig(ratio=1.0)

    def test_kdselector_config_paper_defaults(self):
        config = kdselector_config()
        assert config.pruning.ratio == pytest.approx(0.8)
        assert config.pruning.lsh_bits == 14
        assert config.pruning.n_bins == 8
        assert config.mki.temperature == pytest.approx(0.1)


class TestPISL:
    def test_soft_labels_are_distributions(self):
        perf = np.random.default_rng(0).uniform(0, 1, size=(10, 12))
        soft = performance_to_soft_labels(perf, t_soft=0.25)
        assert soft.shape == perf.shape
        assert np.allclose(soft.sum(axis=1), 1.0)
        assert (soft > 0).all()

    def test_soft_label_argmax_matches_best_model(self):
        perf = np.random.default_rng(1).uniform(0, 1, size=(20, 6))
        soft = performance_to_soft_labels(perf, t_soft=0.2)
        assert np.array_equal(soft.argmax(axis=1), perf.argmax(axis=1))

    def test_lower_temperature_sharpens(self):
        perf = np.array([[0.2, 0.5, 0.4]])
        sharp = performance_to_soft_labels(perf, t_soft=0.05)
        smooth = performance_to_soft_labels(perf, t_soft=1.0)
        assert sharp.max() > smooth.max()

    def test_invalid_temperature_raises(self):
        with pytest.raises(ValueError):
            performance_to_soft_labels(np.zeros((2, 3)), t_soft=0.0)

    def test_1d_input_raises(self):
        with pytest.raises(ValueError):
            performance_to_soft_labels(np.zeros(3))

    def test_pisl_loss_alpha_zero_equals_hard_ce(self):
        rng = np.random.default_rng(2)
        logits = nn.Tensor(rng.normal(size=(8, 5)))
        labels = rng.integers(0, 5, size=8)
        perf = rng.uniform(size=(8, 5))
        loss_pisl = PISLLoss(PISLConfig(enabled=True, alpha=0.0))
        loss_std = PISLLoss(PISLConfig(enabled=False))
        soft = loss_pisl.soft_labels(perf)
        a = loss_pisl(logits, labels, soft).numpy()
        b = loss_std(logits, labels, None).numpy()
        assert np.allclose(a, b)

    def test_pisl_loss_alpha_one_ignores_hard_labels(self):
        rng = np.random.default_rng(3)
        logits = nn.Tensor(rng.normal(size=(4, 3)))
        perf = rng.uniform(size=(4, 3))
        loss_fn = PISLLoss(PISLConfig(enabled=True, alpha=1.0))
        soft = loss_fn.soft_labels(perf)
        wrong_labels = np.zeros(4, dtype=int)
        right_labels = perf.argmax(axis=1)
        assert np.allclose(loss_fn(logits, wrong_labels, soft).numpy(),
                           loss_fn(logits, right_labels, soft).numpy())

    def test_pisl_loss_is_differentiable(self):
        rng = np.random.default_rng(4)
        logits = nn.Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        perf = rng.uniform(size=(6, 4))
        loss_fn = PISLLoss(PISLConfig(enabled=True, alpha=0.5))
        loss_fn(logits, perf.argmax(axis=1), loss_fn.soft_labels(perf)).sum().backward()
        assert logits.grad is not None


class TestMKI:
    @pytest.fixture(scope="class")
    def module(self):
        config = MKIConfig(enabled=True, projection_dim=16, projection_hidden=32, text_dim=64)
        return MKIModule(feature_dim=24, config=config,
                         text_encoder=AveragedWordVectorEncoder(dim=64))

    def test_projection_head_shape(self):
        head = ProjectionHead(10, 4, hidden=8)
        out = head(nn.Tensor(np.zeros((3, 10))))
        assert out.shape == (3, 4)

    def test_encode_texts_shape_and_cache(self, module):
        texts = ["series from ECG", "series from SMD", "series from ECG"]
        out = module.encode_texts(texts)
        assert out.shape == (3, 64)
        assert np.allclose(out[0], out[2])
        assert len(module._embedding_cache) == 2

    def test_loss_is_positive_and_differentiable(self, module):
        rng = np.random.default_rng(5)
        features = nn.Tensor(rng.normal(size=(6, 24)), requires_grad=True)
        texts = [f"metadata number {i}" for i in range(6)]
        loss = module.loss(features, module.encode_texts(texts))
        assert loss.shape == (6,)
        loss.sum().backward()
        assert features.grad is not None
        assert all(p.grad is not None for p in module.trainable_parameters())

    def test_trainable_parameters_exclude_text_encoder(self, module):
        params = module.trainable_parameters()
        # Two MLPs with two layers each -> 8 parameter tensors.
        assert len(params) == 8

    def test_aligned_pairs_achieve_lower_loss_after_training(self):
        """Minimising L_MKI should pull matched series/text pairs together."""
        rng = np.random.default_rng(6)
        config = MKIConfig(enabled=True, projection_dim=8, projection_hidden=16, text_dim=32)
        module = MKIModule(feature_dim=8, config=config, text_encoder=AveragedWordVectorEncoder(dim=32))
        features_value = rng.normal(size=(16, 8))
        texts = [f"group {i % 4} metadata description" for i in range(16)]
        embeddings = module.encode_texts(texts)

        opt = nn.Adam(module.trainable_parameters(), lr=1e-2)
        initial = None
        final = None
        for step in range(30):
            loss = module.loss(nn.Tensor(features_value), embeddings).mean()
            if step == 0:
                initial = loss.item()
            opt.zero_grad()
            loss.backward()
            opt.step()
            final = loss.item()
        assert final < initial


class TestSimHashLSH:
    def test_signature_range(self):
        x = np.random.default_rng(0).normal(size=(50, 10))
        sigs = SimHashLSH(n_bits=8, seed=0).fit_signatures(x)
        assert sigs.shape == (50,)
        assert sigs.min() >= 0 and sigs.max() < 2 ** 8

    def test_identical_rows_same_signature(self):
        x = np.tile(np.random.default_rng(1).normal(size=(1, 16)), (5, 1))
        sigs = SimHashLSH(n_bits=12, seed=0).fit_signatures(x)
        assert len(np.unique(sigs)) == 1

    def test_similar_rows_collide_more_than_dissimilar(self):
        rng = np.random.default_rng(2)
        base = rng.normal(size=32)
        similar = base + 0.01 * rng.normal(size=(20, 32))
        dissimilar = rng.normal(size=(20, 32))
        lsh = SimHashLSH(n_bits=6, seed=0).fit(similar)
        sim_collisions = len(np.unique(lsh.signatures(similar)))
        dis_collisions = len(np.unique(lsh.signatures(dissimilar)))
        assert sim_collisions <= dis_collisions

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            SimHashLSH().signatures(np.zeros((2, 3)))

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            SimHashLSH(n_bits=0)

    def test_group_by_signature_partitions_everything(self):
        sigs = np.array([3, 1, 3, 2, 1, 1])
        groups = SimHashLSH.group_by_signature(sigs)
        total = sorted(int(i) for members in groups.values() for i in members)
        assert total == list(range(6))
        assert len(groups[1]) == 3

    def test_bucket_indices_only_multi_member_buckets(self):
        signatures = np.array([0, 0, 0, 1, 2, 2])
        losses = np.array([1.0, 1.01, 5.0, 1.0, 2.0, 2.0])
        buckets = bucket_indices(signatures, losses, np.arange(6), n_bins=2)
        for bucket in buckets:
            assert len(bucket) > 1
        # Samples 0 and 1 share a signature and a loss bin -> same bucket.
        assert any(set(bucket) >= {0, 1} for bucket in buckets)

    def test_bucket_indices_empty_input(self):
        assert bucket_indices(np.array([]), np.array([]), np.array([], dtype=int), 4) == []


class TestPruners:
    def _make(self, method, n=100, epochs=10, ratio=0.8, seed=0):
        config = PruningConfig(method=method, ratio=ratio, lsh_bits=6, n_bins=4)
        pruner = make_pruner(n, config, total_epochs=epochs, seed=seed)
        features = np.random.default_rng(seed).normal(size=(n, 16))
        if method != "none":
            pruner.setup(features)
        return pruner

    def test_factory_dispatch(self):
        assert isinstance(self._make("none"), NoPruning)
        assert isinstance(self._make("infobatch"), InfoBatchPruner)
        assert isinstance(self._make("pa"), PAPruner)

    def test_no_pruning_returns_everything(self):
        pruner = self._make("none")
        indices, weights = pruner.select(epoch=0)
        assert len(indices) == 100
        assert np.allclose(weights, 1.0)

    def test_first_epoch_uses_full_data(self):
        for method in ("infobatch", "pa"):
            pruner = self._make(method)
            indices, weights = pruner.select(epoch=0)
            assert len(indices) == 100
            assert np.allclose(weights, 1.0)

    def test_infobatch_prunes_low_loss_samples(self):
        pruner = self._make("infobatch", n=200, ratio=0.8)
        losses = np.concatenate([np.full(100, 0.1), np.full(100, 2.0)])
        pruner.update(np.arange(200), losses)
        indices, weights = pruner.select(epoch=1)
        # All high-loss samples are kept, most low-loss samples are pruned.
        assert np.isin(np.arange(100, 200), indices).all()
        kept_low = np.intersect1d(indices, np.arange(100))
        assert len(kept_low) < 60
        # Kept low-loss samples are rescaled by 1/(1-r) = 5.
        low_positions = np.isin(indices, kept_low)
        assert np.allclose(weights[low_positions], 5.0)

    def test_infobatch_full_data_in_last_epochs(self):
        pruner = self._make("infobatch", epochs=8)
        pruner.update(np.arange(100), np.random.default_rng(0).random(100))
        indices, _ = pruner.select(epoch=7)
        assert len(indices) == 100

    def test_pa_prunes_more_than_infobatch_with_redundant_samples(self):
        """PA's key property: redundant high-loss samples also get pruned."""
        rng = np.random.default_rng(3)
        n = 400
        # Make many nearly identical samples (redundant) with identical losses.
        base = rng.normal(size=16)
        features = np.vstack([
            base + 0.001 * rng.normal(size=(n // 2, 16)),   # redundant cluster
            rng.normal(size=(n // 2, 16)),                   # diverse samples
        ])
        losses = np.concatenate([np.full(n // 2, 3.0), rng.uniform(2.0, 4.0, size=n // 2)])

        config = PruningConfig(method="infobatch", ratio=0.8, lsh_bits=8, n_bins=4)
        infobatch = InfoBatchPruner(n, config, total_epochs=10, seed=0)
        infobatch.update(np.arange(n), losses)

        config_pa = PruningConfig(method="pa", ratio=0.8, lsh_bits=8, n_bins=4)
        pa = PAPruner(n, config_pa, total_epochs=10, seed=0)
        pa.setup(features)
        pa.update(np.arange(n), losses)

        kept_ib, _ = infobatch.select(epoch=1)
        kept_pa, _ = pa.select(epoch=1)
        assert len(kept_pa) < len(kept_ib)

    def test_pa_requires_setup(self):
        config = PruningConfig(method="pa")
        pruner = PAPruner(10, config, total_epochs=5, seed=0)
        with pytest.raises(RuntimeError):
            pruner.update(np.arange(10), np.random.default_rng(0).random(10))
            pruner.select(epoch=1)

    def test_pa_setup_requires_features(self):
        config = PruningConfig(method="pa")
        pruner = PAPruner(10, config, total_epochs=5, seed=0)
        with pytest.raises(ValueError):
            pruner.setup(None)

    def test_pruner_weights_unbiased_in_expectation(self):
        """Sum of weighted kept samples ~ total sample count (Sect. A.2)."""
        totals = []
        for seed in range(10):
            pruner = self._make("infobatch", n=300, ratio=0.5, seed=seed)
            losses = np.random.default_rng(seed).uniform(0, 1, size=300)
            pruner.update(np.arange(300), losses)
            _, weights = pruner.select(epoch=1)
            totals.append(weights.sum())
        assert np.mean(totals) == pytest.approx(300, rel=0.1)

    def test_average_losses_accumulate(self):
        pruner = self._make("infobatch")
        pruner.update(np.arange(100), np.full(100, 2.0))
        pruner.update(np.arange(50), np.full(50, 4.0))
        avg = pruner.average_losses
        assert avg[0] == pytest.approx(3.0)
        assert avg[99] == pytest.approx(2.0)

    def test_kept_fraction_history_tracks_epochs(self):
        pruner = self._make("infobatch")
        pruner.select(epoch=0)
        pruner.update(np.arange(100), np.random.default_rng(1).random(100))
        pruner.select(epoch=1)
        assert len(pruner.kept_fraction_history) == 2
        assert pruner.kept_fraction_history[0] == pytest.approx(1.0)
        assert pruner.kept_fraction_history[1] < 1.0

    def test_unknown_method_factory_raises(self):
        config = PruningConfig(method="pa")
        object.__setattr__(config, "method", "bogus")
        with pytest.raises(ValueError):
            make_pruner(10, config, total_epochs=2)
