"""Tests for the classical ML substrate (repro.ml)."""

import numpy as np
import pytest

from repro.ml import (
    AdaBoostClassifier,
    DecisionStump,
    DecisionTreeClassifier,
    KMeans,
    KNeighborsClassifier,
    LinearSVC,
    LogisticRegression,
    MinMaxScaler,
    OneClassSVM,
    PCA,
    RandomForestClassifier,
    RidgeClassifier,
    RidgeRegression,
    StandardScaler,
    kneighbors,
    pairwise_sq_euclidean,
    zscore,
)


@pytest.fixture(scope="module")
def blobs():
    """Three well-separated Gaussian blobs (easy classification task)."""
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [5.0, 5.0], [-5.0, 5.0]])
    x = np.concatenate([rng.normal(c, 0.6, size=(40, 2)) for c in centers])
    y = np.repeat([0, 1, 2], 40)
    return x, y


class TestScalers:
    def test_standard_scaler_zero_mean_unit_std(self):
        x = np.random.default_rng(1).normal(3.0, 2.0, size=(100, 4))
        out = StandardScaler().fit_transform(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_constant_feature_safe(self):
        x = np.column_stack([np.ones(10), np.arange(10)])
        out = StandardScaler().fit_transform(x)
        assert np.all(np.isfinite(out))

    def test_standard_scaler_requires_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_minmax_scaler_range(self):
        x = np.random.default_rng(2).normal(size=(50, 3))
        out = MinMaxScaler().fit_transform(x)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_minmax_requires_fit(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((2, 2)))

    def test_zscore_constant_series(self):
        assert np.allclose(zscore(np.full(10, 3.0)), 0.0)

    def test_zscore_normalises(self):
        out = zscore(np.arange(100, dtype=float))
        assert abs(out.mean()) < 1e-9
        assert abs(out.std() - 1.0) < 1e-9


class TestNeighbors:
    def test_pairwise_distances_match_naive(self):
        rng = np.random.default_rng(3)
        a, b = rng.normal(size=(5, 3)), rng.normal(size=(7, 3))
        naive = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(pairwise_sq_euclidean(a, b), naive, atol=1e-9)

    def test_kneighbors_returns_sorted_distances(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(20, 2))
        dist, idx = kneighbors(x, x, k=5)
        assert dist.shape == (20, 5)
        assert np.all(np.diff(dist, axis=1) >= -1e-12)
        assert np.allclose(dist[:, 0], 0.0, atol=1e-6)  # self-match first without exclusion

    def test_kneighbors_exclude_self(self):
        x = np.random.default_rng(5).normal(size=(10, 2))
        dist, idx = kneighbors(x, x, k=3, exclude_self=True)
        assert np.all(dist[:, 0] > 0)
        assert np.all(idx != np.arange(10)[:, None])

    def test_knn_classifier_blobs(self, blobs):
        x, y = blobs
        clf = KNeighborsClassifier(n_neighbors=5).fit(x, y)
        assert (clf.predict(x) == y).mean() > 0.95
        proba = clf.predict_proba(x)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_knn_distance_weights(self, blobs):
        x, y = blobs
        clf = KNeighborsClassifier(n_neighbors=3, weights="distance").fit(x, y)
        assert (clf.predict(x) == y).mean() > 0.95

    def test_knn_invalid_weights(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(weights="bogus")

    def test_knn_requires_fit(self):
        with pytest.raises(RuntimeError):
            KNeighborsClassifier().predict(np.zeros((1, 2)))


class TestLinearModels:
    def test_ridge_regression_recovers_line(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(200, 3))
        w_true = np.array([1.0, -2.0, 0.5])
        y = x @ w_true + 3.0 + 0.01 * rng.normal(size=200)
        model = RidgeRegression(alpha=1e-3).fit(x, y)
        assert np.allclose(model.coef_, w_true, atol=0.05)
        assert model.intercept_ == pytest.approx(3.0, abs=0.05)

    def test_ridge_classifier_blobs(self, blobs):
        x, y = blobs
        clf = RidgeClassifier(alpha=1.0).fit(x, y)
        assert (clf.predict(x) == y).mean() > 0.9
        assert np.allclose(clf.predict_proba(x).sum(axis=1), 1.0)

    def test_ridge_requires_fit(self):
        with pytest.raises(RuntimeError):
            RidgeRegression().predict(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            RidgeClassifier().predict(np.zeros((1, 2)))

    def test_logistic_regression_blobs(self, blobs):
        x, y = blobs
        clf = LogisticRegression(lr=0.5, n_iter=200).fit(x, y)
        assert (clf.predict(x) == y).mean() > 0.9

    def test_logistic_proba_normalised(self, blobs):
        x, y = blobs
        clf = LogisticRegression(n_iter=50).fit(x, y)
        proba = clf.predict_proba(x)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()


class TestSVM:
    def test_linear_svc_blobs(self, blobs):
        x, y = blobs
        clf = LinearSVC(n_iter=10, seed=0).fit(x, y)
        assert (clf.predict(x) == y).mean() > 0.9

    def test_linear_svc_decision_shape(self, blobs):
        x, y = blobs
        clf = LinearSVC(n_iter=5).fit(x, y)
        assert clf.decision_function(x).shape == (len(x), 3)

    def test_ocsvm_scores_outliers_higher(self):
        rng = np.random.default_rng(7)
        inliers = rng.normal(0.0, 1.0, size=(300, 4))
        outliers = rng.normal(6.0, 1.0, size=(20, 4))
        model = OneClassSVM(nu=0.1, seed=0).fit(inliers)
        assert model.score_samples(outliers).mean() > model.score_samples(inliers).mean()

    def test_ocsvm_invalid_nu(self):
        with pytest.raises(ValueError):
            OneClassSVM(nu=0.0)

    def test_ocsvm_requires_fit(self):
        with pytest.raises(RuntimeError):
            OneClassSVM().decision_function(np.zeros((1, 2)))


class TestTrees:
    def test_decision_tree_blobs(self, blobs):
        x, y = blobs
        tree = DecisionTreeClassifier(max_depth=6, seed=0).fit(x, y)
        assert (tree.predict(x) == y).mean() > 0.95

    def test_decision_tree_respects_max_depth_one(self, blobs):
        x, y = blobs
        stump = DecisionStump(seed=0).fit(x, y)
        # A depth-1 tree can produce at most two distinct probability rows.
        rows = {tuple(np.round(r, 6)) for r in stump.predict_proba(x)}
        assert len(rows) <= 2

    def test_decision_tree_sample_weights_shift_decision(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        heavy_on_class1 = DecisionTreeClassifier(max_depth=1, seed=0).fit(
            x, y, sample_weight=np.array([0.01, 0.01, 10.0, 10.0])
        )
        proba = heavy_on_class1.predict_proba(np.array([[1.5]]))
        assert proba.shape == (1, 2)

    def test_decision_tree_requires_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_single_class_training(self):
        x = np.random.default_rng(8).normal(size=(10, 3))
        y = np.zeros(10, dtype=int)
        tree = DecisionTreeClassifier().fit(x, y)
        assert (tree.predict(x) == 0).all()


class TestEnsembles:
    def test_random_forest_blobs(self, blobs):
        x, y = blobs
        forest = RandomForestClassifier(n_estimators=15, max_depth=6, seed=0).fit(x, y)
        assert (forest.predict(x) == y).mean() > 0.95

    def test_random_forest_proba_normalised(self, blobs):
        x, y = blobs
        forest = RandomForestClassifier(n_estimators=5, seed=1).fit(x, y)
        assert np.allclose(forest.predict_proba(x).sum(axis=1), 1.0)

    def test_random_forest_requires_fit(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict(np.zeros((1, 2)))

    def test_adaboost_blobs(self, blobs):
        x, y = blobs
        boost = AdaBoostClassifier(n_estimators=30, seed=0).fit(x, y)
        assert (boost.predict(x) == y).mean() > 0.8

    def test_adaboost_binary_easy(self):
        rng = np.random.default_rng(9)
        x = np.concatenate([rng.normal(-3, 0.5, size=(50, 2)), rng.normal(3, 0.5, size=(50, 2))])
        y = np.repeat([0, 1], 50)
        boost = AdaBoostClassifier(n_estimators=10, seed=0).fit(x, y)
        assert (boost.predict(x) == y).mean() > 0.95

    def test_adaboost_requires_fit(self):
        with pytest.raises(RuntimeError):
            AdaBoostClassifier().predict(np.zeros((1, 2)))


class TestClusteringAndPCA:
    def test_kmeans_recovers_blob_centres(self, blobs):
        x, _ = blobs
        km = KMeans(n_clusters=3, seed=0).fit(x)
        assert km.cluster_centers_.shape == (3, 2)
        # Every true centre should have a nearby learned centroid.
        for centre in [[0, 0], [5, 5], [-5, 5]]:
            dists = np.linalg.norm(km.cluster_centers_ - np.array(centre), axis=1)
            assert dists.min() < 1.0

    def test_kmeans_predict_consistent_with_labels(self, blobs):
        x, _ = blobs
        km = KMeans(n_clusters=3, seed=0).fit(x)
        assert np.array_equal(km.predict(x), km.labels_)

    def test_kmeans_transform_shape(self, blobs):
        x, _ = blobs
        km = KMeans(n_clusters=4, seed=0).fit(x)
        assert km.transform(x).shape == (len(x), 4)

    def test_kmeans_handles_fewer_points_than_clusters(self):
        x = np.random.default_rng(10).normal(size=(3, 2))
        km = KMeans(n_clusters=10, seed=0).fit(x)
        assert len(km.cluster_centers_) == 3

    def test_kmeans_requires_fit(self):
        with pytest.raises(RuntimeError):
            KMeans().predict(np.zeros((1, 2)))

    def test_pca_reconstruction_error_small_for_low_rank_data(self):
        rng = np.random.default_rng(11)
        basis = rng.normal(size=(2, 6))
        x = rng.normal(size=(100, 2)) @ basis
        pca = PCA(n_components=2).fit(x)
        assert pca.reconstruction_error(x).max() < 1e-9

    def test_pca_explained_variance_sums_below_one(self):
        x = np.random.default_rng(12).normal(size=(50, 5))
        pca = PCA(n_components=3).fit(x)
        assert 0 < pca.explained_variance_ratio_.sum() <= 1.0 + 1e-9

    def test_pca_transform_shape(self):
        x = np.random.default_rng(13).normal(size=(30, 8))
        assert PCA(n_components=4).fit_transform(x).shape == (30, 4)

    def test_pca_requires_fit(self):
        with pytest.raises(RuntimeError):
            PCA(n_components=2).transform(np.zeros((2, 4)))
