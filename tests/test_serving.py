"""Tests for the batched, cached selection-serving layer (repro.serving)."""

import threading

import numpy as np
import pytest

from repro.core import TrainerConfig
from repro.data import build_selector_dataset, generate_series
from repro.data.windows import extract_windows, extract_windows_batch, znormalize_windows
from repro.detectors import make_detector
from repro.eval import Oracle, predict_for_series
from repro.ml.scalers import zscore
from repro.selectors import make_selector
from repro.data import count_windows
from repro.serving import (
    LRUCache,
    SelectionService,
    ServingConfig,
    WorkerError,
    WorkerPool,
    microbatches,
    series_fingerprint,
)
from repro.serving.workers import _fork_available
from repro.system import ModelSelectionPipeline, PipelineConfig, compare_models


class TestLRUCache:
    def test_put_get_roundtrip(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache and len(cache) == 1

    def test_miss_returns_none_and_counts(self):
        cache = LRUCache(capacity=2)
        assert cache.get("ghost") is None
        stats = cache.stats
        assert stats.misses == 1 and stats.hits == 0 and stats.lookups == 1
        assert stats.hit_rate == 0.0

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a" → "b" becomes the oldest
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_stats_accounting_exact(self):
        cache = LRUCache(capacity=8)
        cache.put("x", 0)
        for _ in range(3):
            cache.get("x")
        cache.get("y")
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.size) == (3, 1, 1)
        assert stats.hit_rate == pytest.approx(0.75)

    def test_clear_drops_entries_but_keeps_counters(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_clear_keeps_eviction_counter_and_restarts_occupancy(self):
        cache = LRUCache(capacity=2)
        for key in ("a", "b", "c"):  # "a" evicted
            cache.put(key, key)
        assert cache.stats.evictions == 1
        cache.clear()
        stats = cache.stats
        assert (stats.size, stats.evictions) == (0, 1)
        # a cleared cache refills from scratch: capacity applies afresh
        for key in ("x", "y"):
            cache.put(key, key)
        assert cache.stats.evictions == 1 and len(cache) == 2
        cache.put("z", "z")
        assert cache.stats.evictions == 2

    def test_refreshing_existing_key_never_evicts(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert
        assert len(cache) == 2 and cache.stats.evictions == 0
        assert cache.get("a") == 10

    def test_lookup_after_clear_is_a_miss(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.clear()
        assert cache.get("a") is None
        stats = cache.stats
        assert (stats.hits, stats.misses) == (0, 1)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)


class TestSeriesFingerprint:
    def test_same_content_same_key(self):
        a = np.arange(100, dtype=np.float64)
        assert series_fingerprint(a) == series_fingerprint(a.copy())

    def test_different_content_different_key(self):
        a = np.arange(100, dtype=np.float64)
        b = a.copy()
        b[50] += 1e-9
        assert series_fingerprint(a) != series_fingerprint(b)

    def test_shape_and_dtype_matter(self):
        a = np.zeros(64, dtype=np.float64)
        assert series_fingerprint(a) != series_fingerprint(np.zeros(65))
        assert series_fingerprint(a) != series_fingerprint(np.zeros(64, dtype=np.float32))

    def test_extra_tokens_separate_configurations(self):
        a = np.arange(32, dtype=np.float64)
        assert series_fingerprint(a, extra=(96,)) != series_fingerprint(a, extra=(64,))


class TestWorkerPool:
    def test_sequential_fallback_runs_on_calling_thread(self):
        pool = WorkerPool(max_workers=0)
        threads = pool.map(lambda _: threading.current_thread(), range(5))
        assert not pool.is_parallel
        assert all(t is threading.main_thread() for t in threads)

    def test_sequential_and_parallel_agree(self):
        items = list(range(20))
        sequential = WorkerPool(0).map(lambda x: x * x, items)
        parallel = WorkerPool(4).map(lambda x: x * x, items)
        assert sequential == parallel == [x * x for x in items]

    def test_parallel_preserves_input_order(self):
        import time

        def slow_inverse(x):
            time.sleep(0.002 * (5 - x))  # later items finish first
            return x

        assert WorkerPool(4).map(slow_inverse, range(5)) == list(range(5))

    def test_starmap_unpacks_arguments(self):
        assert WorkerPool(0).starmap(lambda a, b: a + b, [(1, 2), (3, 4)]) == [3, 7]

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(max_workers=-1)

    @pytest.mark.skipif(not _fork_available(), reason="needs fork start method")
    def test_forked_worker_exception_propagates_with_worker_traceback(self):
        import traceback

        def explode_on_two(x):
            if x == 2:
                raise ValueError(f"bad item {x}")
            return x

        pool = WorkerPool(max_workers=2, mode="process")
        with pytest.raises(ValueError, match="bad item 2") as excinfo:
            pool.map(explode_on_two, range(4))
        # the original exception type crosses the process boundary, chained
        # onto a WorkerError carrying the worker-side stack as text
        cause = excinfo.value.__cause__
        assert isinstance(cause, WorkerError)
        assert cause.item_index == 2 and cause.exc_type == "ValueError"
        assert "explode_on_two" in cause.worker_traceback
        assert "raise ValueError" in cause.worker_traceback
        rendered = "".join(traceback.format_exception(excinfo.value))
        assert "explode_on_two" in rendered  # visible in the final report

    @pytest.mark.skipif(not _fork_available(), reason="needs fork start method")
    def test_forked_worker_unpicklable_exception_still_reports(self):
        class Unpicklable(Exception):
            def __reduce__(self):
                raise TypeError("cannot pickle this exception")

        def explode(x):
            raise Unpicklable("nope")

        pool = WorkerPool(max_workers=2, mode="process")
        with pytest.raises(WorkerError) as excinfo:
            pool.map(explode, range(2))
        assert excinfo.value.exc_type == "Unpicklable"
        assert "explode" in excinfo.value.worker_traceback

    @pytest.mark.skipif(not _fork_available(), reason="needs fork start method")
    def test_forked_pool_usable_after_a_failure(self):
        def explode_on_two(x):
            if x == 2:
                raise ValueError("boom")
            return x * 10

        pool = WorkerPool(max_workers=2, mode="process")
        with pytest.raises(ValueError):
            pool.map(explode_on_two, range(4))
        assert pool.map(explode_on_two, [0, 1]) == [0, 10]


class TestBatchedWindowing:
    def test_znormalize_matches_per_row_zscore(self, rng):
        windows = rng.normal(size=(17, 64))
        windows[3] = 2.5  # constant row
        expected = np.apply_along_axis(zscore, 1, windows)
        assert np.array_equal(znormalize_windows(windows), expected)

    def test_batch_extraction_matches_per_series(self, rng):
        series_list = [rng.normal(size=n) for n in (400, 37, 5, 256)]
        stacked, offsets = extract_windows_batch(series_list, 64, stride=32)
        per_series = [extract_windows(s, 64, stride=32) for s in series_list]
        assert np.array_equal(stacked, np.vstack(per_series))
        assert offsets.tolist() == np.cumsum([0] + [len(p) for p in per_series]).tolist()

    def test_window_count_matches_extraction(self, rng):
        for length in (5, 64, 100, 401):
            series = rng.normal(size=length)
            assert count_windows(length, 64, 32) == len(extract_windows(series, 64, stride=32))

    def test_microbatches_respect_window_budget(self):
        records = [generate_series("ECG", i, 400, seed=1) for i in range(6)]
        per_record = count_windows(400, 64, 64)
        batches = list(microbatches(records, 64, max_windows=2 * per_record))
        assert [r.name for batch in batches for r in batch] == [r.name for r in records]
        assert all(len(batch) <= 2 for batch in batches)

    def test_microbatches_never_split_one_series(self):
        record = generate_series("ECG", 0, 4000, seed=1)
        batches = list(microbatches([record], 64, max_windows=1))
        assert len(batches) == 1 and batches[0] == [record]

    def test_microbatches_oversized_series_isolated_among_small_ones(self):
        small = generate_series("ECG", 0, 128, seed=1)      # 2 windows
        big = generate_series("IOPS", 1, 4000, seed=1)      # 62 windows >> budget
        batches = list(microbatches([small, big, small], 64, max_windows=4))
        assert [[r.name for r in batch] for batch in batches] == \
            [[small.name], [big.name], [small.name]]

    def test_microbatches_empty_input_yields_no_batches(self):
        assert list(microbatches([], 64, max_windows=8)) == []

    def test_microbatches_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            list(microbatches([generate_series("ECG", 0, 100, seed=1)], 64, max_windows=0))


@pytest.fixture(scope="module")
def serving_world():
    """A trained selector + labelled query series shared by the service tests."""
    train_records = [generate_series(name, 0, 400, seed=4) for name in ("ECG", "IOPS", "MGAB", "SMD")]
    detector_names = ["IForest", "HBOS", "MP", "POLY"]
    gen = np.random.default_rng(9)
    matrix = gen.uniform(0.05, 0.4, size=(len(train_records), len(detector_names)))
    matrix[np.arange(len(train_records)), np.arange(len(train_records))] += 0.5
    dataset = build_selector_dataset(train_records, matrix, detector_names, window=64, stride=64)

    selector = make_selector("MLP", window=64, n_classes=4, hidden=16, feature_dim=8, seed=0)
    selector.fit(dataset, config=TrainerConfig(epochs=2, batch_size=32))

    queries = [generate_series(name, 3, 500, seed=6) for name in ("ECG", "IOPS", "MGAB", "SMD", "NAB")]
    return {"selector": selector, "detector_names": detector_names, "queries": queries}


def _fresh_service(world, **overrides) -> SelectionService:
    overrides.setdefault("window", 64)
    return SelectionService(world["selector"], world["detector_names"], ServingConfig(**overrides))


class TestSelectionService:
    def test_batch_matches_sequential_bitwise(self, serving_world):
        service = _fresh_service(serving_world)
        results = service.select_batch(serving_world["queries"])
        for record, result in zip(serving_world["queries"], results):
            choice, aggregated = predict_for_series(serving_world["selector"], record, 64)
            assert result.selected_index == choice
            assert result.selected_model == serving_world["detector_names"][choice]
            assert list(result.votes.values()) == [float(v) for v in aggregated]
            assert not result.from_cache

    def test_second_pass_is_served_from_cache(self, serving_world):
        service = _fresh_service(serving_world)
        cold = service.select_batch(serving_world["queries"])
        warm = service.select_batch(serving_world["queries"])
        assert all(r.from_cache for r in warm)
        assert all(not r.from_cache for r in cold)
        assert [(r.selected_index, r.votes) for r in warm] == \
               [(r.selected_index, r.votes) for r in cold]
        stats = service.stats
        n = len(serving_world["queries"])
        assert (stats.hits, stats.misses) == (n, n)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_duplicates_in_one_batch_computed_once(self, serving_world):
        service = _fresh_service(serving_world)
        record = serving_world["queries"][0]
        twin = generate_series("ECG", 3, 500, seed=6)  # same bytes, fresh object
        results = service.select_batch([record, twin])
        assert results[0].votes == results[1].votes
        assert not results[0].from_cache and not results[1].from_cache
        stats = service.stats
        assert (stats.hits, stats.misses, stats.size) == (0, 1, 1)

    def test_caller_mutating_votes_cannot_poison_cache(self, serving_world):
        service = _fresh_service(serving_world)
        record = serving_world["queries"][0]
        first = service.select(record)
        expected = dict(first.votes)
        first.votes.clear()  # a hostile/careless caller mutates its result
        second = service.select(record)
        assert second.from_cache and second.votes == expected
        second.votes["IForest"] = 99.0
        assert service.select(record).votes == expected

    def test_select_single_uses_same_path(self, serving_world):
        service = _fresh_service(serving_world)
        record = serving_world["queries"][0]
        first = service.select(record)
        second = service.select(record)
        assert not first.from_cache and second.from_cache
        assert first.votes == second.votes

    def test_cache_capacity_bounds_entries(self, serving_world):
        service = _fresh_service(serving_world, cache_capacity=2)
        service.select_batch(serving_world["queries"])
        stats = service.stats
        assert stats.size == 2
        assert stats.evictions == len(serving_world["queries"]) - 2

    def test_config_changes_cache_key(self, serving_world):
        vote = _fresh_service(serving_world)
        record = serving_world["queries"][0]
        key_vote = vote.fingerprint(record)
        mean = _fresh_service(serving_world, aggregation="mean")
        assert key_vote != mean.fingerprint(record)

    def test_as_dict_is_json_ready(self, serving_world):
        import json

        service = _fresh_service(serving_world)
        payload = service.select(serving_world["queries"][0]).as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["selected_model"] in serving_world["detector_names"]

    def test_detect_batch_sequential_and_parallel_agree(self, serving_world):
        model_set = {name: make_detector(name, window=16)
                     for name in serving_world["detector_names"]}
        records = serving_world["queries"][:3]
        sequential = _fresh_service(serving_world, max_workers=0).detect_batch(records, model_set)
        parallel = _fresh_service(serving_world, max_workers=3).detect_batch(records, model_set)
        for (sel_a, det_a), (sel_b, det_b) in zip(sequential, parallel):
            assert sel_a.selected_model == sel_b.selected_model
            assert det_a.detector_name == det_b.detector_name
            assert np.array_equal(det_a.scores, det_b.scores)

    def test_pipeline_as_service_matches_select_model(self):
        model_set = {name: make_detector(name, window=16) for name in ("IForest", "HBOS")}
        pipeline = ModelSelectionPipeline(
            model_set=model_set,
            config=PipelineConfig(window=64, stride=64, detector_window=16, seed=0),
        )
        records = [generate_series(name, 0, 400, seed=4) for name in ("ECG", "SMD")]
        pipeline.prepare_training_data(records)
        pipeline.train_selector("KNN")

        service = pipeline.as_service(cache_capacity=16)
        for record in records:
            expected = pipeline.select_model(record)
            result = service.select(record)
            assert result.selected_model == expected["selected_model"]
            assert result.votes == expected["votes"]

    def test_as_service_requires_trained_selector(self):
        pipeline = ModelSelectionPipeline(model_set={"HBOS": make_detector("HBOS")})
        with pytest.raises(RuntimeError):
            pipeline.as_service()


class TestWorkerFanOut:
    def test_oracle_parallel_matches_sequential(self):
        records = [generate_series(name, 0, 300, seed=2) for name in ("ECG", "NAB", "SMD")]
        model_set = {name: make_detector(name, window=16) for name in ("HBOS", "POLY")}
        sequential = Oracle(model_set, max_workers=0).performance_matrix(records)
        parallel = Oracle(model_set, max_workers=3).performance_matrix(records)
        assert np.array_equal(sequential, parallel)

    def test_oracle_parallel_is_deterministic_with_nn_detectors(self):
        """Regression: NN detectors build models inside score(); the init RNG
        and grad flag are thread-local, so fan-out must stay bitwise equal."""
        records = [generate_series(name, 0, 300, seed=2) for name in ("ECG", "NAB", "SMD")]
        model_set = {"AE": make_detector("AE", window=16), "CNN": make_detector("CNN", window=16)}
        sequential = Oracle(model_set, max_workers=0).performance_matrix(records)
        parallel = Oracle(model_set, max_workers=3).performance_matrix(records)
        assert np.array_equal(sequential, parallel)

    def test_compare_models_parallel_matches_sequential(self):
        record = generate_series("IOPS", 0, 300, seed=2)
        model_set = {name: make_detector(name, window=16) for name in ("HBOS", "POLY", "MP")}
        sequential = compare_models(record, model_set)
        parallel = compare_models(record, model_set, max_workers=3)
        assert list(sequential) == list(parallel)
        for name in sequential:
            assert np.array_equal(sequential[name].scores, parallel[name].scores)
