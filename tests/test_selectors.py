"""Tests for the selector zoo (repro.selectors)."""

import numpy as np
import pytest

from repro.core import TrainerConfig, kdselector_config
from repro.selectors import (
    FEATURE_NAMES,
    ConvNetEncoder,
    InceptionTimeEncoder,
    LSTMEncoder,
    MLPEncoder,
    NNSelector,
    ResNetEncoder,
    RocketFeatureTransform,
    TransformerEncoder,
    extract_features,
    make_selector,
    selector_names,
)
from repro import nn

NEURAL = ["ConvNet", "ResNet", "InceptionTime", "Transformer", "MLP", "LSTMSelector",
          "Student", "StudentInt8", "TeacherInt8"]
# StudentInt8/TeacherInt8 are inference-only (built by the quantize_*
# functions of repro.distill); their fit() raises by design, so they are
# excluded from the generic fit tests.
TRAINABLE_NEURAL = [n for n in NEURAL if n not in ("StudentInt8", "TeacherInt8")]
NON_NEURAL = ["KNN", "SVC", "AdaBoost", "RandomForest", "LogisticRegression",
              "DecisionTree", "Ridge", "NN1Euclidean", "Rocket"]


class TestRegistry:
    def test_eighteen_selectors_registered(self):
        assert len(selector_names()) == 18

    def test_neural_flag_partition(self):
        assert set(selector_names(neural=True)) == set(NEURAL)
        assert set(selector_names(neural=False)) == set(NON_NEURAL)

    def test_make_selector_unknown_raises(self):
        with pytest.raises(KeyError):
            make_selector("NotASelector")


class TestFeatureExtraction:
    def test_feature_matrix_shape(self):
        windows = np.random.default_rng(0).normal(size=(10, 64))
        features = extract_features(windows)
        assert features.shape == (10, len(FEATURE_NAMES))
        assert np.all(np.isfinite(features))

    def test_single_window_input(self):
        features = extract_features(np.random.default_rng(1).normal(size=64))
        assert features.shape == (1, len(FEATURE_NAMES))

    def test_constant_window_is_finite(self):
        features = extract_features(np.zeros((2, 32)))
        assert np.all(np.isfinite(features))

    def test_mean_std_columns_correct(self):
        windows = np.random.default_rng(2).normal(3.0, 2.0, size=(5, 128))
        features = extract_features(windows)
        assert np.allclose(features[:, FEATURE_NAMES.index("mean")], windows.mean(axis=1))
        assert np.allclose(features[:, FEATURE_NAMES.index("std")], windows.std(axis=1))

    def test_periodic_window_has_low_spectral_entropy(self):
        t = np.arange(128)
        periodic = np.sin(2 * np.pi * t / 16)[None, :]
        noise = np.random.default_rng(3).normal(size=(1, 128))
        col = FEATURE_NAMES.index("spectral_entropy")
        assert extract_features(periodic)[0, col] < extract_features(noise)[0, col]

    def test_trend_slope_sign(self):
        up = np.linspace(0, 1, 64)[None, :]
        down = np.linspace(1, 0, 64)[None, :]
        col = FEATURE_NAMES.index("linear_trend_slope")
        assert extract_features(up)[0, col] > 0
        assert extract_features(down)[0, col] < 0


class TestEncoders:
    @pytest.mark.parametrize("encoder_cls,kwargs", [
        (ConvNetEncoder, {"mid_channels": 8}),
        (ResNetEncoder, {"mid_channels": 8}),
        (InceptionTimeEncoder, {"mid_channels": 8}),
        (TransformerEncoder, {"embed_dim": 16, "num_layers": 1, "num_heads": 2}),
        (LSTMEncoder, {"hidden": 8, "downsample": 8}),
    ])
    def test_encoder_output_shape(self, encoder_cls, kwargs):
        encoder = encoder_cls(**kwargs)
        x = nn.Tensor(np.random.default_rng(0).normal(size=(3, 1, 64)))
        out = encoder(x)
        assert out.shape == (3, encoder.feature_dim)

    def test_mlp_encoder(self):
        encoder = MLPEncoder(window=64, hidden=32, feature_dim=16)
        out = encoder(nn.Tensor(np.zeros((2, 1, 64))))
        assert out.shape == (2, 16)

    def test_resnet_gradients_reach_first_conv(self):
        encoder = ResNetEncoder(mid_channels=8, num_layers=2)
        x = nn.Tensor(np.random.default_rng(1).normal(size=(2, 1, 32)))
        encoder(x).sum().backward()
        first_conv_weight = encoder.blocks[0].conv1.conv.weight
        assert first_conv_weight.grad is not None
        assert np.abs(first_conv_weight.grad).sum() > 0


class TestNNSelectors:
    @pytest.fixture(scope="class")
    def fast_config(self):
        return TrainerConfig(epochs=1, batch_size=32, lr=1e-3)

    @pytest.mark.parametrize("name", TRAINABLE_NEURAL)
    def test_fit_predict_all_architectures(self, name, small_selector_dataset, fast_config):
        kwargs = {"window": small_selector_dataset.windows.shape[1],
                  "n_classes": small_selector_dataset.n_classes, "seed": 0}
        if name in ("ConvNet", "ResNet", "InceptionTime"):
            kwargs["mid_channels"] = 8
        elif name == "Transformer":
            kwargs.update(embed_dim=16, num_layers=1, num_heads=2)
        elif name == "MLP":
            kwargs.update(hidden=32, feature_dim=16)
        elif name == "LSTMSelector":
            kwargs.update(hidden=8, downsample=8)
        selector = make_selector(name, **kwargs)
        selector.fit(small_selector_dataset, config=fast_config)
        proba = selector.predict_proba(small_selector_dataset.windows[:8])
        assert proba.shape == (8, small_selector_dataset.n_classes)
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)

    def test_feature_dim_requires_build(self):
        selector = make_selector("ResNet", window=32, n_classes=4)
        with pytest.raises(RuntimeError):
            _ = selector.feature_dim
        selector.build()
        assert selector.feature_dim > 0

    def test_encode_returns_features(self, small_selector_dataset):
        selector = make_selector("MLP", window=small_selector_dataset.windows.shape[1],
                                 n_classes=small_selector_dataset.n_classes, hidden=16, feature_dim=8)
        selector.build()
        features = selector.encode(small_selector_dataset.windows[:4])
        assert features.shape == (4, 8)

    def test_fit_records_report(self, small_selector_dataset, fast_config):
        selector = make_selector("MLP", window=small_selector_dataset.windows.shape[1],
                                 n_classes=small_selector_dataset.n_classes, hidden=16, feature_dim=8)
        selector.fit(small_selector_dataset, config=fast_config)
        assert hasattr(selector, "last_report_")
        assert len(selector.last_report_.epoch_losses) == 1

    def test_fit_with_kwarg_overrides(self, small_selector_dataset):
        selector = make_selector("MLP", window=small_selector_dataset.windows.shape[1],
                                 n_classes=small_selector_dataset.n_classes, hidden=16, feature_dim=8,
                                 epochs=5)
        selector.fit(small_selector_dataset, epochs=1)
        assert len(selector.last_report_.epoch_losses) == 1

    def test_training_reduces_loss(self, small_selector_dataset):
        selector = make_selector("MLP", window=small_selector_dataset.windows.shape[1],
                                 n_classes=small_selector_dataset.n_classes, hidden=64, feature_dim=32)
        selector.fit(small_selector_dataset, config=TrainerConfig(epochs=8, batch_size=16, lr=3e-3))
        losses = selector.last_report_.epoch_losses
        assert losses[-1] < losses[0]

    def test_predict_series_majority_vote(self, small_selector_dataset):
        selector = make_selector("MLP", window=small_selector_dataset.windows.shape[1],
                                 n_classes=small_selector_dataset.n_classes, hidden=16, feature_dim=8)
        selector.fit(small_selector_dataset, config=TrainerConfig(epochs=1, batch_size=32))
        choice = selector.predict_series(small_selector_dataset.windows[:6])
        assert 0 <= choice < small_selector_dataset.n_classes

    def test_kdselector_config_accepted(self, small_selector_dataset):
        selector = make_selector("MLP", window=small_selector_dataset.windows.shape[1],
                                 n_classes=small_selector_dataset.n_classes, hidden=16, feature_dim=8)
        selector.fit(small_selector_dataset, config=kdselector_config(epochs=2, batch_size=32))
        assert selector.last_report_.config_summary["pisl"] is True


class TestNonNNSelectors:
    @pytest.mark.parametrize("name", NON_NEURAL)
    def test_fit_predict_all_non_nn(self, name, small_selector_dataset):
        kwargs = {}
        if name == "Rocket":
            kwargs["n_kernels"] = 32
        if name == "RandomForest":
            kwargs["n_estimators"] = 5
        if name == "AdaBoost":
            kwargs["n_estimators"] = 5
        selector = make_selector(name, **kwargs)
        selector.fit(small_selector_dataset)
        proba = selector.predict_proba(small_selector_dataset.windows[:8])
        assert proba.shape == (8, small_selector_dataset.n_classes)
        assert np.all(proba >= 0)
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)

    def test_predict_requires_fit(self):
        selector = make_selector("KNN")
        with pytest.raises(RuntimeError):
            selector.predict_proba(np.zeros((2, 64)))

    def test_probabilities_cover_unseen_classes(self, small_selector_dataset):
        """Classes absent from training still get a (zero) probability column."""
        selector = make_selector("KNN")
        selector.fit(small_selector_dataset)
        proba = selector.predict_proba(small_selector_dataset.windows[:3])
        assert proba.shape[1] == small_selector_dataset.n_classes

    def test_rocket_transform_features(self):
        transform = RocketFeatureTransform(n_kernels=16, seed=0).fit(window_length=64)
        features = transform.transform(np.random.default_rng(0).normal(size=(4, 64)))
        assert features.shape == (4, 32)
        ppv = features[:, 0::2]
        assert (ppv >= 0).all() and (ppv <= 1).all()

    def test_rocket_transform_requires_fit(self):
        with pytest.raises(RuntimeError):
            RocketFeatureTransform().transform(np.zeros((1, 32)))

    def test_rocket_grouped_transform_matches_per_kernel_loop(self):
        """The grouped-gather transform is bitwise identical to the retained
        per-kernel reference loop, including clamped-dilation short windows
        (each kernel still applies as its own matvec over shared patches —
        a stacked multi-kernel GEMM would change BLAS summation order)."""
        transform = RocketFeatureTransform(n_kernels=64, seed=7).fit(window_length=96)
        rng = np.random.default_rng(3)
        for length in (96, 16):  # 16 forces the dilation clamp
            windows = rng.normal(size=(8, length))
            assert np.array_equal(transform.transform(windows),
                                  transform._transform_per_kernel(windows))

    def test_knn_memorises_training_windows(self, small_selector_dataset):
        selector = make_selector("NN1Euclidean")
        selector.fit(small_selector_dataset)
        predictions = selector.predict(small_selector_dataset.windows)
        agreement = (predictions == small_selector_dataset.hard_labels).mean()
        assert agreement > 0.9
