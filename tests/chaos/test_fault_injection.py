"""Fault-injection tests: the service under crashes, hangs and flaky links.

Every scenario asserts the same two invariants the paper-system's serving
layer promises:

* **zero lost streams** — after any single fault the service still owns
  and answers for every stream it accepted, and
* **bitwise equivalence** — post-recovery selections and scores equal the
  uninterrupted single-process :class:`StreamEngine` run exactly (not
  approximately).

Faults are deterministic: SIGKILL lands between specific ticks, hangs are
injected sleeps, and transport faults come from a seeded
:class:`FaultInjector` — a failing run replays bit-for-bit.
"""

import zlib

import numpy as np
import pytest

from repro.service import FaultInjector, ShardTimeoutError


def _tick(service, streams, tick, chunk=100):
    for sid, series in streams.items():
        service.append(sid, series[tick * chunk:(tick + 1) * chunk])
    return service.flush()


def _assert_matches_reference(service, streams, reference, final_updates=None):
    assert sorted(service.stream_ids) == sorted(streams)
    for sid in streams:
        if final_updates is not None:
            assert final_updates[sid] == reference["updates"][sid], sid
        assert np.array_equal(service.scores(sid), reference["scores"][sid]), sid


class TestShardCrash:
    def test_sigkill_mid_stream_is_recovered_bitwise(self, make_chaos_service,
                                                     chaos_world, chaos_reference):
        streams = chaos_world["streams"]
        service = make_chaos_service(n_shards=2)
        _tick(service, streams, 0)
        _tick(service, streams, 1)
        # kill a shard with the third tick already staged: the push hits a
        # dead socket, the supervisor restarts the shard, the front end
        # replays its streams from the shared buffers, and the tick retries
        victim = service.ring.owner(sorted(streams)[0])
        for sid, series in streams.items():
            service.append(sid, series[200:300])
        service.supervisor.kill(victim)
        updates = service.flush()
        assert service.supervisor.restarts == 1
        assert service.recoveries == 1
        assert service.supervisor.is_alive(victim)
        _assert_matches_reference(service, streams, chaos_reference, updates)

    @pytest.mark.parametrize("kill_after_tick", [0, 1])
    def test_any_single_shard_kill_loses_nothing(self, make_chaos_service,
                                                 chaos_world, chaos_reference,
                                                 kill_after_tick):
        streams = chaos_world["streams"]
        service = make_chaos_service(n_shards=4)
        final_updates = {}
        for tick in range(3):
            final_updates.update(_tick(service, streams, tick))
            if tick == kill_after_tick:
                # kill whichever shard owns the most streams (worst case)
                loads = service.ring.assign(sorted(streams))
                victim = max(sorted(loads), key=lambda sid: len(loads[sid]))
                service.supervisor.kill(victim)
        assert service.supervisor.restarts == 1
        _assert_matches_reference(service, streams, chaos_reference, final_updates)

    def test_kill_between_queries_recovers_reads_too(self, make_chaos_service,
                                                     chaos_world, chaos_reference):
        streams = chaos_world["streams"]
        service = make_chaos_service(n_shards=2)
        for tick in range(3):
            _tick(service, streams, tick)
        victim = service.ring.owner(sorted(streams)[0])
        service.supervisor.kill(victim)
        # the first read after the crash transparently recovers the shard
        _assert_matches_reference(service, streams, chaos_reference)
        assert service.recoveries == 1


class TestHungShard:
    def test_hung_shard_hits_timeout_and_is_restarted(self, make_chaos_service,
                                                      chaos_world, chaos_reference):
        streams = chaos_world["streams"]
        service = make_chaos_service(n_shards=2, request_timeout_s=1.0)
        _tick(service, streams, 0)
        _tick(service, streams, 1)
        victim = service.ring.owner(sorted(streams)[0])
        # a sleep far beyond the request timeout: the deterministic stand-in
        # for a wedged shard (every later request stalls the same way)
        service._request(victim, "chaos", sleep_s=5.0)
        generation_before = service.supervisor.handles[victim].generation
        updates = _tick(service, streams, 2)
        assert service.supervisor.restarts == 1
        assert service.supervisor.handles[victim].generation == generation_before + 1
        _assert_matches_reference(service, streams, chaos_reference, updates)

    def test_timeout_error_is_raised_without_supervision(self, make_chaos_service,
                                                         chaos_world):
        # the raw client (no supervisor in the loop) must surface the hang
        service = make_chaos_service(n_shards=1, request_timeout_s=0.5)
        _tick(service, chaos_world["streams"], 0)
        shard_id = service.shard_ids[0]
        service._request(shard_id, "chaos", sleep_s=5.0)
        with pytest.raises(ShardTimeoutError):
            service._clients[shard_id].request("ping")


class TestFlakyTransport:
    def test_drop_delay_duplicate_do_not_change_results(self, make_chaos_service,
                                                        chaos_world, chaos_reference):
        streams = chaos_world["streams"]
        injectors = {}

        def injector_factory(shard_id):
            injectors[shard_id] = FaultInjector(
                seed=zlib.crc32(shard_id.encode()), drop=0.15, duplicate=0.15,
                delay=0.3, max_delay_s=0.01)
            return injectors[shard_id]

        service = make_chaos_service(n_shards=2, injector_factory=injector_factory)
        final_updates = {}
        for tick in range(3):
            final_updates.update(_tick(service, streams, tick))
        faults = sum(i.dropped + i.duplicated + i.delayed
                     for i in injectors.values())
        assert faults > 0  # the run actually saw faults
        # pings are state-free: roll the dice until both fault kinds have
        # actually fired (deterministic seeds, converges in a few rounds)
        for _ in range(200):
            if sum(i.duplicated for i in injectors.values()) > 0 and \
                    sum(i.dropped for i in injectors.values()) > 0:
                break
            for shard_id in service.shard_ids:
                service._request(shard_id, "ping")
        duplicated = sum(i.duplicated for i in injectors.values())
        dropped = sum(i.dropped for i in injectors.values())
        assert duplicated > 0 and dropped > 0
        # dropped requests were retransmitted, duplicates deduplicated by
        # seq — nothing double-applied, nothing lost
        assert service.supervisor.restarts == 0
        stats = service.stats()
        # every delivered duplicate was answered from the exactly-once
        # response cache (the stats requests themselves roll the dice too,
        # so the count may exceed the snapshot taken above)
        assert stats["totals"]["duplicates_suppressed"] >= duplicated
        # every injected drop cost the client one same-seq retransmission
        assert stats["transport_retransmits"] >= dropped
        _assert_matches_reference(service, streams, chaos_reference, final_updates)

    def test_same_seed_injects_the_same_faults(self, make_chaos_service,
                                               chaos_world):
        streams = chaos_world["streams"]

        def run_once():
            injectors = {}

            def injector_factory(shard_id):
                injectors[shard_id] = FaultInjector(
                    seed=zlib.crc32(shard_id.encode()), drop=0.2, duplicate=0.2)
                return injectors[shard_id]

            service = make_chaos_service(n_shards=2,
                                         injector_factory=injector_factory)
            updates = {}
            for tick in range(2):
                updates.update(_tick(service, streams, tick))
            counters = {sid: (inj.dropped, inj.duplicated, inj.delayed)
                        for sid, inj in injectors.items()}
            return updates, counters

        updates_a, counters_a = run_once()
        updates_b, counters_b = run_once()
        assert counters_a == counters_b
        assert updates_a == updates_b
