"""Fixtures for the fault-injection (chaos) suite.

Everything here is deterministic on purpose: the traffic, the trained
selector, and every injected fault derive from fixed seeds, so a failing
chaos run replays exactly.  The ``chaos_world`` fixture mirrors the
``streaming_world`` fixture of ``tests/test_streaming.py`` at the same
small scale — chaos runs pay for process churn, not for model training.
"""

import numpy as np
import pytest

from repro.core import TrainerConfig
from repro.data import build_selector_dataset, generate_series
from repro.selectors import make_selector
from repro.service import ServiceConfig, ShardedService, make_engine_factory
from repro.streaming import StreamEngine, StreamingConfig


@pytest.fixture(scope="session")
def chaos_world():
    """A trained selector + deterministic multi-stream traffic."""
    train_records = [generate_series(name, 0, 400, seed=4)
                     for name in ("ECG", "IOPS", "MGAB", "SMD")]
    detector_names = ["IForest", "HBOS", "MP", "POLY"]
    gen = np.random.default_rng(9)
    matrix = gen.uniform(0.05, 0.4, size=(len(train_records), len(detector_names)))
    matrix[np.arange(len(train_records)), np.arange(len(train_records))] += 0.5
    dataset = build_selector_dataset(train_records, matrix, detector_names,
                                     window=64, stride=64)
    selector = make_selector("MLP", window=64, n_classes=4, hidden=16,
                             feature_dim=8, seed=0)
    selector.fit(dataset, config=TrainerConfig(epochs=2, batch_size=32))

    gen = np.random.default_rng(17)
    streams = {f"s{i}": gen.normal(size=300) for i in range(8)}
    return {"selector": selector, "detector_names": detector_names,
            "streams": streams}


@pytest.fixture(scope="session")
def chaos_reference(chaos_world):
    """The uninterrupted single-process answers every chaos run must match."""
    engine = StreamEngine(chaos_world["selector"], chaos_world["detector_names"],
                          StreamingConfig(window=64, stride=32))
    updates = {}
    for tick in range(3):
        for sid, series in chaos_world["streams"].items():
            engine.append(sid, series[tick * 100:(tick + 1) * 100])
        for sid, update in engine.flush().items():
            updates[sid] = update.as_dict()
    return {
        "updates": updates,
        "scores": {sid: engine.scores(sid) for sid in chaos_world["streams"]},
    }


@pytest.fixture
def make_chaos_service(chaos_world):
    """Factory for services over the shared world; closes them at teardown."""
    services = []

    def build(n_shards=2, injector_factory=None, **config_overrides):
        factory = make_engine_factory(chaos_world["selector"],
                                      chaos_world["detector_names"],
                                      StreamingConfig(window=64, stride=32))
        service = ShardedService(
            factory,
            ServiceConfig(n_shards=n_shards, **config_overrides),
            injector_factory=injector_factory)
        services.append(service)
        return service

    yield build
    for service in services:
        service.close()
