"""Tests for the sharded streaming service (repro.service).

The load-bearing property is **bitwise equivalence**: a service with any
number of shards — including one that was rebalanced or recovered — must
produce exactly the selections and scores of a single in-process
:class:`StreamEngine`.  The fault-injection side lives in ``tests/chaos/``;
this module covers the ring, the transport layer, the shared-memory
handoff and the happy-path service semantics.
"""

import socket

import numpy as np
import pytest

from repro.core import TrainerConfig
from repro.data import build_selector_dataset, generate_series
from repro.selectors import make_selector
from repro.service import (
    FaultInjector,
    FrameReader,
    HashRing,
    ServiceConfig,
    ShardedService,
    SharedSegmentCache,
    SharedSeriesBuffer,
    TransportError,
    attach_shared_array,
    encode_message,
    make_engine_factory,
    recv_message,
    send_message,
)
from repro.streaming import DriftConfig, StreamEngine, StreamingConfig


# --------------------------------------------------------------------------- #
# consistent-hash ring
# --------------------------------------------------------------------------- #
TEN_K_STREAMS = [f"stream-{i}" for i in range(10_000)]


class TestHashRing:
    def test_owner_is_deterministic_and_total(self):
        ring = HashRing(["a", "b", "c"])
        owners = {sid: ring.owner(sid) for sid in TEN_K_STREAMS[:100]}
        again = HashRing(["a", "b", "c"])
        assert all(again.owner(sid) == owner for sid, owner in owners.items())
        assert set(owners.values()) <= {"a", "b", "c"}

    def test_uniformity_bounded_imbalance(self):
        # with the default 128 virtual nodes, no shard may own more than
        # 25% above (or below) its fair share of a 10k-stream population
        for n in (2, 4, 8):
            ring = HashRing([f"shard-{j}" for j in range(n)])
            counts = {s: 0 for s in ring.shard_ids}
            for sid in TEN_K_STREAMS:
                counts[ring.owner(sid)] += 1
            expected = len(TEN_K_STREAMS) / n
            assert max(counts.values()) <= 1.25 * expected, counts
            assert min(counts.values()) >= 0.75 * expected, counts

    def test_uniformity_chi_square(self):
        # with enough virtual nodes the assignment is statistically uniform:
        # chi-square over 4 shards x 10k streams below the 99.9% critical
        # value for 3 degrees of freedom (16.27)
        ring = HashRing([f"shard-{j}" for j in range(4)], replicas=512)
        counts = {s: 0 for s in ring.shard_ids}
        for sid in TEN_K_STREAMS:
            counts[ring.owner(sid)] += 1
        expected = len(TEN_K_STREAMS) / 4
        chi2 = sum((c - expected) ** 2 / expected for c in counts.values())
        assert chi2 < 16.27, (chi2, counts)

    def test_adding_a_shard_moves_a_minimal_slice(self):
        ring = HashRing([f"shard-{j}" for j in range(4)])
        before = {sid: ring.owner(sid) for sid in TEN_K_STREAMS}
        ring.add("shard-new")
        moved = [sid for sid in TEN_K_STREAMS if ring.owner(sid) != before[sid]]
        # every moved stream went *to* the new shard (nothing reshuffles
        # between surviving shards) and the slice is about K/(N+1)
        assert all(ring.owner(sid) == "shard-new" for sid in moved)
        assert len(moved) <= 2 * len(TEN_K_STREAMS) / 5

    def test_removing_a_shard_moves_only_its_streams(self):
        ring = HashRing([f"shard-{j}" for j in range(4)])
        before = {sid: ring.owner(sid) for sid in TEN_K_STREAMS}
        ring.remove("shard-2")
        for sid in TEN_K_STREAMS:
            if before[sid] != "shard-2":
                assert ring.owner(sid) == before[sid]
            else:
                assert ring.owner(sid) != "shard-2"

    def test_ownership_is_insertion_order_independent(self):
        forward = HashRing(["a", "b", "c", "d"])
        backward = HashRing(["d", "c", "b", "a"])
        rebuilt = HashRing(["b", "d"])
        rebuilt.add("a")
        rebuilt.add("c")
        for sid in TEN_K_STREAMS[:500]:
            assert forward.owner(sid) == backward.owner(sid) == rebuilt.owner(sid)

    def test_state_round_trip_preserves_ownership(self):
        ring = HashRing(["a", "b", "c"], replicas=32)
        clone = HashRing.from_state(ring.to_state())
        assert clone.to_state() == ring.to_state()
        assert all(clone.owner(sid) == ring.owner(sid) for sid in TEN_K_STREAMS[:200])

    def test_assign_groups_by_owner(self):
        ring = HashRing(["a", "b"])
        grouped = ring.assign(TEN_K_STREAMS[:50])
        assert sorted(sid for streams in grouped.values() for sid in streams) \
            == sorted(TEN_K_STREAMS[:50])
        for shard, streams in grouped.items():
            assert all(ring.owner(sid) == shard for sid in streams)

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)
        with pytest.raises(LookupError):
            HashRing().owner("s")
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")
        with pytest.raises(KeyError):
            ring.remove("ghost")
        with pytest.raises(ValueError):
            ring.add("")


# --------------------------------------------------------------------------- #
# transport framing + fault injector
# --------------------------------------------------------------------------- #
class TestTransport:
    def test_message_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            payload = {"op": "ping", "seq": 7, "values": [1.5, -2.25]}
            send_message(a, payload)
            assert recv_message(b) == payload
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none_and_mid_frame_eof_raises(self):
        a, b = socket.socketpair()
        a.close()
        assert recv_message(b) is None
        b.close()
        a, b = socket.socketpair()
        frame = encode_message({"op": "ping"})
        a.sendall(frame[: len(frame) - 2])
        a.close()
        with pytest.raises(TransportError):
            recv_message(b)
        b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall((1 << 31).to_bytes(4, "big"))
            with pytest.raises(TransportError):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_frame_reader_survives_mid_frame_timeout(self):
        # a timeout between the two halves of a frame must not desync the
        # framing — the second half completes the original message
        a, b = socket.socketpair()
        try:
            reader = FrameReader(b)
            frame = encode_message({"op": "ping", "seq": 1})
            a.sendall(frame[:3])
            with pytest.raises(TimeoutError):
                reader.read_frame(timeout_s=0.05)
            a.sendall(frame[3:])
            assert reader.read_frame(timeout_s=1.0) == {"op": "ping", "seq": 1}
        finally:
            a.close()
            b.close()

    def test_frame_reader_handles_coalesced_frames(self):
        a, b = socket.socketpair()
        try:
            reader = FrameReader(b)
            a.sendall(encode_message({"seq": 1}) + encode_message({"seq": 2}))
            assert reader.read_frame(1.0) == {"seq": 1}
            assert reader.read_frame(1.0) == {"seq": 2}
        finally:
            a.close()
            b.close()

    def test_fault_injector_is_seed_deterministic(self):
        one = FaultInjector(seed=42, drop=0.3, duplicate=0.2, delay=0.1)
        two = FaultInjector(seed=42, drop=0.3, duplicate=0.2, delay=0.1)
        assert [one.plan() for _ in range(200)] == [two.plan() for _ in range(200)]
        assert one.dropped == two.dropped and one.duplicated == two.duplicated
        assert one.dropped > 0 and one.duplicated > 0 and one.delayed > 0

    def test_fault_injector_validates_probabilities(self):
        with pytest.raises(ValueError):
            FaultInjector(seed=0, drop=1.5)


# --------------------------------------------------------------------------- #
# shared-memory series buffers
# --------------------------------------------------------------------------- #
class TestSharedMemory:
    def test_append_and_read_back(self):
        buffer = SharedSeriesBuffer("s", initial_capacity=8)
        try:
            values = np.arange(5, dtype=np.float64)
            assert buffer.append(values) == (0, 5)
            assert np.array_equal(buffer.series, values)
            assert buffer.append([9.0]) == (5, 6)
            assert buffer.length == len(buffer) == 6
        finally:
            buffer.close()

    def test_growth_copies_prefix_and_renames_segment(self):
        buffer = SharedSeriesBuffer("s", initial_capacity=4)
        try:
            buffer.append(np.arange(4, dtype=np.float64))
            name_before = buffer.name
            buffer.append(np.arange(4, 100, dtype=np.float64))
            assert buffer.name != name_before  # a new, larger segment
            assert np.array_equal(buffer.series, np.arange(100, dtype=np.float64))
        finally:
            buffer.close()

    def test_attach_shared_array_views_the_same_bytes(self):
        buffer = SharedSeriesBuffer("s", initial_capacity=16)
        try:
            buffer.append(np.linspace(0.0, 1.0, 10))
            shm, view = attach_shared_array(buffer.name, buffer.length)
            try:
                assert np.array_equal(view, buffer.series)
                assert not view.flags.writeable
            finally:
                shm.close()
        finally:
            buffer.close()

    def test_segment_cache_reattaches_on_rename(self):
        buffer = SharedSeriesBuffer("s", initial_capacity=4)
        cache = SharedSegmentCache()
        try:
            buffer.append(np.arange(3, dtype=np.float64))
            view = cache.view("s", buffer.name, buffer.length)
            assert np.array_equal(view, np.arange(3, dtype=np.float64))
            buffer.append(np.arange(3, 50, dtype=np.float64))  # forces growth
            view = cache.view("s", buffer.name, buffer.length)
            assert np.array_equal(view, np.arange(50, dtype=np.float64))
        finally:
            cache.close()
            buffer.close()

    def test_closed_buffer_rejects_appends(self):
        buffer = SharedSeriesBuffer("s")
        buffer.close()
        with pytest.raises(ValueError):
            buffer.append([1.0])
        buffer.close()  # idempotent

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SharedSeriesBuffer("s", initial_capacity=0)


# --------------------------------------------------------------------------- #
# the sharded service against the in-process engine
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def service_world():
    """A trained selector + deterministic live traffic, as in test_streaming."""
    train_records = [generate_series(name, 0, 400, seed=4)
                     for name in ("ECG", "IOPS", "MGAB", "SMD")]
    detector_names = ["IForest", "HBOS", "MP", "POLY"]
    gen = np.random.default_rng(9)
    matrix = gen.uniform(0.05, 0.4, size=(len(train_records), len(detector_names)))
    matrix[np.arange(len(train_records)), np.arange(len(train_records))] += 0.5
    dataset = build_selector_dataset(train_records, matrix, detector_names,
                                     window=64, stride=64)
    selector = make_selector("MLP", window=64, n_classes=4, hidden=16,
                             feature_dim=8, seed=0)
    selector.fit(dataset, config=TrainerConfig(epochs=2, batch_size=32))

    gen = np.random.default_rng(6)
    streams = {f"s{i}": gen.normal(size=300) for i in range(6)}
    return {"selector": selector, "detector_names": detector_names,
            "streams": streams}


def _drive(target, streams, n_ticks=3, chunk=100):
    """Feed every stream in ticks; returns the final update per stream."""
    updates = {}
    for tick in range(n_ticks):
        for sid, series in streams.items():
            target.append(sid, series[tick * chunk:(tick + 1) * chunk])
        for sid, update in target.flush().items():
            updates[sid] = update.as_dict() if hasattr(update, "as_dict") else update
    return updates


@pytest.fixture(scope="module")
def reference_run(service_world):
    """The in-process engine's answers for the shared traffic."""
    engine = StreamEngine(service_world["selector"],
                          service_world["detector_names"],
                          StreamingConfig(window=64, stride=32))
    updates = _drive(engine, service_world["streams"])
    scores = {sid: engine.scores(sid) for sid in service_world["streams"]}
    return {"updates": updates, "scores": scores}


def _make_service(world, n_shards, **config_overrides):
    factory = make_engine_factory(world["selector"], world["detector_names"],
                                  StreamingConfig(window=64, stride=32))
    return ShardedService(factory, ServiceConfig(n_shards=n_shards,
                                                 **config_overrides))


class TestShardedServiceEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_bitwise_equal_to_in_process_engine(self, service_world,
                                                reference_run, n_shards):
        with _make_service(service_world, n_shards) as service:
            updates = _drive(service, service_world["streams"])
            for sid in service_world["streams"]:
                assert updates[sid] == reference_run["updates"][sid]
                assert np.array_equal(service.scores(sid),
                                      reference_run["scores"][sid])
                assert np.array_equal(service.series(sid)[:300],
                                      np.asarray(service_world["streams"][sid]))

    def test_push_single_stream_matches_engine_push(self, service_world):
        engine = StreamEngine(service_world["selector"],
                              service_world["detector_names"],
                              StreamingConfig(window=64, stride=32))
        series = service_world["streams"]["s0"]
        with _make_service(service_world, 2) as service:
            for start in range(0, 300, 75):
                chunk = series[start:start + 75]
                assert service.push("solo", chunk) == engine.push("solo", chunk).as_dict()

    def test_stats_aggregate_across_shards(self, service_world):
        with _make_service(service_world, 2) as service:
            _drive(service, service_world["streams"])
            stats = service.stats()
            assert stats["shards"] == 2
            assert stats["streams"] == len(service_world["streams"])
            assert stats["totals"]["n_streams"] == len(service_world["streams"])
            assert stats["totals"]["points"] == 6 * 300
            per_shard_streams = sum(s["n_streams"]
                                    for s in stats["per_shard"].values())
            assert per_shard_streams == len(service_world["streams"])
            assert stats["restarts"] == 0 and stats["recoveries"] == 0


class TestRebalance:
    def test_add_and_remove_shard_preserve_results(self, service_world,
                                                   reference_run):
        with _make_service(service_world, 2) as service:
            _drive(service, service_world["streams"])
            service.add_shard()
            assert len(service.shard_ids) == 3
            for sid in service_world["streams"]:
                assert np.array_equal(service.scores(sid),
                                      reference_run["scores"][sid])
            service.remove_shard(service.shard_ids[0])
            assert len(service.shard_ids) == 2
            for sid in service_world["streams"]:
                assert np.array_equal(service.scores(sid),
                                      reference_run["scores"][sid])

    def test_streams_keep_flowing_after_rebalance(self, service_world,
                                                  reference_run):
        streams = service_world["streams"]
        with _make_service(service_world, 2) as service:
            _drive(service, streams, n_ticks=2)
            service.add_shard()
            # the third tick lands after the topology change — the final
            # updates must still be bitwise-equal to the uninterrupted run
            for sid, series in streams.items():
                service.append(sid, series[200:300])
            updates = service.flush()
            for sid in streams:
                assert updates[sid] == reference_run["updates"][sid]

    def test_cannot_remove_last_shard(self, service_world):
        with _make_service(service_world, 1) as service:
            with pytest.raises(ValueError):
                service.remove_shard(service.shard_ids[0])


class TestSelectionCache:
    def test_select_is_cached_until_new_data_arrives(self, service_world):
        streams = service_world["streams"]
        with _make_service(service_world, 2) as service:
            updates = _drive(service, streams, n_ticks=1)
            # push responses refresh the front-end LRU, so the first select
            # after a flush is already a cache hit — and answers bits-equal
            cached = service.select("s0")
            assert cached.get("cached") is True
            assert cached["selected_index"] == updates["s0"]["selected_index"]
            assert cached["votes"] == updates["s0"]["votes"]
            # staged (unflushed) data bypasses the cache: the cached answer
            # may be stale, so the shard is asked directly
            service.append("s0", streams["s0"][100:110])
            fresh = service.select("s0")
            assert "cached" not in fresh
            assert {k: fresh[k] for k in ("selected_index", "votes")} \
                == {k: cached[k] for k in ("selected_index", "votes")}

    def test_drift_reselection_broadcasts_invalidation(self, service_world):
        a = generate_series("ECG", 1, 640, seed=2).series
        b = generate_series("IOPS", 2, 640, seed=2).series
        stitched = np.concatenate([a, b])
        factory = make_engine_factory(
            service_world["selector"], service_world["detector_names"],
            StreamingConfig(window=64, stride=None,
                            drift=DriftConfig(reference_size=3, recent_size=3,
                                              threshold=0.05, release=0.01,
                                              cooldown=3),
                            keep_last_on_drift=3))
        with ShardedService(factory, ServiceConfig(n_shards=2)) as service:
            triggered = False
            for start in range(0, len(stitched), 64):
                update = service.push("flip", stitched[start:start + 64])
                triggered = triggered or update["drift_triggered"]
            assert triggered
            assert service.invalidations_broadcast >= 1
            assert service.stats()["totals"]["drift_triggers"] >= 1


class TestServiceFrontend:
    def test_tcp_round_trip_matches_python_api(self, service_world,
                                               reference_run):
        import asyncio
        import threading

        from repro.service import ServiceFrontend

        streams = service_world["streams"]
        with _make_service(service_world, 2) as service:
            frontend = ServiceFrontend(service)
            loop = asyncio.new_event_loop()
            started = threading.Event()

            def run_loop():
                asyncio.set_event_loop(loop)
                loop.run_until_complete(frontend.start())
                started.set()
                loop.run_forever()

            thread = threading.Thread(target=run_loop, daemon=True)
            thread.start()
            assert started.wait(timeout=10.0)
            try:
                conn = socket.create_connection(("127.0.0.1", frontend.port),
                                                timeout=10.0)
                try:
                    def call(**payload):
                        send_message(conn, payload)
                        return recv_message(conn)

                    assert call(op="ping")["ok"] is True
                    # drive the standard traffic over the wire
                    last = {}
                    for tick in range(3):
                        for sid, series in streams.items():
                            assert call(op="append", stream=sid,
                                        values=list(series[tick * 100:(tick + 1) * 100]))["ok"]
                        last.update(call(op="flush")["updates"])
                    # JSON floats round-trip exactly, so even over the wire
                    # the updates and scores stay bitwise-equal
                    for sid in streams:
                        assert last[sid] == reference_run["updates"][sid]
                        wire_scores = np.asarray(call(op="scores", stream=sid)["scores"])
                        assert np.array_equal(wire_scores,
                                              reference_run["scores"][sid])
                    selection = call(op="select", stream=sorted(streams)[0])["selection"]
                    assert selection["selected_model"] is not None
                    stats = call(op="stats")["stats"]
                    assert stats["shards"] == 2
                    assert "error" in call(op="frobnicate")
                finally:
                    conn.close()
            finally:
                asyncio.run_coroutine_threadsafe(frontend.stop(), loop) \
                    .result(timeout=10.0)
                loop.call_soon_threadsafe(loop.stop)
                thread.join(timeout=10.0)
                loop.close()


class TestServiceLifecycle:
    def test_close_is_idempotent_and_final(self, service_world):
        service = _make_service(service_world, 1)
        service.push("s", np.zeros(64))
        service.close()
        service.close()
        with pytest.raises(ValueError):
            service.append("s", np.zeros(8))

    def test_unknown_stream_raises(self, service_world):
        with _make_service(service_world, 1) as service:
            with pytest.raises(KeyError):
                service.series("ghost")
