"""Tests for the end-to-end system package (repro.system)."""

import numpy as np
import pytest

from repro.core import TrainerConfig
from repro.data import generate_series
from repro.detectors import make_detector
from repro.selectors import make_selector
from repro.system import (
    ModelSelectionPipeline,
    PipelineConfig,
    SelectorStore,
    compare_models,
    format_markdown_table,
    format_table,
    per_dataset_table,
    run_detection,
)


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.23456], ["bbb", 2.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "1.2346" in table
        assert lines[1].startswith("-")

    def test_format_markdown_table(self):
        table = format_markdown_table(["x", "y"], [[1, 2.5]])
        assert table.splitlines()[0] == "| x | y |"
        assert "2.5000" in table

    def test_per_dataset_table_includes_average(self):
        results = {"Standard": {"ECG": 0.5, "SMD": 0.3}, "Ours": {"ECG": 0.6, "SMD": 0.4}}
        table = per_dataset_table(results, datasets=["ECG", "SMD"])
        assert "Average" in table
        assert "0.5000" in table  # Ours average (0.6 + 0.4) / 2

    def test_per_dataset_table_handles_missing_entries(self):
        results = {"A": {"ECG": 0.5}}
        table = per_dataset_table(results, datasets=["ECG", "SMD"], include_average=False)
        assert "n/a" in table  # missing scores render legibly, not as "nan"


class TestAnomalyDetectionRunner:
    def test_run_detection_returns_metrics(self):
        record = generate_series("IOPS", 0, 400, seed=1)
        result = run_detection(record, make_detector("HBOS", window=16))
        assert result.series_name == record.name
        assert result.scores.shape == record.series.shape
        assert "auc_pr" in result.metrics
        assert result.auc_pr == result.metrics["auc_pr"]

    def test_run_detection_unlabeled_series_has_no_metrics(self):
        from repro.data import TimeSeriesRecord

        record = TimeSeriesRecord(name="unlabeled", dataset="ECG",
                                  series=np.sin(np.linspace(0, 20, 300)),
                                  labels=np.zeros(300, dtype=int))
        result = run_detection(record, make_detector("HBOS", window=16))
        assert result.metrics == {}
        assert np.isnan(result.auc_pr)
        assert result.scores.shape == record.series.shape

    def test_compare_models_subset(self):
        record = generate_series("NAB", 0, 400, seed=2)
        model_set = {"HBOS": make_detector("HBOS", window=16), "POLY": make_detector("POLY", window=16)}
        results = compare_models(record, model_set, names=["POLY"])
        assert list(results) == ["POLY"]

    def test_compare_models_unknown_name_raises(self):
        record = generate_series("NAB", 0, 300, seed=3)
        with pytest.raises(KeyError):
            compare_models(record, {"HBOS": make_detector("HBOS")}, names=["Nope"])


class TestSelectorStore:
    def test_non_nn_roundtrip(self, tmp_path, small_selector_dataset):
        store = SelectorStore(tmp_path)
        selector = make_selector("KNN").fit(small_selector_dataset)
        info = store.save("knn", selector, metadata={"window": 64})
        assert info.selector_type == "KNN" and not info.is_neural

        loaded = store.load("knn")
        windows = small_selector_dataset.windows[:5]
        assert np.allclose(loaded.predict_proba(windows), selector.predict_proba(windows))

    def test_nn_roundtrip(self, tmp_path, small_selector_dataset):
        store = SelectorStore(tmp_path)
        selector = make_selector("MLP", window=small_selector_dataset.windows.shape[1],
                                 n_classes=small_selector_dataset.n_classes, hidden=16, feature_dim=8)
        selector.fit(small_selector_dataset, config=TrainerConfig(epochs=1, batch_size=32))
        store.save("mlp", selector)
        loaded = store.load("mlp")
        windows = small_selector_dataset.windows[:5]
        assert np.allclose(loaded.predict_proba(windows), selector.predict_proba(windows))

    def test_duplicate_save_requires_overwrite(self, tmp_path, small_selector_dataset):
        store = SelectorStore(tmp_path)
        selector = make_selector("KNN").fit(small_selector_dataset)
        store.save("dup", selector)
        with pytest.raises(FileExistsError):
            store.save("dup", selector)
        store.save("dup", selector, overwrite=True)

    def test_list_and_delete(self, tmp_path, small_selector_dataset):
        store = SelectorStore(tmp_path)
        selector = make_selector("KNN").fit(small_selector_dataset)
        store.save("one", selector)
        store.save("two", selector)
        assert {info.name for info in store.list()} == {"one", "two"}
        assert "one" in store
        store.delete("one")
        assert "one" not in store
        with pytest.raises(KeyError):
            store.delete("one")

    def test_invalid_name_rejected(self, tmp_path):
        store = SelectorStore(tmp_path)
        with pytest.raises(ValueError):
            store._entry_dir("../evil")

    def test_info_unknown_raises(self, tmp_path):
        with pytest.raises(KeyError):
            SelectorStore(tmp_path).info("ghost")

    def test_metadata_preserved(self, tmp_path, small_selector_dataset):
        store = SelectorStore(tmp_path)
        selector = make_selector("KNN").fit(small_selector_dataset)
        store.save("meta", selector, metadata={"auc_pr": 0.42, "note": "trial"})
        assert store.info("meta").metadata == {"auc_pr": 0.42, "note": "trial"}


class TestPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self, tmp_path_factory):
        cache = tmp_path_factory.mktemp("oracle_cache")
        config = PipelineConfig(window=64, stride=64, detector_window=16, cache_dir=cache, seed=0)
        # A reduced model set keeps the oracle pass fast while exercising the full flow.
        from repro.detectors import make_detector as make
        model_set = {
            "IForest": make("IForest", window=16),
            "HBOS": make("HBOS", window=16),
            "MP": make("MP", window=16),
            "POLY": make("POLY", window=16),
        }
        return ModelSelectionPipeline(model_set=model_set, config=config)

    @pytest.fixture(scope="class")
    def train_records(self):
        return [generate_series(name, 0, 400, seed=4) for name in ("ECG", "IOPS", "MGAB", "SMD")]

    @pytest.fixture(scope="class")
    def fitted(self, pipeline, train_records):
        pipeline.prepare_training_data(train_records)
        pipeline.train_selector(
            "MLP", trainer_config=TrainerConfig(epochs=2, batch_size=32),
            hidden=16, feature_dim=8, seed=0,
        )
        return pipeline

    def test_prepare_training_data_builds_dataset(self, fitted):
        assert fitted.train_dataset is not None
        assert fitted.train_dataset.n_classes == 4

    def test_select_model_returns_votes(self, fitted):
        record = generate_series("ECG", 5, 400, seed=4)
        out = fitted.select_model(record)
        assert out["selected_model"] in fitted.detector_names
        assert set(out["votes"]) == set(fitted.detector_names)
        assert sum(out["votes"].values()) == pytest.approx(1.0)

    def test_detect_runs_selected_model(self, fitted):
        record = generate_series("IOPS", 5, 400, seed=4)
        result = fitted.detect(record)
        assert result.scores.shape == record.series.shape
        assert result.detector_name in fitted.detector_names

    def test_evaluate_returns_per_dataset_scores(self, fitted):
        test_records = [generate_series(name, 9, 400, seed=4) for name in ("ECG", "SMD")]
        evaluation = fitted.evaluate(test_records)
        assert set(evaluation.per_dataset_score) == {"ECG", "SMD"}
        assert 0.0 <= evaluation.average_score <= 1.0

    def test_train_selector_requires_prepared_data(self):
        pipeline = ModelSelectionPipeline(model_set={"HBOS": make_detector("HBOS")})
        with pytest.raises(RuntimeError):
            pipeline.train_selector("KNN")

    def test_select_model_requires_trained_selector(self, train_records):
        pipeline = ModelSelectionPipeline(model_set={"HBOS": make_detector("HBOS")})
        with pytest.raises(RuntimeError):
            pipeline.select_model(train_records[0])

    def test_non_nn_selector_through_pipeline(self, pipeline, train_records):
        pipeline.prepare_training_data(train_records)
        selector = pipeline.train_selector("KNN")
        record = generate_series("SMD", 7, 400, seed=4)
        out = pipeline.select_model(record)
        assert out["selected_model"] in pipeline.detector_names
        assert selector is pipeline.selector

    def test_windows_for_record(self, pipeline):
        record = generate_series("NAB", 0, 400, seed=4)
        windows = pipeline.windows_for(record)
        assert windows.shape[1] == pipeline.config.window
