"""Tests for the KDSelector trainer (repro.core.trainer)."""

import numpy as np
import pytest

from repro.core import (
    MKIConfig,
    PISLConfig,
    PruningConfig,
    SelectorTrainer,
    TrainerConfig,
    TrainingReport,
    kdselector_config,
)
from repro.selectors import make_selector


def _mlp(dataset, seed=0, **kwargs):
    return make_selector(
        "MLP",
        window=dataset.windows.shape[1],
        n_classes=dataset.n_classes,
        hidden=kwargs.pop("hidden", 32),
        feature_dim=kwargs.pop("feature_dim", 16),
        seed=seed,
    )


class TestTrainerBasics:
    def test_rejects_non_nn_selector(self):
        with pytest.raises(TypeError):
            SelectorTrainer(make_selector("KNN"), TrainerConfig())

    def test_standard_training_produces_report(self, small_selector_dataset):
        selector = _mlp(small_selector_dataset)
        trainer = SelectorTrainer(selector, TrainerConfig(epochs=2, batch_size=16))
        report = trainer.fit(small_selector_dataset)
        assert isinstance(report, TrainingReport)
        assert len(report.epoch_losses) == 2
        assert len(report.epoch_times) == 2
        assert report.total_time > 0
        assert report.n_samples == len(small_selector_dataset)
        assert report.epoch_samples_used == [len(small_selector_dataset)] * 2

    def test_val_split_tracks_accuracy(self, small_selector_dataset):
        selector = _mlp(small_selector_dataset)
        config = TrainerConfig(epochs=2, batch_size=16, val_fraction=0.25)
        report = SelectorTrainer(selector, config).fit(small_selector_dataset)
        assert len(report.epoch_val_accuracy) == 2
        assert all(0.0 <= acc <= 1.0 for acc in report.epoch_val_accuracy)

    def test_report_summary_keys(self, small_selector_dataset):
        selector = _mlp(small_selector_dataset)
        report = SelectorTrainer(selector, TrainerConfig(epochs=1)).fit(small_selector_dataset)
        summary = report.summary()
        assert {"epochs", "final_loss", "total_time_s", "pruned_fraction", "pisl", "mki", "pruning"} <= set(summary)

    def test_training_is_deterministic_given_seed(self, small_selector_dataset):
        a = _mlp(small_selector_dataset, seed=4)
        b = _mlp(small_selector_dataset, seed=4)
        SelectorTrainer(a, TrainerConfig(epochs=1, seed=4)).fit(small_selector_dataset)
        SelectorTrainer(b, TrainerConfig(epochs=1, seed=4)).fit(small_selector_dataset)
        pa = a.predict_proba(small_selector_dataset.windows[:5])
        pb = b.predict_proba(small_selector_dataset.windows[:5])
        assert np.allclose(pa, pb)

    def test_verbose_prints_progress(self, small_selector_dataset, capsys):
        selector = _mlp(small_selector_dataset)
        SelectorTrainer(selector, TrainerConfig(epochs=1, verbose=True)).fit(small_selector_dataset)
        assert "epoch 1/1" in capsys.readouterr().out


class TestKnowledgeModules:
    def test_pisl_only(self, small_selector_dataset):
        selector = _mlp(small_selector_dataset)
        config = TrainerConfig(epochs=1, pisl=PISLConfig(enabled=True, alpha=0.4, t_soft=0.25))
        report = SelectorTrainer(selector, config).fit(small_selector_dataset)
        assert report.config_summary["pisl"] is True
        assert report.config_summary["mki"] is False

    def test_mki_only(self, small_selector_dataset):
        selector = _mlp(small_selector_dataset)
        config = TrainerConfig(
            epochs=1,
            mki=MKIConfig(enabled=True, projection_dim=8, projection_hidden=16, text_dim=128),
        )
        trainer = SelectorTrainer(selector, config)
        report = trainer.fit(small_selector_dataset)
        assert report.config_summary["mki"] is True
        assert trainer.mki is not None
        # MKI adds the InfoNCE term, so the loss should exceed plain CE scale.
        assert report.epoch_losses[0] > 0

    def test_full_kdselector_runs(self, small_selector_dataset):
        selector = _mlp(small_selector_dataset)
        config = kdselector_config(epochs=3, batch_size=16, projection_dim=8)
        report = SelectorTrainer(selector, config).fit(small_selector_dataset)
        assert report.config_summary == {"pisl": True, "mki": True, "pruning": "pa"}
        assert len(report.epoch_losses) == 3

    def test_custom_text_encoder_is_used(self, small_selector_dataset):
        from repro.text import AveragedWordVectorEncoder

        selector = _mlp(small_selector_dataset)
        encoder = AveragedWordVectorEncoder(dim=32)
        config = TrainerConfig(epochs=1, mki=MKIConfig(enabled=True, projection_dim=8,
                                                       projection_hidden=16, text_dim=32))
        trainer = SelectorTrainer(selector, config, text_encoder=encoder)
        trainer.fit(small_selector_dataset)
        assert trainer.mki.text_encoder is encoder


class TestPruningIntegration:
    def test_infobatch_reduces_samples_after_first_epoch(self, small_selector_dataset):
        selector = _mlp(small_selector_dataset)
        config = TrainerConfig(
            epochs=3, batch_size=16,
            pruning=PruningConfig(method="infobatch", ratio=0.8, full_data_last_fraction=0.0),
        )
        report = SelectorTrainer(selector, config).fit(small_selector_dataset)
        assert report.epoch_samples_used[0] == len(small_selector_dataset)
        assert report.epoch_samples_used[1] < len(small_selector_dataset)
        assert report.pruned_fraction > 0

    def test_pa_reduces_samples_at_least_as_much_as_infobatch(self, selector_dataset):
        def run(method):
            selector = _mlp(selector_dataset, seed=1)
            config = TrainerConfig(
                epochs=3, batch_size=32, seed=1,
                pruning=PruningConfig(method=method, ratio=0.8, lsh_bits=8, n_bins=4,
                                      full_data_last_fraction=0.0),
            )
            return SelectorTrainer(selector, config).fit(selector_dataset)

        report_ib = run("infobatch")
        report_pa = run("pa")
        assert report_pa.total_samples_processed <= report_ib.total_samples_processed

    def test_pruned_training_still_learns(self, small_selector_dataset):
        selector = _mlp(small_selector_dataset, hidden=64, feature_dim=32)
        config = TrainerConfig(
            epochs=6, batch_size=16, lr=3e-3,
            pruning=PruningConfig(method="pa", ratio=0.5, lsh_bits=8, n_bins=4),
        )
        report = SelectorTrainer(selector, config).fit(small_selector_dataset)
        assert report.epoch_losses[-1] < report.epoch_losses[0]

    def test_trainer_exposes_pruner_state(self, small_selector_dataset):
        selector = _mlp(small_selector_dataset)
        config = TrainerConfig(epochs=2, pruning=PruningConfig(method="infobatch", ratio=0.5))
        trainer = SelectorTrainer(selector, config)
        trainer.fit(small_selector_dataset)
        assert len(trainer.pruner_.kept_fraction_history) == 2
