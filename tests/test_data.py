"""Tests for the synthetic benchmark data package (repro.data)."""

import numpy as np
import pytest

from repro.data import (
    DATASET_DESCRIPTIONS,
    DATASET_NAMES,
    FAMILY_CONFIGS,
    INJECTORS,
    TEST_DATASET_NAMES,
    AnomalySpan,
    TSBUADBenchmark,
    TimeSeriesRecord,
    build_selector_dataset,
    describe_record,
    describe_subsequence,
    extract_windows,
    generate_dataset,
    generate_series,
    inject_anomalies,
)
from repro.data import signals
from repro.data.anomalies import (
    inject_flatline,
    inject_level_shift,
    inject_spike,
)


class TestSignals:
    def test_sine_wave_period(self):
        wave = signals.sine_wave(100, period=25)
        assert wave.shape == (100,)
        assert np.allclose(wave[0], wave[25], atol=1e-9)

    def test_ecg_like_is_periodic_spiky(self):
        rng = np.random.default_rng(0)
        ecg = signals.ecg_like(500, beat_period=50, rng=rng)
        assert ecg.shape == (500,)
        assert ecg.max() > 2 * ecg.std()

    def test_mackey_glass_is_bounded_and_aperiodic(self):
        rng = np.random.default_rng(1)
        mg = signals.mackey_glass(400, rng)
        assert mg.shape == (400,)
        assert 0.0 < mg.min() and mg.max() < 2.0

    def test_random_walk_length(self):
        assert signals.random_walk(200, np.random.default_rng(2)).shape == (200,)

    def test_ar1_process_stationary(self):
        out = signals.ar1_process(2000, np.random.default_rng(3), phi=0.5, noise_std=0.1)
        assert abs(out.mean()) < 0.1

    def test_square_wave_two_levels(self):
        wave = signals.square_wave(300, period=50, rng=np.random.default_rng(4), low=0.0, high=1.0)
        assert set(np.round(np.unique(wave), 6)) <= {0.0, 1.0}

    def test_level_steps_piecewise_constant(self):
        steps = signals.level_steps(200, np.random.default_rng(5), n_levels=4)
        assert len(np.unique(steps)) <= 4

    def test_seasonal_pattern_nonnegative_peaks(self):
        pattern = signals.seasonal_pattern(300, period=60, rng=np.random.default_rng(6))
        assert pattern.max() > 0.5

    def test_trend_slope(self):
        out = signals.trend(10, slope=2.0)
        assert np.allclose(np.diff(out), 2.0)

    def test_sine_mixture_combines_amplitudes(self):
        mix = signals.sine_mixture(500, [50, 10], [1.0, 0.5], np.random.default_rng(7))
        assert mix.std() > 0.5


class TestAnomalyInjectors:
    @pytest.fixture
    def base(self):
        return np.sin(np.linspace(0, 20 * np.pi, 500))

    def test_spike_changes_only_interval(self, base):
        out = inject_spike(base, 100, 20, np.random.default_rng(0))
        assert not np.allclose(out[100:120], base[100:120])
        assert np.allclose(out[:100], base[:100])
        assert np.allclose(out[120:], base[120:])

    def test_level_shift_offsets_interval(self, base):
        out = inject_level_shift(base, 50, 30, np.random.default_rng(1))
        assert abs((out[50:80] - base[50:80]).mean()) > 0.5

    def test_flatline_is_constant(self, base):
        out = inject_flatline(base, 200, 25, np.random.default_rng(2))
        assert np.allclose(out[200:225], out[199])

    def test_all_registered_injectors_run(self, base):
        rng = np.random.default_rng(3)
        for name, injector in INJECTORS.items():
            out = injector(base, 300, 40, rng, 2.0)
            assert out.shape == base.shape, name
            assert np.all(np.isfinite(out)), name

    def test_inject_anomalies_labels_match_spans(self, base):
        series, labels, spans = inject_anomalies(
            base, np.random.default_rng(4), kinds=("spike",), n_anomalies=3, length_range=(10, 20)
        )
        assert series.shape == labels.shape
        assert len(spans) == 3
        for span in spans:
            assert labels[span.start:span.end].all()
        assert labels.sum() == sum(s.length for s in spans)

    def test_inject_anomalies_unknown_kind_raises(self, base):
        with pytest.raises(KeyError):
            inject_anomalies(base, np.random.default_rng(5), kinds=("bogus",), n_anomalies=1,
                             length_range=(5, 10))

    def test_inject_zero_anomalies(self, base):
        series, labels, spans = inject_anomalies(
            base, np.random.default_rng(6), kinds=("spike",), n_anomalies=0, length_range=(5, 10)
        )
        assert labels.sum() == 0 and spans == []

    def test_spans_do_not_overlap(self, base):
        _, labels, spans = inject_anomalies(
            base, np.random.default_rng(7), kinds=("spike", "level_shift"), n_anomalies=5,
            length_range=(10, 15)
        )
        spans = sorted(spans, key=lambda s: s.start)
        for a, b in zip(spans, spans[1:]):
            assert a.end <= b.start


class TestRecords:
    def test_descriptions_cover_all_16_families(self):
        assert len(DATASET_NAMES) == 16
        assert set(DATASET_DESCRIPTIONS) == set(DATASET_NAMES)
        assert set(FAMILY_CONFIGS) == set(DATASET_NAMES)

    def test_test_split_has_14_datasets(self):
        assert len(TEST_DATASET_NAMES) == 14
        assert "Dodgers" not in TEST_DATASET_NAMES
        assert "Occupancy" not in TEST_DATASET_NAMES

    def test_record_validates_alignment(self):
        with pytest.raises(ValueError):
            TimeSeriesRecord(name="x", dataset="ECG", series=np.zeros(10), labels=np.zeros(5))

    def test_record_properties(self):
        record = TimeSeriesRecord(
            name="x", dataset="ECG", series=np.zeros(10), labels=np.zeros(10),
            anomalies=[AnomalySpan(2, 3, "spike")],
        )
        assert record.length == 10
        assert record.n_anomalies == 1
        assert record.anomaly_lengths == [3]
        assert "electrocardiogram" in record.domain_description


class TestGenerators:
    @pytest.mark.parametrize("dataset", DATASET_NAMES)
    def test_every_family_generates_valid_series(self, dataset):
        record = generate_series(dataset, index=0, length=600, seed=1)
        assert record.dataset == dataset
        assert record.length == 600
        assert np.all(np.isfinite(record.series))
        assert set(np.unique(record.labels)) <= {0, 1}
        assert (record.labels.sum() > 0) == (record.n_anomalies > 0)

    def test_generation_is_deterministic(self):
        a = generate_series("IOPS", 3, 500, seed=9)
        b = generate_series("IOPS", 3, 500, seed=9)
        assert np.allclose(a.series, b.series)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = generate_series("IOPS", 3, 500, seed=1)
        b = generate_series("IOPS", 3, 500, seed=2)
        assert not np.allclose(a.series, b.series)

    def test_anomaly_free_series(self):
        record = generate_series("NAB", 0, 400, seed=0, anomaly_free=True)
        assert record.labels.sum() == 0

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            generate_series("NotADataset", 0, 100, 0)

    def test_generate_dataset_count_and_names(self):
        records = generate_dataset("SMD", n_series=4, length=300, seed=0)
        assert len(records) == 4
        assert len({r.name for r in records}) == 4


class TestMetadata:
    def test_describe_record_follows_template(self):
        record = generate_series("ECG", 0, 500, seed=2)
        text = describe_record(record)
        assert text.startswith("This is a time series from dataset ECG")
        assert f"The length of the series is {record.length}." in text
        assert f"There are {record.n_anomalies} anomalies" in text

    def test_describe_record_omits_lengths_without_anomalies(self):
        record = generate_series("ECG", 0, 500, seed=2, anomaly_free=True)
        text = describe_record(record)
        assert "lengths of the anomalies" not in text

    def test_describe_subsequence_restricts_to_window(self):
        record = generate_series("IOPS", 0, 800, seed=3)
        text_all = describe_subsequence(record, 0, record.length)
        text_none = describe_subsequence(record, 0, 1)
        assert "There are 0 anomalies" in text_none or record.labels[0] == 1
        assert f"The length of the series is {record.length}" in text_all


class TestWindowsAndBenchmark:
    def test_extract_windows_shape_and_normalisation(self):
        series = np.arange(100, dtype=float)
        windows = extract_windows(series, window=20, stride=10)
        assert windows.shape == (9, 20)
        assert np.allclose(windows.mean(axis=1), 0.0, atol=1e-9)

    def test_extract_windows_pads_short_series(self):
        windows = extract_windows(np.arange(5, dtype=float), window=16)
        assert windows.shape == (1, 16)

    def test_extract_windows_without_normalisation(self):
        windows = extract_windows(np.arange(40, dtype=float), window=10, normalize=False)
        assert windows.max() == 39

    def test_build_selector_dataset_alignment(self, tiny_benchmark, synthetic_performance_matrix,
                                              detector_name_list):
        ds = build_selector_dataset(
            tiny_benchmark.train_records, synthetic_performance_matrix, detector_name_list,
            window=64, stride=64,
        )
        assert len(ds) == len(ds.hard_labels) == len(ds.metadata_texts)
        assert ds.performances.shape == (len(ds), len(detector_name_list))
        assert ds.hard_labels.max() < len(detector_name_list)
        # hard label must be the argmax of the stored performance row
        assert np.array_equal(ds.hard_labels, ds.performances.argmax(axis=1))

    def test_build_selector_dataset_shape_mismatch_raises(self, tiny_benchmark, detector_name_list):
        with pytest.raises(ValueError):
            build_selector_dataset(tiny_benchmark.train_records, np.zeros((2, 3)), detector_name_list)

    def test_selector_dataset_subset_and_split(self, selector_dataset):
        subset = selector_dataset.subset([0, 1, 2])
        assert len(subset) == 3
        train, val = selector_dataset.train_val_split(0.25, seed=1)
        assert len(train) + len(val) == len(selector_dataset)
        assert len(val) == int(0.25 * len(selector_dataset))

    def test_selector_dataset_invalid_split_raises(self, selector_dataset):
        with pytest.raises(ValueError):
            selector_dataset.train_val_split(1.5)

    def test_max_windows_per_series(self, tiny_benchmark, synthetic_performance_matrix, detector_name_list):
        ds = build_selector_dataset(
            tiny_benchmark.train_records, synthetic_performance_matrix, detector_name_list,
            window=64, stride=16, max_windows_per_series=3,
        )
        counts = np.bincount(ds.series_ids)
        assert counts.max() <= 3

    def test_benchmark_split_structure(self, tiny_benchmark):
        assert len(tiny_benchmark.train_records) == 16
        assert set(tiny_benchmark.test_records) == set(TEST_DATASET_NAMES)
        assert len(tiny_benchmark.all_test_records) == 14
        summary = tiny_benchmark.summary()
        assert summary["ECG"]["train"] == 1 and summary["ECG"]["test"] == 1
        # Train-only families appear with zero test series.
        assert summary["Dodgers"]["test"] == 0

    def test_benchmark_train_and_test_series_differ(self):
        split = TSBUADBenchmark(n_train_per_dataset=1, n_test_per_dataset=1, series_length=300).load()
        train_ecg = [r for r in split.train_records if r.dataset == "ECG"][0]
        test_ecg = split.test_records["ECG"][0]
        assert not np.allclose(train_ecg.series, test_ecg.series)
