"""Tests for the ranking / statistical comparison utilities (repro.eval.ranking)."""

import numpy as np
import pytest

from repro.eval import (
    average_ranks,
    bootstrap_mean_ci,
    improvement_significance,
    pairwise_comparison,
)


@pytest.fixture
def toy_results():
    return {
        "A": {"d1": 0.9, "d2": 0.8, "d3": 0.7},
        "B": {"d1": 0.5, "d2": 0.6, "d3": 0.9},
        "C": {"d1": 0.1, "d2": 0.2, "d3": 0.3},
    }


class TestAverageRanks:
    def test_dominant_method_ranks_first(self, toy_results):
        ranks = average_ranks(toy_results)
        assert ranks["A"] < ranks["B"] < ranks["C"]
        assert ranks["C"] == pytest.approx(3.0)

    def test_ranks_average_to_centre(self, toy_results):
        ranks = average_ranks(toy_results)
        assert np.mean(list(ranks.values())) == pytest.approx(2.0)

    def test_ties_are_averaged(self):
        results = {"A": {"d1": 0.5}, "B": {"d1": 0.5}, "C": {"d1": 0.1}}
        ranks = average_ranks(results)
        assert ranks["A"] == ranks["B"] == pytest.approx(1.5)
        assert ranks["C"] == pytest.approx(3.0)

    def test_missing_dataset_raises(self):
        with pytest.raises(ValueError):
            average_ranks({"A": {"d1": 0.5}, "B": {"d2": 0.2}})


class TestPairwise:
    def test_win_tie_loss_counts(self, toy_results):
        records = pairwise_comparison(toy_results, reference="A")
        by_opponent = {r.method_b: r for r in records}
        assert by_opponent["C"].wins == 3 and by_opponent["C"].losses == 0
        assert by_opponent["B"].wins == 2 and by_opponent["B"].losses == 1
        assert by_opponent["B"].win_rate == pytest.approx(2 / 3)

    def test_reference_not_included(self, toy_results):
        records = pairwise_comparison(toy_results, reference="A")
        assert all(r.method_b != "A" for r in records)
        assert len(records) == 2

    def test_unknown_reference_raises(self, toy_results):
        with pytest.raises(KeyError):
            pairwise_comparison(toy_results, reference="Z")

    def test_tie_margin(self):
        results = {"A": {"d1": 0.5001}, "B": {"d1": 0.5000}}
        exact = pairwise_comparison(results, reference="A", tie_margin=1e-9)[0]
        loose = pairwise_comparison(results, reference="A", tie_margin=0.01)[0]
        assert exact.wins == 1
        assert loose.ties == 1


class TestBootstrap:
    def test_ci_contains_mean(self):
        scores = np.random.default_rng(0).uniform(0.3, 0.7, size=20)
        mean, low, high = bootstrap_mean_ci(scores, seed=1)
        assert low <= mean <= high
        assert mean == pytest.approx(scores.mean())

    def test_ci_narrows_with_more_data(self):
        rng = np.random.default_rng(1)
        small = rng.normal(0.5, 0.1, size=5)
        large = rng.normal(0.5, 0.1, size=500)
        _, lo_s, hi_s = bootstrap_mean_ci(small, seed=2)
        _, lo_l, hi_l = bootstrap_mean_ci(large, seed=2)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])

    def test_improvement_significance_clear_winner(self):
        a = {f"d{i}": 0.6 + 0.01 * i for i in range(10)}
        b = {f"d{i}": 0.4 + 0.01 * i for i in range(10)}
        result = improvement_significance(a, b, seed=3)
        assert result["mean_improvement"] == pytest.approx(0.2)
        assert result["p_improvement"] == pytest.approx(1.0)
        assert result["ci_low"] > 0

    def test_improvement_significance_no_overlap_raises(self):
        with pytest.raises(ValueError):
            improvement_significance({"d1": 0.5}, {"d2": 0.5})

    def test_improvement_significance_symmetric(self):
        a = {f"d{i}": v for i, v in enumerate([0.5, 0.6, 0.7, 0.4])}
        b = {f"d{i}": v for i, v in enumerate([0.6, 0.5, 0.6, 0.5])}
        forward = improvement_significance(a, b, seed=4)
        backward = improvement_significance(b, a, seed=4)
        assert forward["mean_improvement"] == pytest.approx(-backward["mean_improvement"])
