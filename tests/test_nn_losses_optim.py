"""Tests for losses, optimizers, schedulers and serialization of repro.nn."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = nn.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-4

    def test_uniform_prediction_equals_log_classes(self):
        logits = Tensor(np.zeros((4, 5)))
        loss = nn.cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert loss.item() == pytest.approx(np.log(5), abs=1e-6)

    def test_reduction_none_returns_per_sample(self):
        logits = Tensor(np.zeros((3, 2)))
        loss = nn.cross_entropy(logits, np.array([0, 1, 0]), reduction="none")
        assert loss.shape == (3,)

    def test_reduction_sum(self):
        logits = Tensor(np.zeros((3, 2)))
        total = nn.cross_entropy(logits, np.array([0, 1, 0]), reduction="sum")
        assert total.item() == pytest.approx(3 * np.log(2))

    def test_unknown_reduction_raises(self):
        with pytest.raises(ValueError):
            nn.cross_entropy(Tensor(np.zeros((1, 2))), np.array([0]), reduction="bogus")

    def test_sample_weights_scale_loss(self):
        logits = Tensor(np.zeros((2, 2)))
        weighted = nn.cross_entropy(logits, np.array([0, 1]), reduction="sum", weights=np.array([2.0, 0.0]))
        assert weighted.item() == pytest.approx(2 * np.log(2))

    def test_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(np.array([[1.0, 2.0, 0.5]]), requires_grad=True)
        nn.cross_entropy(logits, np.array([1])).backward()
        probs = np.exp(logits.data) / np.exp(logits.data).sum()
        expected = probs.copy()
        expected[0, 1] -= 1.0
        assert np.allclose(logits.grad, expected, atol=1e-8)


class TestSoftCrossEntropy:
    def test_matches_hard_ce_for_onehot_targets(self):
        rng = np.random.default_rng(0)
        logits_value = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        onehot = np.eye(4)[labels]
        hard = nn.cross_entropy(Tensor(logits_value), labels).item()
        soft = nn.soft_cross_entropy(Tensor(logits_value), onehot).item()
        assert hard == pytest.approx(soft, abs=1e-9)

    def test_minimised_when_prediction_matches_target(self):
        target = np.array([[0.7, 0.2, 0.1]])
        matching_logits = Tensor(np.log(target), requires_grad=True)
        loss_match = nn.soft_cross_entropy(matching_logits, target).item()
        loss_other = nn.soft_cross_entropy(Tensor(np.array([[0.0, 5.0, 0.0]])), target).item()
        assert loss_match < loss_other

    def test_per_sample_weights(self):
        logits = Tensor(np.zeros((2, 3)))
        target = np.full((2, 3), 1.0 / 3)
        loss = nn.soft_cross_entropy(logits, target, reduction="sum", weights=np.array([0.0, 1.0]))
        assert loss.item() == pytest.approx(np.log(3))


class TestInfoNCE:
    def test_identical_views_give_low_loss(self):
        rng = np.random.default_rng(1)
        z = rng.normal(size=(16, 8))
        loss_same = nn.info_nce(Tensor(z), Tensor(z), temperature=0.05).item()
        loss_rand = nn.info_nce(Tensor(z), Tensor(rng.normal(size=(16, 8))), temperature=0.05).item()
        assert loss_same < loss_rand

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            nn.info_nce(Tensor(np.zeros((4, 3))), Tensor(np.zeros((4, 5))))

    def test_reduction_none_per_pair(self):
        z = np.random.default_rng(2).normal(size=(5, 6))
        loss = nn.info_nce(Tensor(z), Tensor(z), reduction="none")
        assert loss.shape == (5,)

    def test_gradients_flow_to_both_views(self):
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        nn.info_nce(a, b).backward()
        assert a.grad is not None and b.grad is not None

    def test_loss_module_wrappers(self):
        z = np.random.default_rng(4).normal(size=(4, 4))
        assert nn.InfoNCELoss()(Tensor(z), Tensor(z)).item() > 0
        assert nn.MSELoss()(Tensor(z), z).item() == pytest.approx(0.0)
        assert nn.CrossEntropyLoss()(Tensor(np.zeros((2, 3))), np.array([0, 1])).item() > 0
        assert nn.SoftCrossEntropyLoss()(Tensor(np.zeros((2, 3))), np.full((2, 3), 1 / 3)).item() > 0


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0])
        param = nn.Parameter(np.zeros(2))
        return param, target

    def test_sgd_converges_on_quadratic(self):
        param, target = self._quadratic_problem()
        opt = nn.SGD([param], lr=0.1)
        for _ in range(200):
            loss = ((param - Tensor(target)) ** 2).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.allclose(param.data, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        param, target = self._quadratic_problem()
        opt = nn.SGD([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            loss = ((param - Tensor(target)) ** 2).sum()
            opt.zero_grad(); loss.backward(); opt.step()
        assert np.allclose(param.data, target, atol=1e-2)

    def test_adam_converges(self):
        param, target = self._quadratic_problem()
        opt = nn.Adam([param], lr=0.1)
        for _ in range(300):
            loss = ((param - Tensor(target)) ** 2).sum()
            opt.zero_grad(); loss.backward(); opt.step()
        assert np.allclose(param.data, target, atol=1e-2)

    def test_adamw_decoupled_decay_shrinks_weights(self):
        param = nn.Parameter(np.full(3, 10.0))
        opt = nn.AdamW([param], lr=0.01, weight_decay=0.1)
        for _ in range(10):
            loss = (param * 0.0).sum()
            opt.zero_grad(); loss.backward(); opt.step()
        assert np.all(np.abs(param.data) < 10.0)

    def test_weight_decay_pulls_toward_zero(self):
        param = nn.Parameter(np.full(2, 5.0))
        opt = nn.SGD([param], lr=0.1, weight_decay=0.5)
        loss = (param * 0.0).sum()
        opt.zero_grad(); loss.backward(); opt.step()
        assert np.all(param.data < 5.0)

    def test_optimizer_requires_trainable_params(self):
        frozen = nn.Parameter(np.zeros(2))
        frozen.requires_grad = False
        with pytest.raises(ValueError):
            nn.SGD([frozen], lr=0.1)

    def test_clip_grad_norm(self):
        param = nn.Parameter(np.zeros(4))
        param.grad = np.full(4, 100.0)
        opt = nn.SGD([param], lr=0.1)
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(200.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_step_skips_params_without_grad(self):
        param = nn.Parameter(np.ones(2))
        opt = nn.Adam([param], lr=0.1)
        opt.step()  # no gradient yet; should not move or crash
        assert np.allclose(param.data, 1.0)


class TestSchedulers:
    def test_step_lr_decays(self):
        param = nn.Parameter(np.zeros(1))
        opt = nn.SGD([param], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_cosine_annealing_reaches_min(self):
        param = nn.Parameter(np.zeros(1))
        opt = nn.SGD([param], lr=1.0)
        sched = nn.CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-9)

    def test_cosine_monotone_decreasing(self):
        param = nn.Parameter(np.zeros(1))
        opt = nn.SGD([param], lr=1.0)
        sched = nn.CosineAnnealingLR(opt, t_max=5)
        values = []
        for _ in range(5):
            sched.step()
            values.append(opt.lr)
        assert all(values[i] >= values[i + 1] for i in range(len(values) - 1))


class TestSerialization:
    def test_save_and_load_state(self, tmp_path):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        path = tmp_path / "model.npz"
        nn.save_state(model, path, metadata={"epochs": 3})

        clone = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        metadata = nn.load_state(clone, path)
        assert metadata == {"epochs": 3}
        x = Tensor(np.random.default_rng(5).normal(size=(3, 4)))
        assert np.allclose(model(x).numpy(), clone(x).numpy())

    def test_load_appends_npz_suffix(self, tmp_path):
        model = nn.Linear(2, 2)
        path = tmp_path / "weights"
        nn.save_state(model, path)
        clone = nn.Linear(2, 2)
        nn.load_state(clone, path)  # resolves weights.npz
        assert np.allclose(model.weight.data, clone.weight.data)

    def test_batchnorm_buffers_roundtrip(self, tmp_path):
        bn = nn.BatchNorm1d(3)
        bn(Tensor(np.random.default_rng(6).normal(2.0, 1.0, size=(32, 3))))
        nn.save_state(bn, tmp_path / "bn.npz")
        clone = nn.BatchNorm1d(3)
        nn.load_state(clone, tmp_path / "bn.npz")
        assert np.allclose(bn._buffers["running_mean"], clone._buffers["running_mean"])
