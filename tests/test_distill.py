"""Tests for the distilled + quantized selector fast path (repro.distill).

Covers the int8 kernels (per-channel round-trip bounds, calibration
determinism, exact serialization), the distillation pipeline (student vs
teacher agreement, the dequantize-compare gate, the bitwise-untouched
teacher), the content-addressed transform cache, the incremental
student refresh loop, and the ``distill`` CLI command with the
``--selector-tier`` serving flags.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import TrainerConfig
from repro.data import build_selector_dataset, generate_series
from repro.data.windows import extract_windows
from repro.distill import (
    DistillConfig,
    Int8StudentSelector,
    RefreshConfig,
    StudentRefresher,
    StudentSelector,
    calibration_split,
    distill_student,
    quantize_student,
    quantize_teacher,
    selection_agreement,
    sync_quantized,
    teacher_soft_dataset,
)
from repro.nn.quant import (
    INT8_LEVELS,
    QuantizedConv1d,
    QuantizedLinear,
    calibrate_activation_scale,
    quantize_weight_per_channel,
)
from repro.selectors.teacher_int8 import conv_fold_plan, named_conv_modules
from repro.obs import AuditLog
from repro.selectors import make_selector
from repro.selectors.features import (
    _count_peaks,
    _longest_strike_above_mean,
    _longest_strike_batch,
    _peak_distance,
    _peak_stats_batch,
    extract_features,
    extract_features_cached,
)
from repro.serving.transform_cache import (
    cached_transform,
    configure_transform_cache,
    default_transform_cache,
)
from repro.system.selector_store import SelectorStore


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


# --------------------------------------------------------------------------- #
# int8 kernels (repro.nn.quant)
# --------------------------------------------------------------------------- #
class TestQuantKernels:
    def test_per_channel_round_trip_bound(self, rng):
        weight = rng.normal(scale=3.0, size=(16, 40))
        q, scale = quantize_weight_per_channel(weight)
        assert q.dtype == np.int8 and scale.shape == (16,)
        dequantized = q.astype(np.float64) * scale[:, None]
        # round-half-to-even: per-element error bounded by half a level
        assert np.all(np.abs(weight - dequantized) <= scale[:, None] / 2 + 1e-12)
        # each channel's absmax hits the full level range exactly
        assert np.all(np.abs(q).max(axis=1) == INT8_LEVELS)

    def test_zero_rows_get_unit_scale(self):
        weight = np.zeros((3, 5))
        weight[1] = [1.0, -2.0, 0.5, 0.0, 0.25]
        q, scale = quantize_weight_per_channel(weight)
        assert scale[0] == 1.0 and scale[2] == 1.0
        assert np.all(q[0] == 0) and np.all(q[2] == 0)

    def test_rejects_non_2d_weight(self):
        with pytest.raises(ValueError):
            quantize_weight_per_channel(np.zeros(4))

    def test_activation_scale_deterministic_and_iterable(self, rng):
        acts = rng.normal(size=(50, 8))
        scale = calibrate_activation_scale(acts)
        assert scale == calibrate_activation_scale(acts.copy())
        assert scale == np.abs(acts).max() / INT8_LEVELS
        # iterable form sees the union of all samples
        assert calibrate_activation_scale([acts[:10], acts[10:]]) == scale
        assert calibrate_activation_scale(np.empty((0, 8))) == 1.0

    def test_quantized_linear_matches_float_within_bound(self, rng):
        linear = nn.Linear(24, 6)
        x = rng.normal(size=(32, 24))
        act_scale = calibrate_activation_scale(x)
        quantized = QuantizedLinear.from_linear(linear, act_scale)
        expected = linear(nn.Tensor(x)).numpy()
        got = quantized(nn.Tensor(x)).numpy()
        # both operands carry at most half-a-level error; the product error
        # is bounded by the sum of the per-operand contributions
        w_err = (quantized.weight_scale / 2)[None, :] * np.abs(x).sum(axis=1)[:, None]
        x_err = act_scale / 2 * np.abs(quantized.dequantized_weight()).sum(axis=1)[None, :]
        assert np.all(np.abs(got - expected) <= w_err + x_err + 1e-9)

    def test_forward_rejects_non_2d(self):
        module = QuantizedLinear(4, 2)
        with pytest.raises(ValueError):
            module(nn.Tensor(np.zeros(4)))

    def test_int32_fallback_matches_float32_gemm_semantics(self, rng):
        # wide enough that in_features * 127 * 127 >= 2**24 -> int32 path
        wide = QuantizedLinear(1100, 3)
        narrow_weight = rng.normal(size=(3, 1100))
        wide.load_weights(narrow_weight, None, act_scale=0.05)
        x = rng.normal(scale=2.0, size=(4, 1100))
        got = wide(nn.Tensor(x)).numpy()
        # recompute the exact integer accumulation by hand
        q_x = np.clip(np.rint(x / 0.05), -INT8_LEVELS, INT8_LEVELS)
        acc = q_x.astype(np.int64) @ wide.weight_q.astype(np.int64).T
        expected = acc * (0.05 * wide.weight_scale)[None, :]
        assert np.array_equal(got, expected)

    def test_serialization_round_trips_int8_payload(self, rng, tmp_path):
        linear = nn.Linear(12, 5)
        module = QuantizedLinear.from_linear(linear, act_scale=0.1)
        nn.save_state(module, tmp_path / "q.npz")
        restored = QuantizedLinear(12, 5)
        nn.load_state(restored, tmp_path / "q.npz")
        assert restored.weight_q.dtype == np.int8
        assert np.array_equal(restored.weight_q, module.weight_q)
        assert np.array_equal(restored.weight_scale, module.weight_scale)
        assert np.array_equal(restored.act_scale, module.act_scale)
        x = rng.normal(size=(8, 12))
        assert np.array_equal(restored(nn.Tensor(x)).numpy(),
                              module(nn.Tensor(x)).numpy())


class TestBufferDtypePreservation:
    """The serialization fix: buffers keep their dtype through save/load."""

    class _Buffered(nn.Module):
        def __init__(self):
            super().__init__()
            self.register_buffer("f32", np.arange(4, dtype=np.float32))
            self.register_buffer("i8", np.arange(-3, 3, dtype=np.int8))
            self.register_buffer("f64", np.arange(4, dtype=np.float64))

    def test_register_buffer_preserves_dtype(self):
        module = self._Buffered()
        assert module.f32.dtype == np.float32
        assert module.i8.dtype == np.int8
        assert module.f64.dtype == np.float64

    def test_save_load_round_trip_keeps_dtypes(self, tmp_path):
        module = self._Buffered()
        nn.save_state(module, tmp_path / "m.npz")
        restored = self._Buffered()
        restored.update_buffer("f32", np.zeros(4, dtype=np.float32))
        nn.load_state(restored, tmp_path / "m.npz")
        assert restored.f32.dtype == np.float32
        assert restored.i8.dtype == np.int8
        assert restored.f64.dtype == np.float64
        assert np.array_equal(restored.f32, module.f32)

    def test_state_dict_load_preserves_float32(self):
        module = self._Buffered()
        state = module.state_dict()
        restored = self._Buffered()
        restored.load_state_dict(state)
        assert restored.f32.dtype == np.float32


# --------------------------------------------------------------------------- #
# vectorised feature kernels stay bitwise-equal to the per-row references
# --------------------------------------------------------------------------- #
class TestVectorisedFeatures:
    def test_longest_strike_matches_reference(self, rng):
        x = rng.normal(size=(40, 50))
        above = x > x.mean(axis=1, keepdims=True)
        batch = _longest_strike_batch(above)
        reference = [_longest_strike_above_mean(row) for row in x]
        assert np.array_equal(batch, np.asarray(reference, dtype=np.float64))

    def test_peak_stats_match_reference(self, rng):
        x = rng.normal(size=(40, 50))
        counts, distances = _peak_stats_batch(x)
        assert np.array_equal(counts, [float(_count_peaks(row)) for row in x])
        assert np.array_equal(distances, [_peak_distance(row) for row in x])

    def test_peak_stats_degenerate_width(self):
        counts, distances = _peak_stats_batch(np.zeros((3, 2)))
        assert np.array_equal(counts, np.zeros(3))
        assert np.array_equal(distances, np.full(3, 2.0))

    def test_constant_rows(self):
        x = np.ones((4, 30))
        above = x > x.mean(axis=1, keepdims=True)
        assert np.array_equal(_longest_strike_batch(above), np.zeros(4))


# --------------------------------------------------------------------------- #
# content-addressed transform cache
# --------------------------------------------------------------------------- #
@pytest.fixture
def fresh_cache():
    """Small transform cache for the test; restore the env default after."""
    configure_transform_cache(8)
    yield default_transform_cache()
    configure_transform_cache(None)


class TestTransformCache:
    def test_hit_is_bitwise_identical_and_read_only(self, rng, fresh_cache):
        x = rng.normal(size=(6, 32))
        calls = []

        def fn(arr):
            calls.append(1)
            return arr * 2.0

        first = cached_transform(x, "double", fn)
        second = cached_transform(x.copy(), "double", fn)
        assert len(calls) == 1  # second call served from the cache
        assert second is first
        assert np.array_equal(first, x * 2.0)
        assert not second.flags.writeable
        with pytest.raises(ValueError):
            second[0, 0] = 99.0

    def test_transform_id_separates_entries(self, rng, fresh_cache):
        x = rng.normal(size=(4, 16))
        a = cached_transform(x, "a", lambda arr: arr + 1)
        b = cached_transform(x, "b", lambda arr: arr - 1)
        assert not np.array_equal(a, b)

    def test_disabled_cache_passes_through(self, rng):
        configure_transform_cache(0)
        try:
            assert default_transform_cache() is None
            x = rng.normal(size=(4, 16))
            out = cached_transform(x, "t", lambda arr: arr * 3)
            assert np.array_equal(out, x * 3)
        finally:
            configure_transform_cache(None)

    def test_extract_features_cached_matches_direct(self, rng, fresh_cache):
        windows = rng.normal(size=(10, 64))
        direct = extract_features(windows)
        cached = extract_features_cached(windows)
        assert np.array_equal(direct, cached)
        hits_before = fresh_cache.stats.hits
        again = extract_features_cached(windows.copy())
        assert fresh_cache.stats.hits == hits_before + 1
        assert again is cached


# --------------------------------------------------------------------------- #
# distillation
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def distill_world():
    """A small trained teacher + transfer/query windows."""
    families = ("ECG", "IOPS", "MGAB", "SMD")
    train_records = [generate_series(name, 0, 400, seed=4) for name in families]
    detector_names = ["IForest", "HBOS", "MP", "POLY"]
    gen = np.random.default_rng(9)
    matrix = gen.uniform(0.05, 0.4, size=(len(train_records), len(detector_names)))
    matrix[np.arange(len(train_records)), np.arange(len(train_records))] += 0.5
    dataset = build_selector_dataset(train_records, matrix, detector_names,
                                     window=64, stride=64)
    teacher = make_selector("ResNet", window=64, n_classes=4, mid_channels=12,
                            num_layers=2, seed=0)
    teacher.fit(dataset, config=TrainerConfig(epochs=2, batch_size=32))

    transfer_records = [generate_series(families[i % len(families)], i, 800, seed=11)
                        for i in range(12)]
    transfer = np.vstack([extract_windows(r.series, 64, stride=32)
                          for r in transfer_records])
    query_records = [generate_series(families[i % len(families)], i, 600, seed=12)
                     for i in range(6)]
    query = np.vstack([extract_windows(r.series, 64) for r in query_records])
    return {"teacher": teacher, "detector_names": detector_names,
            "transfer": transfer, "query": query}


@pytest.fixture(scope="module")
def distilled(distill_world):
    student, report = distill_student(
        distill_world["teacher"], distill_world["transfer"],
        distill_world["detector_names"],
        DistillConfig(epochs=30, seed=0))
    return student, report


class TestCalibrationSplit:
    def test_deterministic_partition(self):
        train_a, calib_a = calibration_split(100, 0.25, seed=3)
        train_b, calib_b = calibration_split(100, 0.25, seed=3)
        assert np.array_equal(train_a, train_b) and np.array_equal(calib_a, calib_b)
        assert len(calib_a) == 25
        assert sorted(np.concatenate([train_a, calib_a])) == list(range(100))

    def test_seed_changes_split(self):
        _, calib_a = calibration_split(100, 0.25, seed=3)
        _, calib_b = calibration_split(100, 0.25, seed=4)
        assert not np.array_equal(calib_a, calib_b)

    def test_degenerate_sizes(self):
        train, calib = calibration_split(1, 0.5, seed=0)
        assert len(calib) == 0 and len(train) == 1
        train, calib = calibration_split(10, 0.0, seed=0)
        assert len(calib) == 0 and len(train) == 10
        # at least one training row always survives
        _, calib = calibration_split(4, 0.99, seed=0)
        assert len(calib) <= 3


class TestSelectionAgreement:
    def test_empty_is_perfect(self):
        assert selection_agreement(np.empty((0, 3)), np.empty((0, 3))) == 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            selection_agreement(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_counts_matching_argmax(self):
        a = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        b = np.array([[0.8, 0.2], [0.7, 0.3], [0.1, 0.9]])
        assert selection_agreement(a, b) == pytest.approx(1 / 3)


class TestDistillStudent:
    def test_soft_dataset_wraps_teacher_proba(self, distill_world):
        windows = distill_world["transfer"][:20]
        dataset = teacher_soft_dataset(distill_world["teacher"], windows,
                                       distill_world["detector_names"])
        proba = distill_world["teacher"].predict_proba(windows)
        assert np.array_equal(dataset.performances, proba)
        assert np.array_equal(dataset.hard_labels, proba.argmax(axis=1))
        assert dataset.window_size == 64

    def test_student_agrees_with_teacher(self, distill_world, distilled):
        student, report = distilled
        assert report.student_parameters < report.teacher_parameters
        # regression floor on held-out windows the student never saw
        agreement = selection_agreement(
            student.predict_proba(distill_world["query"]),
            distill_world["teacher"].predict_proba(distill_world["query"]))
        assert agreement >= 0.9
        assert report.student_agreement >= 0.9

    def test_teacher_bitwise_untouched(self, distill_world):
        teacher = distill_world["teacher"]
        before = teacher.predict_proba(distill_world["query"])
        distill_student(teacher, distill_world["transfer"][:60],
                        distill_world["detector_names"],
                        DistillConfig(epochs=2, seed=1))
        assert np.array_equal(teacher.predict_proba(distill_world["query"]), before)

    def test_rejects_tiny_transfer_sets(self, distill_world):
        with pytest.raises(ValueError):
            distill_student(distill_world["teacher"],
                            distill_world["transfer"][:1],
                            distill_world["detector_names"])


class TestQuantizeStudent:
    def test_quantized_agrees_with_float(self, distill_world, distilled):
        student, _ = distilled
        quantized, gate = quantize_student(student, distill_world["transfer"],
                                           min_agreement=0.97)
        assert isinstance(quantized, Int8StudentSelector)
        assert gate["agreement"] >= 0.97
        assert gate["max_proba_diff"] < 0.1
        # the property holds on fresh windows too, not just the calibration set
        agreement = selection_agreement(
            quantized.predict_proba(distill_world["query"]),
            student.predict_proba(distill_world["query"]))
        assert agreement >= 0.97

    def test_gate_raises_below_threshold(self, distill_world, distilled):
        student, _ = distilled
        # an unreachable threshold must trip the dequantize-compare gate
        with pytest.raises(ValueError, match="calibration windows"):
            quantize_student(student, distill_world["transfer"], min_agreement=1.1)

    def test_int8_selector_is_inference_only(self, distill_world, distilled):
        student, _ = distilled
        quantized, _ = quantize_student(student, distill_world["transfer"],
                                        min_agreement=None)
        with pytest.raises(RuntimeError, match="inference-only"):
            quantized.fit(None)

    def test_sync_quantized_tracks_finetuned_weights(self, distill_world, distilled):
        student, _ = distilled
        quantized, _ = quantize_student(student, distill_world["transfer"],
                                        min_agreement=None)
        before = quantized.predict_proba(distill_world["query"][:8])
        student.classifier.weight.data[:] += 0.5
        try:
            sync_quantized(student, quantized)
            after = quantized.predict_proba(distill_world["query"][:8])
            assert not np.array_equal(before, after)
        finally:
            student.classifier.weight.data[:] -= 0.5
            sync_quantized(student, quantized)


class TestStoreRoundTrip:
    def test_student_and_int8_round_trip_bitwise(self, distill_world, distilled,
                                                 tmp_path):
        student, _ = distilled
        quantized, _ = quantize_student(student, distill_world["transfer"],
                                        min_agreement=None)
        store = SelectorStore(tmp_path / "store")
        store.save("s", student)
        store.save("s-int8", quantized)

        restored = store.load("s")
        restored_q = store.load("s-int8")
        query = distill_world["query"]
        assert np.array_equal(restored.predict_proba(query),
                              student.predict_proba(query))
        assert np.array_equal(restored_q.predict_proba(query),
                              quantized.predict_proba(query))
        assert restored_q.classifier.weight_q.dtype == np.int8


# --------------------------------------------------------------------------- #
# incremental refresh
# --------------------------------------------------------------------------- #
class TestStudentRefresher:
    def test_rejects_int8_student(self, distill_world, distilled):
        student, _ = distilled
        quantized, _ = quantize_student(student, distill_world["transfer"],
                                        min_agreement=None)
        with pytest.raises(TypeError, match="quantized="):
            StudentRefresher(distill_world["teacher"], quantized)

    def test_no_escalation_when_in_agreement(self, distill_world, distilled):
        student, _ = distilled
        refresher = StudentRefresher(distill_world["teacher"], student,
                                     RefreshConfig(min_agreement=0.5))
        outcome = refresher.refresh(distill_world["query"])
        assert not outcome.escalated and outcome.steps == 0
        assert refresher._checks.value == 1
        assert refresher._escalations.value == 0

    def test_empty_windows_no_op(self, distill_world, distilled):
        student, _ = distilled
        refresher = StudentRefresher(distill_world["teacher"], student)
        outcome = refresher.refresh(np.empty((0, 64)))
        assert outcome.windows == 0 and not outcome.escalated

    def test_escalation_finetunes_and_audits(self, distill_world, tmp_path):
        # a fresh, deliberately stale student: distill briefly, then perturb
        student, _ = distill_student(
            distill_world["teacher"], distill_world["transfer"],
            distill_world["detector_names"], DistillConfig(epochs=20, seed=2))
        quantized, _ = quantize_student(student, distill_world["transfer"],
                                        min_agreement=None)
        noise = np.random.default_rng(5)
        student.classifier.weight.data += noise.normal(
            scale=0.3, size=student.classifier.weight.data.shape)

        audit = AuditLog(tmp_path / "audit.jsonl")
        refresher = StudentRefresher(
            distill_world["teacher"], student,
            RefreshConfig(min_agreement=0.99, steps=60, lr=1e-2, seed=0),
            quantized=quantized)
        q_before = quantized.predict_proba(distill_world["query"][:8])
        outcome = refresher.refresh(distill_world["transfer"], audit=audit,
                                    stream="s0")
        assert outcome.escalated and outcome.steps == 60
        assert outcome.agreement_after >= outcome.agreement_before
        assert refresher._escalations.value == 1
        assert refresher._finetune_steps.value == 60
        # the int8 twin was re-quantized in place
        assert not np.array_equal(
            quantized.predict_proba(distill_world["query"][:8]), q_before)
        events = audit.events(event="student_refresh")
        assert len(events) == 1
        assert events[0]["stream"] == "s0" and events[0]["escalated"] is True

    def test_refresh_from_series_windows_the_tail(self, distill_world, distilled):
        student, _ = distilled
        refresher = StudentRefresher(distill_world["teacher"], student,
                                     RefreshConfig(min_agreement=0.0))
        series = generate_series("ECG", 0, 500, seed=13).series
        outcome = refresher.refresh_from_series(series, window=64, stride=32)
        assert outcome is not None and outcome.windows > 0
        assert refresher.refresh_from_series(np.zeros(10), window=64, stride=32) is None


# --------------------------------------------------------------------------- #
# CLI: distill + --selector-tier
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def cli_distilled(tmp_path_factory):
    from repro.system.cli import main

    root = tmp_path_factory.mktemp("distill_cli")
    data_dir = root / "data"
    perf = root / "perf.npz"
    store = root / "store"
    assert main(["generate-data", str(data_dir), "--datasets", "ECG", "IOPS",
                 "SMD", "--per-dataset", "1", "--length", "400", "--seed", "3"]) == 0
    assert main(["label", str(data_dir), str(perf), "--detector-window", "16"]) == 0
    assert main(["train", str(data_dir), str(perf), "--selector", "MLP",
                 "--store", str(store), "--name", "m", "--window", "64",
                 "--stride", "32", "--epochs", "2"]) == 0
    assert main(["distill", str(data_dir), "--store", str(store), "--name", "m",
                 "--window", "64", "--stride", "32", "--epochs", "10",
                 "--min-agreement", "0.0"]) == 0
    return {"root": root, "data_dir": data_dir, "store": store}


class TestDistillCLI:
    def test_distill_saves_both_tiers(self, cli_distilled):
        store = SelectorStore(cli_distilled["store"])
        assert isinstance(store.load("m-student"), StudentSelector)
        assert isinstance(store.load("m-student-int8"), Int8StudentSelector)

    def test_batch_select_with_int8_tier(self, cli_distilled, capsys):
        from repro.system.cli import main

        assert main(["batch-select", str(cli_distilled["data_dir"]),
                     "--store", str(cli_distilled["store"]), "--name", "m",
                     "--selector-tier", "student-int8", "--window", "64"]) == 0
        assert "series/s" in capsys.readouterr().out

    def test_missing_student_tier_is_actionable(self, cli_distilled):
        from repro.system.cli import main

        with pytest.raises(SystemExit, match="distill"):
            main(["batch-select", str(cli_distilled["data_dir"]),
                  "--store", str(cli_distilled["store"]), "--name", "ghost",
                  "--selector-tier", "student", "--window", "64"])

    def test_refresh_flag_requires_student_tier(self, cli_distilled):
        from repro.system.cli import main

        series = cli_distilled["data_dir"] / "ECG_0.csv"
        with pytest.raises(SystemExit, match="selector-tier"):
            main(["stream", str(series), "--store", str(cli_distilled["store"]),
                  "--name", "m", "--refresh-min-agreement", "0.9",
                  "--window", "64"])

    def test_stream_with_refresh_and_tier(self, cli_distilled, capsys):
        from repro.system.cli import main

        series = sorted(cli_distilled["data_dir"].glob("*.csv"))[0]
        assert main(["stream", str(series), "--store", str(cli_distilled["store"]),
                     "--name", "m", "--selector-tier", "student-int8",
                     "--refresh-min-agreement", "0.5", "--window", "64",
                     "--stride", "32", "--drift-threshold", "0.5"]) == 0
        assert "selected" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# int8 conv kernels + the 2**24 exact-accumulation boundary
# --------------------------------------------------------------------------- #
def _conv_integer_reference(module, x):
    """Integer im2col reference for QuantizedConv1d (int64, always exact)."""
    s = float(module.act_scale[0])
    q = np.clip(np.rint(np.asarray(x, dtype=np.float64) / s), -INT8_LEVELS, INT8_LEVELS)
    if module.padding:
        n, c, length = q.shape
        padded = np.zeros((n, c, length + 2 * module.padding))
        padded[:, :, module.padding:module.padding + length] = q
        q = padded
    n, _, length = q.shape
    span = (module.kernel_size - 1) * module.dilation + 1
    l_out = (length - span) // module.stride + 1
    weights = module.weight_q.astype(np.int64)
    out = np.zeros((n, module.out_channels, l_out), dtype=np.int64)
    for t in range(l_out):
        start = t * module.stride
        patch = q[:, :, start:start + span:module.dilation].astype(np.int64)
        out[:, :, t] = np.einsum("nck,ock->no", patch, weights)
    return out


def _exact_int8_conv(in_channels, kernel_size, rng, stride=1):
    """A QuantizedConv1d whose scales are exactly 1.0 and bias is zero, so
    its forward output IS the raw integer accumulator — the dequantization
    multiplies by 1.0, which is exact on every path."""
    conv = QuantizedConv1d(in_channels, 4, kernel_size, stride=stride)
    weight = rng.integers(-INT8_LEVELS, INT8_LEVELS + 1,
                          size=(4, in_channels, kernel_size)).astype(np.float64)
    weight[0] = INT8_LEVELS          # the extreme row: every product maximal
    weight[:, 0, 0] = INT8_LEVELS    # pin per-row absmax so scale == 1.0
    conv.load_weights(weight, None, act_scale=1.0)
    assert np.all(conv.weight_scale == 1.0)
    return conv


def _boundary_input(in_channels, length, rng):
    x = rng.integers(-INT8_LEVELS, INT8_LEVELS + 1,
                     size=(3, in_channels, length)).astype(np.float64)
    x[0] = INT8_LEVELS  # one sample of all-max levels hits the peak sum
    return x


class TestQuantConvBoundary:
    """QuantizedConv1d at and one above the exact-float32 product limit.

    ``reduction * 127 * 127 < 2**24`` holds for ``reduction == 1040`` (the
    widest exact-float32 reduction) and fails at 1041, where the int32
    fallback must engage.  With unit scales the forward output equals the
    raw accumulator, so integer equality against an int64 reference is a
    bit-for-bit check of both paths — the all-max input row sums to
    16 790 289 > 2**24 at 1041, which a float32 accumulator could not
    represent.
    """

    def test_conv_at_exact_f32_limit(self, rng):
        conv = _exact_int8_conv(130, 8, rng)  # reduction 1040: float32 GEMM
        x = _boundary_input(130, 12, rng)
        y = conv.forward(x).numpy()
        assert np.array_equal(y, _conv_integer_reference(conv, x))

    def test_conv_one_above_limit_falls_back_to_int32(self, rng):
        conv = _exact_int8_conv(347, 3, rng)  # reduction 1041: int32 matmul
        x = _boundary_input(347, 8, rng)
        y = conv.forward(x).numpy()
        reference = _conv_integer_reference(conv, x)
        assert int(reference.max()) > 2 ** 24  # the boundary is actually hit
        assert np.array_equal(y, reference)

    def test_strided_conv_at_limit_uses_im2col_path(self, rng):
        conv = _exact_int8_conv(130, 8, rng, stride=2)  # stride 2: gather path
        x = _boundary_input(130, 17, rng)
        y = conv.forward(x).numpy()
        assert np.array_equal(y, _conv_integer_reference(conv, x))

    def test_conv_matches_float_conv_within_quantization_error(self, rng):
        """Geometry check: padding/stride/dilation agree with the float conv
        up to the bounded quantization error."""
        float_conv = nn.Conv1d(3, 5, 5, stride=2, padding=3, dilation=2)
        quant = QuantizedConv1d.from_conv1d(float_conv, act_scale=0.05)
        x = rng.normal(size=(4, 3, 40))
        expected = float_conv(nn.Tensor(x)).numpy()
        actual = quant.forward(x).numpy()
        assert actual.shape == expected.shape
        assert np.abs(actual - expected).max() < 0.2

    def test_chunking_and_composition_independence(self, rng):
        conv = _exact_int8_conv(6, 7, rng)
        x = rng.normal(scale=40.0, size=(20, 6, 32))
        full = conv.forward(x).numpy()
        parts = np.concatenate([conv.forward(x[i:i + 3]).numpy()
                                for i in range(0, 20, 3)])
        shuffled = conv.forward(x[::-1]).numpy()[::-1]
        assert np.array_equal(full, parts)
        assert np.array_equal(full, shuffled)


class TestQuantLinearBoundary:
    """QuantizedLinear's float32 path at the limit vs the int32 fallback.

    Both paths share one float64 dequantization, so an exact-integer
    float64 matmul (products ≤ 127², partial sums ≪ 2**53) is a
    path-independent ground truth to compare bit-for-bit against.
    """

    @staticmethod
    def _reference(module, x):
        s = float(module.act_scale[0])
        q_x = np.clip(np.rint(np.asarray(x, dtype=np.float64) / s),
                      -INT8_LEVELS, INT8_LEVELS)
        acc = q_x @ module.weight_q.astype(np.float64).T
        return acc * (s * module.weight_scale)[None, :] + module.bias

    def _boundary_linear(self, in_features, rng):
        linear = QuantizedLinear(in_features, 4)
        weight = rng.normal(size=(4, in_features))
        weight[0] = np.abs(weight[0].max())  # one uniform row maximises sums
        linear.load_weights(weight, rng.normal(size=4), act_scale=0.05)
        x = 0.05 * rng.integers(-INT8_LEVELS, INT8_LEVELS + 1,
                                size=(5, in_features)).astype(np.float64)
        x[0] = 0.05 * INT8_LEVELS
        return linear, x

    def test_linear_at_exact_f32_limit(self, rng):
        linear, x = self._boundary_linear(1040, rng)
        assert np.array_equal(linear.forward(x).numpy(), self._reference(linear, x))

    def test_linear_one_above_limit_falls_back_to_int32(self, rng):
        linear, x = self._boundary_linear(1041, rng)
        assert np.array_equal(linear.forward(x).numpy(), self._reference(linear, x))


# --------------------------------------------------------------------------- #
# teacher quantization (quantize_teacher + Int8TeacherSelector)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def quantized_teacher(distill_world):
    quantized, gate = quantize_teacher(distill_world["teacher"],
                                       distill_world["transfer"][:160],
                                       min_agreement=None)
    return quantized, gate


class TestQuantizeTeacher:
    def test_structure_is_fully_quantized(self, quantized_teacher, distill_world):
        quantized, gate = quantized_teacher
        convs = named_conv_modules(quantized.encoder, conv_types=(QuantizedConv1d,))
        plan = conv_fold_plan(distill_world["teacher"].encoder)
        assert len(convs) == len(plan) == gate["n_quantized_convs"]
        assert all(conv.weight_q.dtype == np.int8 for _, conv in convs)
        assert isinstance(quantized.classifier, QuantizedLinear)
        # every ConvBlock/ResidualBlock norm folds; merged-output norms stay
        assert gate["n_folded_bns"] == sum(1 for _, _, bn in plan if bn is not None) > 0

    def test_gate_measures_agreement(self, quantized_teacher, distill_world):
        quantized, gate = quantized_teacher
        proba_float = distill_world["teacher"].predict_proba(distill_world["transfer"][:160])
        proba_int8 = quantized.predict_proba(distill_world["transfer"][:160])
        assert gate["agreement"] == selection_agreement(proba_float, proba_int8)
        assert gate["agreement"] >= 0.97
        assert gate["n_calibration"] == 160
        assert set(gate["act_scales"]) > {"classifier"}
        assert len(gate["act_scales_hash"]) == 16

    def test_gate_raises_below_min_agreement(self, distill_world):
        with pytest.raises(ValueError, match="agrees with the float teacher"):
            quantize_teacher(distill_world["teacher"],
                             distill_world["transfer"][:40], min_agreement=1.1)

    def test_rejects_convless_selectors(self, distill_world):
        mlp = make_selector("MLP", window=64, n_classes=4, seed=0)
        mlp.build()
        with pytest.raises(ValueError, match="no Conv1d"):
            quantize_teacher(mlp, distill_world["transfer"][:20], min_agreement=None)

    def test_teacher_is_bitwise_untouched(self, distill_world):
        teacher = distill_world["teacher"]
        before = teacher.predict_proba(distill_world["query"][:30])
        quantize_teacher(teacher, distill_world["transfer"][:60], min_agreement=None)
        assert np.array_equal(before, teacher.predict_proba(distill_world["query"][:30]))

    def test_predict_is_chunk_and_batch_size_independent(self, quantized_teacher, distill_world):
        quantized, _ = quantized_teacher
        windows = distill_world["query"][:90]
        full = quantized.predict_proba(windows)
        chunked = np.vstack([quantized.predict_proba(windows[i:i + 37])
                             for i in range(0, len(windows), 37)])
        small_batch = quantized.predict_proba(windows, batch_size=16)
        assert np.array_equal(full, chunked)
        assert np.array_equal(full, small_batch)

    def test_fit_raises(self, quantized_teacher):
        quantized, _ = quantized_teacher
        with pytest.raises(RuntimeError, match="inference-only"):
            quantized.fit(None)

    def test_store_round_trip_is_bitwise_with_provenance(self, quantized_teacher,
                                                         distill_world, tmp_path):
        quantized, gate = quantized_teacher
        store = SelectorStore(tmp_path / "store")
        store.save("m-int8", quantized)
        restored = store.load("m-int8")
        windows = distill_world["query"][:40]
        assert np.array_equal(quantized.predict_proba(windows),
                              restored.predict_proba(windows))
        assert restored.quant_provenance["act_scales_hash"] == gate["act_scales_hash"]
        manifest = store.info("m-int8").metadata["quantization"]
        assert manifest["agreement"] == gate["agreement"]
        assert manifest["act_scales_hash"] == gate["act_scales_hash"]
        assert "act_scales" not in manifest  # the full table lives in the npz


# --------------------------------------------------------------------------- #
# CLI: quantize-teacher + --selector-tier teacher-int8
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def cli_quantized(cli_distilled):
    from repro.system.cli import main

    store = cli_distilled["store"]
    data_dir = cli_distilled["data_dir"]
    perf = cli_distilled["root"] / "perf.npz"
    assert main(["train", str(data_dir), str(perf), "--selector", "ResNet",
                 "--store", str(store), "--name", "mq", "--window", "64",
                 "--stride", "32", "--epochs", "2"]) == 0
    assert main(["quantize-teacher", str(data_dir), "--store", str(store),
                 "--name", "mq", "--window", "64", "--stride", "32",
                 "--min-agreement", "0.0"]) == 0
    assert main(["distill", str(data_dir), "--store", str(store), "--name", "mq",
                 "--window", "64", "--stride", "32", "--epochs", "5",
                 "--min-agreement", "0.0"]) == 0
    return cli_distilled


class TestQuantizeTeacherCLI:
    def test_saves_int8_tier_with_provenance(self, cli_quantized):
        from repro.selectors.teacher_int8 import Int8TeacherSelector

        store = SelectorStore(cli_quantized["store"])
        restored = store.load("mq-int8")
        assert isinstance(restored, Int8TeacherSelector)
        assert restored.quant_provenance["base_type"] == "ResNet"
        assert "act_scales_hash" in store.info("mq-int8").metadata["quantization"]

    def test_batch_select_with_teacher_int8_tier(self, cli_quantized, capsys):
        from repro.system.cli import main

        assert main(["batch-select", str(cli_quantized["data_dir"]),
                     "--store", str(cli_quantized["store"]), "--name", "mq",
                     "--selector-tier", "teacher-int8", "--window", "64"]) == 0
        assert "series/s" in capsys.readouterr().out

    def test_missing_int8_tier_is_actionable(self, cli_quantized):
        from repro.system.cli import main

        with pytest.raises(SystemExit, match="quantize-teacher"):
            main(["batch-select", str(cli_quantized["data_dir"]),
                  "--store", str(cli_quantized["store"]), "--name", "m",
                  "--selector-tier", "teacher-int8", "--window", "64"])

    def test_cascade_escalates_to_int8_teacher(self, cli_quantized, capsys):
        from repro.system.cli import main

        series = sorted(cli_quantized["data_dir"].glob("*.csv"))[0]
        assert main(["stream", str(series), "--store", str(cli_quantized["store"]),
                     "--name", "mq", "--selector-tier", "teacher-int8",
                     "--cascade", "--cascade-threshold", "0.9",
                     "--window", "64", "--stride", "32"]) == 0
        assert "selected" in capsys.readouterr().out
