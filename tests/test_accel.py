"""Tests for the ``repro.accel`` kernel layer.

Every fast kernel is asserted against its pre-accel reference
implementation (:mod:`repro.accel.reference`): bitwise where achievable,
at a documented tolerance otherwise (the FFT/diagonal matrix profile sums
the same correlations in a different order, so float64 agreement is
atol ≤ 1e-8, not bitwise).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel import (
    matrix_profile,
    memory_budget_bytes,
    moving_mean_std,
    padded_matmul_t,
    resolve_dtype,
    sliding_dot_products,
    tile_kneighbors,
    use_precision,
    znorm_centroid_distances,
)
from repro.accel import config as accel_config
from repro.accel import precision as accel_precision
from repro.accel.reference import (
    kneighbors_dense,
    matrix_profile_matmul,
    pairwise_sq_euclidean_dense,
)
from repro.detectors.base import make_detector, window_scores_to_point_scores
from repro.detectors.matrix_profile import matrix_profile as detector_matrix_profile
from repro.ml.neighbors import kneighbors, pairwise_sq_euclidean
from repro.ml.scalers import zscore, zscore_rows
from repro.serving.workers import WorkerPool


# --------------------------------------------------------------------------- #
# precision policy
# --------------------------------------------------------------------------- #
class TestPrecisionPolicy:
    def test_default_is_float64(self):
        assert resolve_dtype(None) == np.dtype(np.float64)

    def test_context_override_and_nesting(self):
        with use_precision("float32"):
            assert resolve_dtype(None) == np.dtype(np.float32)
            with use_precision("float64"):
                assert resolve_dtype(None) == np.dtype(np.float64)
            assert resolve_dtype(None) == np.dtype(np.float32)
        assert resolve_dtype(None) == np.dtype(np.float64)

    def test_per_call_override_beats_context(self):
        with use_precision("float32"):
            assert resolve_dtype("float64") == np.dtype(np.float64)

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PRECISION", "float32")
        assert resolve_dtype(None) == np.dtype(np.float32)

    def test_process_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PRECISION", "float32")
        accel_precision.set_default_precision("float64")
        try:
            assert resolve_dtype(None) == np.dtype(np.float64)
        finally:
            accel_precision.set_default_precision(None)

    def test_rejects_unknown_precision(self):
        with pytest.raises(ValueError):
            use_precision("float16")
        with pytest.raises(ValueError):
            resolve_dtype("int32")

    def test_nn_float32_fast_path(self):
        from repro import nn

        with use_precision("float32"):
            layer = nn.Linear(8, 4)
            assert layer.weight.data.dtype == np.float32
            x = nn.Tensor(np.random.default_rng(0).normal(size=(5, 8)))
            assert x.data.dtype == np.float32
            out = layer(x)
            assert out.data.dtype == np.float32
            out.sum().backward()
            assert layer.weight.grad is not None
            assert layer.weight.grad.dtype == np.float32

    def test_detectors_run_under_float32(self):
        rng = np.random.default_rng(1)
        series = np.cumsum(rng.normal(size=300))
        with use_precision("float32"):
            for name in ("MP", "LOF", "OCSVM", "NORMA"):
                scores = make_detector(name, window=16).detect(series)
                assert scores.shape == series.shape
                assert np.isfinite(scores).all()


class TestRuntimeConfig:
    def test_memory_budget_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET_MB", "1")
        assert memory_budget_bytes() == 1024 * 1024
        assert memory_budget_bytes(2) == 2 * 1024 * 1024

    def test_memory_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            memory_budget_bytes(0)

    def test_worker_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
        monkeypatch.setenv("REPRO_WORKER_MODE", "process")
        assert accel_config.default_max_workers() == 3
        assert accel_config.default_max_workers(1) == 1
        assert accel_config.default_worker_mode() == "process"
        assert accel_config.default_worker_mode("thread") == "thread"
        with pytest.raises(ValueError):
            accel_config.default_worker_mode("fiber")


# --------------------------------------------------------------------------- #
# matrix profile
# --------------------------------------------------------------------------- #
class TestMatrixProfileEquivalence:
    def test_matches_blocked_matmul_reference(self):
        """Property test: random lengths/windows/blocks, float64, atol 1e-8."""
        rng = np.random.default_rng(7)
        for trial in range(25):
            n = int(rng.integers(12, 900))
            window = int(rng.integers(2, max(3, n // 2 + 1)))
            block = int(rng.integers(1, 300))
            kind = trial % 3
            if kind == 0:
                series = np.cumsum(rng.normal(size=n))
            elif kind == 1:
                series = np.sin(np.linspace(0, 15, n)) + 0.1 * rng.normal(size=n)
            else:  # large offset/scale exercises the global normalisation
                series = rng.normal(size=n) * 1e3 + 5e4
            ref = matrix_profile_matmul(series, window)
            fast = matrix_profile(series, window, block=block)
            assert fast.shape == ref.shape
            np.testing.assert_allclose(fast, ref, atol=1e-8,
                                       err_msg=f"n={n} w={window} block={block}")

    def test_float32_fast_path_close(self):
        rng = np.random.default_rng(3)
        series = np.cumsum(rng.normal(size=2000))
        ref = matrix_profile_matmul(series, 64)
        fast = matrix_profile(series, 64, dtype="float32")
        np.testing.assert_allclose(fast, ref, atol=1e-3)

    def test_detector_wrapper_matches_reference(self):
        rng = np.random.default_rng(4)
        series = np.cumsum(rng.normal(size=500))
        np.testing.assert_allclose(detector_matrix_profile(series, 25),
                                   matrix_profile_matmul(series, 25), atol=1e-8)


class TestMatrixProfileEdgeCases:
    def test_series_shorter_than_window(self):
        assert detector_matrix_profile(np.arange(5.0), 10).shape == (0,)

    def test_series_equal_to_window_all_excluded(self):
        profile = detector_matrix_profile(np.arange(10.0), 10)
        assert profile.shape == (1,)
        assert np.array_equal(profile, np.zeros(1))

    def test_series_under_two_windows_all_excluded(self):
        # 15 points, window 10 → 6 subsequences, every pair inside the
        # exclusion zone: zeros, no inf/NaN through sqrt/min.
        profile = detector_matrix_profile(np.arange(15.0), 10)
        assert profile.shape == (6,)
        assert np.array_equal(profile, np.zeros(6))

    def test_constant_series_profile_finite(self):
        for impl in (detector_matrix_profile, matrix_profile_matmul):
            profile = impl(np.full(100, 3.25), 10)
            assert np.isfinite(profile).all()
        np.testing.assert_allclose(detector_matrix_profile(np.full(100, 3.25), 10),
                                   matrix_profile_matmul(np.full(100, 3.25), 10),
                                   atol=1e-8)

    def test_detector_short_series_returns_zero_scores(self):
        detector = make_detector("MP", window=32)
        for n in (1, 2, 3):
            scores = detector.detect(np.arange(float(n)))
            assert scores.shape == (n,)
            assert np.isfinite(scores).all()

    def test_point_scores_with_zero_windows(self):
        out = window_scores_to_point_scores(np.zeros(0), 7, 10)
        assert np.array_equal(out, np.zeros(7))


class TestRollingStatsAndMass:
    def test_moving_mean_std_matches_windowed(self):
        rng = np.random.default_rng(5)
        series = rng.normal(size=300) * 3 + 1
        subs = np.lib.stride_tricks.sliding_window_view(series, 16)
        mu, sig = moving_mean_std(series, 16)
        np.testing.assert_allclose(mu, subs.mean(axis=1), atol=1e-10)
        np.testing.assert_allclose(sig, subs.std(axis=1), atol=1e-10)

    def test_moving_mean_std_short_series(self):
        mu, sig = moving_mean_std(np.arange(3.0), 5)
        assert mu.shape == (0,) and sig.shape == (0,)

    def test_sliding_dot_products_matches_naive(self):
        rng = np.random.default_rng(6)
        series = rng.normal(size=150)
        queries = rng.normal(size=(3, 12))
        ref = np.array([[q @ series[t:t + 12] for t in range(139)] for q in queries])
        np.testing.assert_allclose(sliding_dot_products(queries, series), ref, atol=1e-10)
        np.testing.assert_allclose(sliding_dot_products(queries[0], series), ref[0],
                                   atol=1e-10)

    def test_sliding_dot_products_query_longer_than_series(self):
        assert sliding_dot_products(np.ones(10), np.ones(4)).shape == (0,)

    def test_centroid_distances_match_explicit_zscore(self):
        rng = np.random.default_rng(8)
        series = np.cumsum(rng.normal(size=400))
        series[100:110] = series[100]  # a constant stretch → clamped windows
        window, k = 20, 3
        centroids = rng.normal(size=(k, window))
        subs = np.lib.stride_tricks.sliding_window_view(series, window)
        z = np.apply_along_axis(zscore, 1, subs)
        ref = np.sqrt(((z[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2))
        got = znorm_centroid_distances(series, window, centroids)
        np.testing.assert_allclose(got, ref, atol=1e-7)

    def test_centroid_distances_survive_large_offset(self):
        """Regression: un-normalised rolling stats collapsed on offset series."""
        rng = np.random.default_rng(9)
        base = rng.normal(size=500)
        window, k = 32, 2
        centroids = rng.normal(size=(k, window))
        series = base + 1e6  # large absolute level, e.g. traffic counters
        subs = np.lib.stride_tricks.sliding_window_view(series, window)
        z = np.apply_along_axis(zscore, 1, subs)
        ref = np.sqrt(((z[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2))
        got = znorm_centroid_distances(series, window, centroids)
        np.testing.assert_allclose(got, ref, atol=1e-5)


# --------------------------------------------------------------------------- #
# tiled distances
# --------------------------------------------------------------------------- #
class TestPaddedMatmul:
    def test_tile_independent_bits(self):
        rng = np.random.default_rng(9)
        for _ in range(10):
            m = int(rng.integers(1, 400))
            n = int(rng.integers(1, 300))
            d = int(rng.integers(1, 80))
            a = rng.normal(size=(m, d))
            b = rng.normal(size=(n, d))
            full = padded_matmul_t(a, b)
            tr = int(rng.integers(1, m + 10))
            tc = int(rng.integers(1, n + 10))
            tiled = np.empty((m, n))
            for i in range(0, m, tr):
                for j in range(0, n, tc):
                    tiled[i:i + tr, j:j + tc] = padded_matmul_t(a[i:i + tr], b[j:j + tc])
            assert np.array_equal(full, tiled), f"m={m} n={n} d={d} tr={tr} tc={tc}"

    def test_matches_plain_matmul_values(self):
        rng = np.random.default_rng(10)
        a, b = rng.normal(size=(37, 5)), rng.normal(size=(23, 5))
        np.testing.assert_allclose(padded_matmul_t(a, b), a @ b.T, rtol=1e-13)


class TestTileKneighbors:
    def _random_case(self, rng, trial):
        m = int(rng.integers(1, 260))
        d = int(rng.integers(1, 40))
        self_join = trial % 2 == 0
        n = m if self_join else int(rng.integers(1, 260))
        x = rng.normal(size=(m, d))
        if trial % 4 == 0 and m > 3:  # duplicate rows → exact distance ties
            x[m // 2] = x[0]
            x[-1] = x[0]
        ref = x if self_join else rng.normal(size=(n, d))
        k = int(rng.integers(1, 2 * n + 1))  # includes k > n
        exclude = bool(rng.integers(0, 2)) and n == m
        return x, ref, k, exclude, self_join

    def test_bitwise_independent_of_tile_sizes(self):
        """Any tiling — including the single full-matrix tile — same bits."""
        rng = np.random.default_rng(11)
        for trial in range(30):
            x, ref, k, exclude, self_join = self._random_case(rng, trial)
            m, n = x.shape[0], ref.shape[0]
            full = tile_kneighbors(x, ref, k, exclude_self=exclude,
                                   tile_rows=max(m, n), tile_cols=max(m, n))
            t1 = int(rng.integers(1, m + 16))
            t2 = int(rng.integers(1, n + 16))
            tiled = tile_kneighbors(x, ref, k, exclude_self=exclude,
                                    tile_rows=t1, tile_cols=t2)
            assert np.array_equal(full[0], tiled[0]), (m, n, k, exclude, t1, t2)
            assert np.array_equal(full[1], tiled[1]), (m, n, k, exclude, t1, t2)

    def test_matches_dense_reference(self):
        rng = np.random.default_rng(12)
        for trial in range(30):
            x, ref, k, exclude, self_join = self._random_case(rng, trial)
            dd, di = kneighbors_dense(x, ref, k, exclude_self=exclude)
            td, ti = tile_kneighbors(x, ref, k, exclude_self=exclude,
                                     tile_rows=17, tile_cols=23)
            assert dd.shape == td.shape and di.shape == ti.shape
            # identical neighbour-distance multisets (indices may differ on
            # exact ties: tiled resolves them to the lowest index)
            mask = np.isfinite(dd)
            assert np.array_equal(mask, np.isfinite(td))
            np.testing.assert_allclose(td[mask], dd[mask], atol=1e-8)

    def test_duplicate_ties_take_lowest_index(self):
        x = np.zeros((6, 3))
        x[3:] = 1.0
        dist, idx = tile_kneighbors(x, x, 2, exclude_self=True, tile_rows=2)
        # Row 0's nearest duplicates are rows 1 and 2, in index order.
        assert list(idx[0]) == [1, 2]
        assert list(idx[4]) == [3, 5]
        np.testing.assert_allclose(dist[0], 0.0)

    def test_k_larger_than_reference(self):
        x = np.random.default_rng(13).normal(size=(4, 2))
        dist, idx = tile_kneighbors(x, x, 10, exclude_self=True, tile_rows=2)
        assert dist.shape == (4, 3)  # clamped to n - 1
        dist2, idx2 = tile_kneighbors(x, x, 10, exclude_self=False, tile_rows=3)
        assert dist2.shape == (4, 4)

    def test_single_row_exclude_self(self):
        x = np.ones((1, 2))
        dist, idx = tile_kneighbors(x, x, 1, exclude_self=True)
        ref_d, ref_i = kneighbors_dense(x, x, 1, exclude_self=True)
        assert np.isinf(dist[0, 0]) and np.isinf(ref_d[0, 0])
        assert idx[0, 0] == ref_i[0, 0] == 0


class TestPairwiseSelfJoin:
    def test_upper_triangle_bitwise_and_symmetric(self):
        rng = np.random.default_rng(14)
        for _ in range(8):
            n = int(rng.integers(1, 700))
            d = int(rng.integers(1, 50))
            a = rng.normal(size=(n, d))
            old = pairwise_sq_euclidean_dense(a, a)
            new = pairwise_sq_euclidean(a, a)
            iu = np.triu_indices(n)
            # Diagonal + upper triangle: bitwise identical to the historical
            # result.  The mirrored lower triangle is exactly the upper one,
            # so it can differ from the historical lower by the last ulp
            # wherever BLAS's GEMM output was asymmetric.
            assert np.array_equal(new[iu], old[iu])
            assert np.array_equal(new, new.T)
            np.testing.assert_allclose(new, old, rtol=1e-12, atol=1e-12)

    def test_b_none_is_self_join(self):
        a = np.random.default_rng(15).normal(size=(40, 6))
        assert np.array_equal(pairwise_sq_euclidean(a), pairwise_sq_euclidean(a, a))

    def test_distinct_operands_unchanged(self):
        rng = np.random.default_rng(16)
        a, b = rng.normal(size=(31, 7)), rng.normal(size=(45, 7))
        assert np.array_equal(pairwise_sq_euclidean(a, b),
                              pairwise_sq_euclidean_dense(a, b))

    def test_float32_dtype(self):
        a = np.random.default_rng(17).normal(size=(10, 3))
        assert pairwise_sq_euclidean(a, dtype="float32").dtype == np.float32


class TestKneighborsRouting:
    def test_small_inputs_keep_historical_bits(self):
        rng = np.random.default_rng(18)
        x = rng.normal(size=(80, 4))
        q = rng.normal(size=(15, 4))
        dist, idx = kneighbors(q, x, 5)
        ref_d, ref_i = kneighbors_dense(q, x, 5)
        assert np.array_equal(dist, ref_d) and np.array_equal(idx, ref_i)

    def test_over_budget_switches_to_tiles(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET_MB", "0.01")  # ~10 KB
        rng = np.random.default_rng(19)
        x = rng.normal(size=(300, 5))
        dist, idx = kneighbors(x, x, 4, exclude_self=True)
        ref_d, ref_i = kneighbors_dense(x, x, 4, exclude_self=True)
        np.testing.assert_allclose(dist, ref_d, atol=1e-8)
        assert (idx != np.arange(300)[:, None]).all()

    def test_lof_equivalent_across_budgets(self, monkeypatch):
        from repro.detectors.lof import local_outlier_factor

        rng = np.random.default_rng(20)
        x = rng.normal(size=(400, 8))
        dense = local_outlier_factor(x, n_neighbors=10)
        monkeypatch.setenv("REPRO_MEMORY_BUDGET_MB", "0.05")
        tiled = local_outlier_factor(x, n_neighbors=10)
        np.testing.assert_allclose(dense, tiled, rtol=1e-9)


# --------------------------------------------------------------------------- #
# vectorised row z-scoring
# --------------------------------------------------------------------------- #
class TestZscoreRows:
    def test_bitwise_matches_apply_along_axis(self):
        rng = np.random.default_rng(21)
        m = rng.normal(size=(200, 24)) * 5 + 3
        m[17] = 2.0  # constant row → zeros
        ref = np.apply_along_axis(zscore, 1, m)
        assert np.array_equal(zscore_rows(m), ref)

    def test_float32_output(self):
        m = np.random.default_rng(22).normal(size=(5, 8))
        assert zscore_rows(m, dtype="float32").dtype == np.float32


# --------------------------------------------------------------------------- #
# worker pool process mode
# --------------------------------------------------------------------------- #
def _square(x):
    return x * x


class TestProcessWorkerPool:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            WorkerPool(2, mode="fiber")

    def test_process_map_matches_sequential(self):
        items = list(range(20))
        expected = [_square(i) for i in items]
        assert WorkerPool(4, mode="process").map(_square, items) == expected

    def test_process_map_preserves_order_with_arrays(self):
        rng = np.random.default_rng(23)
        series = [rng.normal(size=50) for _ in range(6)]
        pool = WorkerPool(3, mode="process")
        results = pool.map(lambda s: float(s.sum()), series)
        assert results == [float(s.sum()) for s in series]

    def test_closures_cross_fork_without_pickling(self):
        big = np.arange(10_000, dtype=np.float64)
        pool = WorkerPool(2, mode="process")
        # a lambda closing over a local array is not picklable by
        # multiprocessing's default; fork inheritance makes it work
        results = pool.map(lambda i: float(big[i]), [1, 5, 9])
        assert results == [1.0, 5.0, 9.0]

    def test_sequential_below_two_workers(self):
        assert WorkerPool(0, mode="process").map(_square, [3]) == [9]
        assert WorkerPool(1, mode="process").map(_square, [3, 4]) == [9, 16]

    def test_oracle_process_mode_matches_sequential(self):
        from repro.data.generators import generate_series
        from repro.eval import Oracle

        records = [generate_series("ECG", i, 200, seed=i) for i in range(3)]
        model_set = {name: make_detector(name, window=16)
                     for name in ("HBOS", "MP", "LOF")}
        seq = Oracle(model_set).performance_matrix(records)
        par = Oracle(model_set, max_workers=2,
                     worker_mode="process").performance_matrix(records)
        assert np.array_equal(seq, par)

    def test_repr_mentions_mode(self):
        assert "process" in repr(WorkerPool(4, mode="process"))
        assert "sequential" in repr(WorkerPool(0))
