"""Tests for the 12-model TSAD detector zoo."""

import numpy as np
import pytest

from repro.detectors import (
    AnomalyDetector,
    IsolationForest,
    detector_names,
    hbos_scores,
    local_outlier_factor,
    make_default_model_set,
    make_detector,
    matrix_profile,
    normalize_scores,
    register_detector,
    sliding_windows,
    window_scores_to_point_scores,
)
from repro.eval import auc_roc

EXPECTED_DETECTORS = [
    "IForest", "IForest1", "LOF", "HBOS", "MP", "NORMA",
    "PCA", "AE", "LSTM-AD", "POLY", "CNN", "OCSVM",
]


@pytest.fixture(scope="module")
def spike_series():
    """Periodic series with an obvious additive spike anomaly."""
    rng = np.random.default_rng(0)
    n = 800
    series = np.sin(2 * np.pi * np.arange(n) / 40) + 0.05 * rng.normal(size=n)
    labels = np.zeros(n, dtype=int)
    series[400:415] += 4.0
    labels[400:415] = 1
    return series, labels


class TestWindowHelpers:
    def test_sliding_windows_shape(self):
        windows = sliding_windows(np.arange(10, dtype=float), window=4)
        assert windows.shape == (7, 4)
        assert np.allclose(windows[0], [0, 1, 2, 3])

    def test_sliding_windows_stride(self):
        windows = sliding_windows(np.arange(10, dtype=float), window=4, stride=3)
        assert windows.shape == (3, 4)

    def test_sliding_windows_too_short_raises(self):
        with pytest.raises(ValueError):
            sliding_windows(np.arange(3, dtype=float), window=5)

    def test_sliding_windows_bad_window(self):
        with pytest.raises(ValueError):
            sliding_windows(np.arange(10, dtype=float), window=0)

    def test_window_scores_to_point_scores_constant(self):
        scores = window_scores_to_point_scores(np.ones(7), series_length=10, window=4)
        assert scores.shape == (10,)
        assert np.allclose(scores, 1.0)

    def test_window_scores_localised(self):
        window_scores = np.zeros(7)
        window_scores[3] = 1.0
        scores = window_scores_to_point_scores(window_scores, series_length=10, window=4)
        assert scores[:3].max() == 0.0
        assert scores[3:7].max() > 0.0

    @staticmethod
    def _point_scores_loop(window_scores, series_length, window, stride=1):
        """The historical per-window Python loop (the regression reference)."""
        scores = np.zeros(series_length, dtype=np.float64)
        counts = np.zeros(series_length, dtype=np.float64)
        for i, s in enumerate(np.asarray(window_scores, dtype=np.float64)):
            start = i * stride
            scores[start:start + window] += s
            counts[start:start + window] += 1.0
        counts[counts == 0] = 1.0
        return scores / counts

    def test_vectorised_point_scores_bitwise_match_loop(self):
        """Regression: the np.add.at implementation must reproduce the old
        per-window loop bit for bit, for any window/stride/length combo."""
        gen = np.random.default_rng(42)
        for _ in range(40):
            window = int(gen.integers(1, 40))
            stride = int(gen.integers(1, 8))
            n_windows = int(gen.integers(0, 500))
            length = ((n_windows - 1) * stride + window + int(gen.integers(0, 20))
                      if n_windows else int(gen.integers(0, 30)))
            window_scores = gen.normal(size=n_windows) * (10.0 ** float(gen.integers(-6, 6)))
            got = window_scores_to_point_scores(window_scores, length, window, stride)
            want = self._point_scores_loop(window_scores, length, window, stride)
            assert np.array_equal(got, want), (window, stride, n_windows, length)

    def test_point_scores_clamp_windows_past_series_end(self):
        """Windows extending past series_length are clamped, like the old
        loop's slice assignment (not an IndexError)."""
        gen = np.random.default_rng(44)
        for length, window, stride, n_windows in ((6, 4, 2, 5), (10, 8, 1, 9), (3, 4, 1, 2)):
            window_scores = gen.normal(size=n_windows)
            got = window_scores_to_point_scores(window_scores, length, window, stride)
            want = self._point_scores_loop(window_scores, length, window, stride)
            assert got.shape == (length,)
            assert np.array_equal(got, want)

    def test_vectorised_point_scores_bitwise_match_loop_across_blocks(self):
        """The blocked scatter-add must stay bitwise identical across the
        internal block boundary."""
        from repro.detectors.base import _POINT_SCORE_BLOCK

        gen = np.random.default_rng(43)
        n_windows = _POINT_SCORE_BLOCK * 2 + 17
        window_scores = gen.normal(size=n_windows)
        got = window_scores_to_point_scores(window_scores, n_windows + 31, 32)
        want = self._point_scores_loop(window_scores, n_windows + 31, 32)
        assert np.array_equal(got, want)

    def test_normalize_scores_range(self):
        scores = normalize_scores(np.array([1.0, 5.0, 3.0]))
        assert scores.min() == 0.0 and scores.max() == 1.0

    def test_normalize_constant_scores(self):
        assert np.allclose(normalize_scores(np.full(5, 2.0)), 0.0)


class TestRegistry:
    def test_all_twelve_detectors_registered(self):
        # Extension detectors may add more names; the paper's 12 must be there
        # and in their reporting order.
        names = [n for n in detector_names() if n in EXPECTED_DETECTORS]
        assert names == EXPECTED_DETECTORS

    def test_make_detector_unknown_raises(self):
        with pytest.raises(KeyError):
            make_detector("NotADetector")

    def test_make_default_model_set(self):
        model_set = make_default_model_set(window=16)
        assert list(model_set) == EXPECTED_DETECTORS
        assert all(isinstance(d, AnomalyDetector) for d in model_set.values())

    def test_register_detector_decorator(self):
        @register_detector("TestOnlyDetector")
        class _Dummy(AnomalyDetector):
            def score(self, series):
                return np.zeros(len(series))

        try:
            assert "TestOnlyDetector" in detector_names()
            det = make_detector("TestOnlyDetector")
            assert det.detect(np.arange(10.0)).shape == (10,)
        finally:
            from repro.detectors.base import _DETECTOR_REGISTRY
            _DETECTOR_REGISTRY.pop("TestOnlyDetector", None)


class TestDetectorContracts:
    @pytest.mark.parametrize("name", EXPECTED_DETECTORS)
    def test_scores_aligned_and_normalised(self, name, spike_series):
        series, _ = spike_series
        detector = make_detector(name, window=24)
        scores = detector.detect(series)
        assert scores.shape == series.shape
        assert np.all(np.isfinite(scores))
        assert scores.min() >= 0.0 and scores.max() <= 1.0

    @pytest.mark.parametrize("name", ["IForest", "LOF", "HBOS", "MP", "PCA", "POLY", "IForest1"])
    def test_spike_is_detected(self, name, spike_series):
        """Fast detectors should clearly rank the spike region above normal data."""
        series, labels = spike_series
        detector = make_detector(name, window=24)
        scores = detector.detect(series)
        assert auc_roc(labels, scores) > 0.7

    def test_detect_empty_series(self):
        detector = make_detector("HBOS", window=8)
        assert detector.detect(np.array([])).shape == (0,)

    def test_effective_window_clipped(self):
        detector = make_detector("PCA", window=500)
        assert detector.effective_window(np.zeros(100)) == 50

    def test_repr_mentions_window(self):
        assert "window=32" in repr(make_detector("IForest", window=32))


class TestIsolationForest:
    def test_outlier_scores_higher(self):
        rng = np.random.default_rng(1)
        inliers = rng.normal(0, 1, size=(200, 3))
        outliers = rng.normal(8, 1, size=(10, 3))
        forest = IsolationForest(n_estimators=30, seed=0).fit(inliers)
        assert forest.score_samples(outliers).mean() > forest.score_samples(inliers).mean()

    def test_scores_between_zero_and_one(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(100, 2))
        scores = IsolationForest(seed=0).fit(x).score_samples(x)
        assert (scores > 0).all() and (scores < 1).all()

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            IsolationForest().score_samples(np.zeros((2, 2)))

    def test_deterministic_given_seed(self):
        x = np.random.default_rng(3).normal(size=(50, 2))
        s1 = IsolationForest(seed=7).fit(x).score_samples(x)
        s2 = IsolationForest(seed=7).fit(x).score_samples(x)
        assert np.allclose(s1, s2)


class TestLOFandHBOS:
    def test_lof_isolated_point_scores_high(self):
        rng = np.random.default_rng(4)
        x = np.vstack([rng.normal(0, 0.5, size=(100, 2)), [[10.0, 10.0]]])
        lof = local_outlier_factor(x, n_neighbors=10)
        assert lof[-1] > np.percentile(lof[:-1], 95)

    def test_lof_uniform_data_scores_near_one(self):
        x = np.random.default_rng(5).uniform(size=(200, 2))
        lof = local_outlier_factor(x, n_neighbors=15)
        assert 0.8 < np.median(lof) < 1.3

    def test_hbos_rare_bin_scores_high(self):
        x = np.concatenate([np.zeros(95), np.full(5, 10.0)])[:, None]
        scores = hbos_scores(x, n_bins=10)
        assert scores[-1] > scores[0]

    def test_hbos_multidimensional(self):
        x = np.random.default_rng(6).normal(size=(50, 3))
        assert hbos_scores(x).shape == (50,)


class TestMatrixProfile:
    def test_discord_has_max_profile_value(self):
        rng = np.random.default_rng(7)
        series = np.tile(np.sin(np.linspace(0, 2 * np.pi, 25)), 20) + 0.01 * rng.normal(size=500)
        series[250:275] = rng.normal(0, 1, size=25)  # inserted discord
        profile = matrix_profile(series, window=25)
        peak = np.argmax(profile)
        assert 225 <= peak <= 300

    def test_profile_length(self):
        series = np.random.default_rng(8).normal(size=200)
        assert matrix_profile(series, window=20).shape == (181,)

    def test_constant_series_profile_is_finite(self):
        profile = matrix_profile(np.zeros(100), window=10)
        assert np.all(np.isfinite(profile))


class TestNeuralDetectors:
    @pytest.mark.parametrize("name", ["AE", "LSTM-AD", "CNN"])
    def test_neural_detectors_run_with_small_budget(self, name, spike_series):
        series, labels = spike_series
        detector = make_detector(name, window=24, epochs=2)
        scores = detector.detect(series)
        assert scores.shape == series.shape
        # Even briefly trained models should do better than random guessing.
        assert auc_roc(labels, scores) > 0.5

    def test_ae_deterministic_given_seed(self, spike_series):
        series, _ = spike_series
        s1 = make_detector("AE", window=16, epochs=1, seed=3).detect(series)
        s2 = make_detector("AE", window=16, epochs=1, seed=3).detect(series)
        assert np.allclose(s1, s2)
