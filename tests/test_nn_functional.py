"""Tests for repro.nn.functional (conv1d, pooling, softmax, dropout...)."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor


def numeric_gradient(fn, value, eps=1e-6):
    value = np.asarray(value, dtype=np.float64)
    grad = np.zeros_like(value)
    it = np.nditer(value, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        plus = value.copy(); plus[idx] += eps
        minus = value.copy(); minus[idx] -= eps
        grad[idx] = (fn(plus) - fn(minus)) / (2 * eps)
        it.iternext()
    return grad


class TestConv1d:
    def test_output_shape_no_padding(self):
        x = Tensor(np.zeros((2, 3, 10)))
        w = Tensor(np.zeros((4, 3, 3)))
        assert F.conv1d(x, w).shape == (2, 4, 8)

    def test_output_shape_with_padding_and_stride(self):
        x = Tensor(np.zeros((1, 1, 16)))
        w = Tensor(np.zeros((2, 1, 5)))
        assert F.conv1d(x, w, padding=2, stride=2).shape == (1, 2, 8)

    def test_matches_manual_convolution(self):
        x_val = np.arange(6, dtype=float).reshape(1, 1, 6)
        w_val = np.array([[[1.0, 0.0, -1.0]]])
        out = F.conv1d(Tensor(x_val), Tensor(w_val)).numpy()
        expected = np.array([x_val[0, 0, i] - x_val[0, 0, i + 2] for i in range(4)])
        assert np.allclose(out[0, 0], expected)

    def test_bias_added_per_channel(self):
        x = Tensor(np.zeros((1, 1, 5)))
        w = Tensor(np.zeros((2, 1, 3)))
        b = Tensor(np.array([1.0, -2.0]))
        out = F.conv1d(x, w, b).numpy()
        assert np.allclose(out[0, 0], 1.0)
        assert np.allclose(out[0, 1], -2.0)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="channel mismatch"):
            F.conv1d(Tensor(np.zeros((1, 2, 8))), Tensor(np.zeros((3, 4, 3))))

    def test_too_small_input_raises(self):
        with pytest.raises(ValueError):
            F.conv1d(Tensor(np.zeros((1, 1, 2))), Tensor(np.zeros((1, 1, 5))))

    def test_gradients_match_numeric(self):
        rng = np.random.default_rng(0)
        x_val = rng.normal(size=(2, 2, 8))
        w_val = rng.normal(size=(3, 2, 3))
        b_val = rng.normal(size=3)

        x = Tensor(x_val, requires_grad=True)
        w = Tensor(w_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        out = F.conv1d(x, w, b, padding=1)
        (out * out).sum().backward()

        def loss_x(v):
            o = F.conv1d(Tensor(v), Tensor(w_val), Tensor(b_val), padding=1)
            return float((o.numpy() ** 2).sum())

        def loss_w(v):
            o = F.conv1d(Tensor(x_val), Tensor(v), Tensor(b_val), padding=1)
            return float((o.numpy() ** 2).sum())

        assert np.allclose(x.grad, numeric_gradient(loss_x, x_val), atol=1e-4)
        assert np.allclose(w.grad, numeric_gradient(loss_w, w_val), atol=1e-4)

    def test_dilation(self):
        x = Tensor(np.zeros((1, 1, 10)))
        w = Tensor(np.zeros((1, 1, 3)))
        assert F.conv1d(x, w, dilation=2).shape == (1, 1, 6)


class TestPooling:
    def test_max_pool_shape_and_values(self):
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 5.0]]]))
        out = F.max_pool1d(x, 2)
        assert out.shape == (1, 1, 2)
        assert np.allclose(out.numpy(), [[[3.0, 5.0]]])

    def test_max_pool_gradient_routes_to_max(self):
        x = Tensor(np.array([[[1.0, 3.0, 2.0, 5.0]]]), requires_grad=True)
        F.max_pool1d(x, 2).sum().backward()
        assert np.allclose(x.grad, [[[0.0, 1.0, 0.0, 1.0]]])

    def test_global_avg_pool(self):
        x = Tensor(np.ones((2, 3, 4)) * 2.0)
        assert np.allclose(F.global_avg_pool1d(x).numpy(), 2.0)

    def test_global_max_pool(self):
        value = np.random.default_rng(1).normal(size=(2, 3, 7))
        assert np.allclose(F.global_max_pool1d(Tensor(value)).numpy(), value.max(axis=2))


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        value = np.random.default_rng(2).normal(size=(5, 4))
        out = F.softmax(Tensor(value), axis=-1).numpy()
        assert np.allclose(out.sum(axis=1), 1.0)
        assert (out > 0).all()

    def test_softmax_invariant_to_shift(self):
        value = np.random.default_rng(3).normal(size=(2, 6))
        a = F.softmax(Tensor(value)).numpy()
        b = F.softmax(Tensor(value + 100.0)).numpy()
        assert np.allclose(a, b)

    def test_log_softmax_matches_log_of_softmax(self):
        value = np.random.default_rng(4).normal(size=(3, 5))
        assert np.allclose(
            F.log_softmax(Tensor(value)).numpy(),
            np.log(F.softmax(Tensor(value)).numpy()),
        )

    def test_softmax_gradient_sums_to_zero(self):
        t = Tensor(np.random.default_rng(5).normal(size=(1, 4)), requires_grad=True)
        F.softmax(t)[0, 0].backward()
        assert abs(t.grad.sum()) < 1e-8


class TestDropoutAndLinear:
    def test_dropout_disabled_in_eval(self):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, training=False)
        assert np.allclose(out.numpy(), 1.0)

    def test_dropout_scales_kept_units(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((1000,)))
        out = F.dropout(x, 0.5, training=True, rng=rng).numpy()
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)
        assert 0.3 < (out > 0).mean() < 0.7

    def test_dropout_default_rng_is_seeded_and_deterministic(self):
        """Regression: the no-rng fallback must use the thread-local seeded
        stream (repro.nn.init.get_rng), not a fresh unseeded generator."""
        from repro.nn.init import set_seed

        x = Tensor(np.ones((64, 8)))
        set_seed(123)
        first = F.dropout(x, 0.5, training=True).numpy()
        set_seed(123)
        second = F.dropout(x, 0.5, training=True).numpy()
        assert np.array_equal(first, second)

        set_seed(124)
        other = F.dropout(x, 0.5, training=True).numpy()
        assert not np.array_equal(first, other)
        set_seed(0)  # restore the thread default for later tests

    def test_linear_2d(self):
        x = Tensor(np.ones((2, 3)))
        w = Tensor(np.ones((4, 3)))
        b = Tensor(np.arange(4, dtype=float))
        out = F.linear(x, w, b).numpy()
        assert out.shape == (2, 4)
        assert np.allclose(out[0], 3.0 + np.arange(4))

    def test_linear_3d(self):
        x = Tensor(np.ones((2, 5, 3)))
        w = Tensor(np.ones((4, 3)))
        assert F.linear(x, w).shape == (2, 5, 4)

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        assert np.allclose(out, np.eye(3)[[0, 2, 1]])

    def test_cosine_similarity_diagonal_is_one(self):
        value = np.random.default_rng(6).normal(size=(4, 8))
        sim = F.cosine_similarity_matrix(Tensor(value), Tensor(value)).numpy()
        assert np.allclose(np.diag(sim), 1.0, atol=1e-6)
        assert (sim <= 1.0 + 1e-9).all()
