"""Tests for loading/saving user-provided series (repro.data.loaders)."""

import numpy as np
import pytest

from repro.data import generate_series
from repro.data.loaders import (
    labels_to_spans,
    load_series_directory,
    load_series_file,
    save_series_file,
)


class TestLabelsToSpans:
    def test_empty_labels(self):
        assert labels_to_spans(np.zeros(10)) == []

    def test_single_span(self):
        labels = np.zeros(10, dtype=int)
        labels[3:6] = 1
        spans = labels_to_spans(labels)
        assert len(spans) == 1
        assert spans[0].start == 3 and spans[0].length == 3

    def test_span_reaching_the_end(self):
        labels = np.array([0, 0, 1, 1])
        spans = labels_to_spans(labels)
        assert spans[0].start == 2 and spans[0].length == 2

    def test_multiple_spans(self):
        labels = np.array([1, 0, 1, 1, 0, 1])
        spans = labels_to_spans(labels)
        assert [(s.start, s.length) for s in spans] == [(0, 1), (2, 2), (5, 1)]


class TestCSVRoundTrip:
    def test_save_and_load_csv(self, tmp_path):
        record = generate_series("IOPS", 0, 300, seed=1)
        path = save_series_file(record, tmp_path / "series.csv")
        loaded = load_series_file(path, dataset="IOPS")
        assert np.allclose(loaded.series, record.series, atol=1e-9)
        assert np.array_equal(loaded.labels, record.labels)
        assert loaded.n_anomalies == record.n_anomalies

    def test_save_and_load_npz(self, tmp_path):
        record = generate_series("SMD", 1, 250, seed=2)
        path = save_series_file(record, tmp_path / "series.npz")
        loaded = load_series_file(path)
        assert np.allclose(loaded.series, record.series)
        assert np.array_equal(loaded.labels, record.labels)

    def test_csv_without_labels(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("value\n1.0\n2.0\n3.0\n")
        record = load_series_file(path)
        assert record.length == 3
        assert record.labels.sum() == 0

    def test_csv_without_header(self, tmp_path):
        path = tmp_path / "noheader.csv"
        path.write_text("1.0,0\n2.0,1\n3.0,1\n")
        record = load_series_file(path)
        assert record.length == 3
        assert record.labels.sum() == 2

    def test_tsv_delimiter(self, tmp_path):
        path = tmp_path / "series.tsv"
        path.write_text("value\tlabel\n1.5\t0\n2.5\t1\n")
        record = load_series_file(path)
        assert record.length == 2
        assert record.labels[1] == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_series_file(tmp_path / "ghost.csv")

    def test_unsupported_extension_raises(self, tmp_path):
        path = tmp_path / "series.parquet"
        path.write_text("whatever")
        with pytest.raises(ValueError):
            load_series_file(path)

    def test_non_numeric_value_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("value\n1.0\nnot_a_number\n")
        with pytest.raises(ValueError):
            load_series_file(path)

    def test_empty_csv_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("value,label\n")
        with pytest.raises(ValueError):
            load_series_file(path)

    def test_npz_without_series_key_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, values=np.arange(5.0))
        with pytest.raises(ValueError):
            load_series_file(path)

    def test_record_name_defaults_to_stem(self, tmp_path):
        record = generate_series("NAB", 0, 200, seed=3)
        path = save_series_file(record, tmp_path / "my_sensor.csv")
        assert load_series_file(path).name == "my_sensor"


class TestDirectoryLoading:
    def test_load_directory(self, tmp_path):
        for i in range(3):
            save_series_file(generate_series("ECG", i, 200, seed=4), tmp_path / f"ecg_{i}.csv")
        records = load_series_directory(tmp_path, dataset="ECG")
        assert len(records) == 3
        assert all(r.dataset == "ECG" for r in records)
        assert [r.name for r in records] == sorted(r.name for r in records)

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ValueError):
            load_series_directory(tmp_path)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(NotADirectoryError):
            load_series_directory(tmp_path / "nope")
