"""Tests for the ensemble baselines and extension detectors."""

import numpy as np
import pytest

from repro.data import generate_series
from repro.detectors import (
    DEFAULT_MODEL_NAMES,
    DetectorEnsemble,
    SpectralResidualDetector,
    SubsequenceKNNDetector,
    ensemble_cost_model,
    make_default_model_set,
    make_detector,
    make_extended_model_set,
)
from repro.eval import auc_roc


@pytest.fixture(scope="module")
def spike_series():
    rng = np.random.default_rng(5)
    n = 600
    series = np.sin(2 * np.pi * np.arange(n) / 30) + 0.05 * rng.normal(size=n)
    labels = np.zeros(n, dtype=int)
    series[300:312] += 4.0
    labels[300:312] = 1
    return series, labels


class TestExtendedDetectors:
    def test_default_model_set_excludes_extensions(self):
        model_set = make_default_model_set(window=16)
        assert list(model_set) == DEFAULT_MODEL_NAMES
        assert "SubKNN" not in model_set

    def test_extended_model_set_adds_two(self):
        model_set = make_extended_model_set(window=16)
        assert len(model_set) == 14
        assert "SubKNN" in model_set and "SpectralResidual" in model_set

    def test_extensions_registered_by_name(self):
        assert isinstance(make_detector("SubKNN"), SubsequenceKNNDetector)
        assert isinstance(make_detector("SpectralResidual"), SpectralResidualDetector)

    @pytest.mark.parametrize("name", ["SubKNN", "SpectralResidual"])
    def test_extension_detects_spike(self, name, spike_series):
        series, labels = spike_series
        detector = make_detector(name, window=24)
        scores = detector.detect(series)
        assert scores.shape == series.shape
        assert auc_roc(labels, scores) > 0.6

    def test_spectral_residual_short_series(self):
        detector = SpectralResidualDetector()
        assert detector.detect(np.array([1.0, 2.0])).shape == (2,)

    def test_subknn_strides_long_series(self):
        detector = SubsequenceKNNDetector(window=16, max_windows=50)
        series = np.random.default_rng(6).normal(size=2000)
        scores = detector.detect(series)
        assert scores.shape == series.shape


class TestDetectorEnsemble:
    @pytest.fixture(scope="class")
    def small_model_set(self):
        return {
            "HBOS": make_detector("HBOS", window=16),
            "POLY": make_detector("POLY", window=16),
            "IForest": make_detector("IForest", window=16),
        }

    def test_invalid_aggregation_raises(self):
        with pytest.raises(ValueError):
            DetectorEnsemble(aggregation="vote")

    @pytest.mark.parametrize("aggregation", ["mean", "max", "median"])
    def test_ensemble_scores_valid(self, aggregation, small_model_set, spike_series):
        series, labels = spike_series
        ensemble = DetectorEnsemble(model_set=small_model_set, aggregation=aggregation, window=16)
        scores = ensemble.detect(series)
        assert scores.shape == series.shape
        assert scores.min() >= 0 and scores.max() <= 1
        assert auc_roc(labels, scores) > 0.6

    def test_ensemble_at_least_as_good_as_worst_member(self, small_model_set, spike_series):
        series, labels = spike_series
        ensemble = DetectorEnsemble(model_set=small_model_set, aggregation="mean", window=16)
        member_aucs = [auc_roc(labels, det.detect(series)) for det in small_model_set.values()]
        assert auc_roc(labels, ensemble.detect(series)) >= min(member_aucs) - 0.05

    def test_per_detector_scores(self, small_model_set, spike_series):
        series, _ = spike_series
        ensemble = DetectorEnsemble(model_set=small_model_set, window=16)
        per = ensemble.per_detector_scores(series)
        assert set(per) == set(small_model_set)
        assert all(v.shape == series.shape for v in per.values())

    def test_cost_model(self):
        assert ensemble_cost_model(12, selected_only=True) == 1.0
        assert ensemble_cost_model(12, selected_only=False) == 12.0
        with pytest.raises(ValueError):
            ensemble_cost_model(0, selected_only=True)

    def test_generated_record_integration(self, small_model_set):
        record = generate_series("IOPS", 0, 400, seed=8)
        ensemble = DetectorEnsemble(model_set=small_model_set, window=16)
        assert ensemble.detect(record.series).shape == record.series.shape
