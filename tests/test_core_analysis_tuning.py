"""Tests for selector diagnostics, redundancy analysis and grid search."""

import numpy as np
import pytest

from repro.core import (
    MKIConfig,
    PAPER_GRID,
    PruningConfig,
    TrainerConfig,
    confusion_matrix,
    diagnose_selector,
    gradient_redundancy,
    grid_search,
    per_class_accuracy,
    pruning_summary,
)
from repro.core.tuning import GridSearchResult, Trial, default_validation_scorer
from repro.selectors import make_selector


def _fit_mlp(dataset, epochs=2, **kwargs):
    selector = make_selector("MLP", window=dataset.windows.shape[1],
                             n_classes=dataset.n_classes, hidden=32, feature_dim=16, seed=0)
    selector.fit(dataset, config=TrainerConfig(epochs=epochs, batch_size=32, seed=0, **kwargs))
    return selector


class TestConfusionMatrix:
    def test_counts_sum_to_samples(self):
        y_true = np.array([0, 1, 2, 1, 0])
        y_pred = np.array([0, 2, 2, 1, 1])
        counts = confusion_matrix(y_true, y_pred, 3)
        assert counts.sum() == 5
        assert counts[0, 0] == 1 and counts[1, 2] == 1

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(3), np.zeros(4), 2)

    def test_per_class_accuracy_perfect(self):
        y = np.array([0, 1, 2])
        assert np.allclose(per_class_accuracy(y, y, 3), 1.0)

    def test_per_class_accuracy_missing_class_is_zero(self):
        acc = per_class_accuracy(np.array([0, 0]), np.array([0, 0]), 3)
        assert acc[0] == 1.0 and acc[1] == 0.0 and acc[2] == 0.0


class TestDiagnostics:
    def test_diagnose_selector(self, small_selector_dataset):
        selector = _fit_mlp(small_selector_dataset)
        diag = diagnose_selector(selector, small_selector_dataset)
        assert 0.0 <= diag.accuracy <= 1.0
        assert diag.confusion.shape == (small_selector_dataset.n_classes,) * 2
        assert diag.confusion.sum() == len(small_selector_dataset)
        assert len(diag.per_class_accuracy) == small_selector_dataset.n_classes
        assert len(diag.class_names) == small_selector_dataset.n_classes

    def test_most_confused_pairs(self, small_selector_dataset):
        selector = _fit_mlp(small_selector_dataset, epochs=1)
        diag = diagnose_selector(selector, small_selector_dataset)
        pairs = diag.most_confused_pairs(top=2)
        assert len(pairs) <= 2
        for true_name, pred_name, count in pairs:
            assert true_name != pred_name
            assert count > 0

    def test_subsampling(self, selector_dataset):
        selector = _fit_mlp(selector_dataset, epochs=1)
        diag = diagnose_selector(selector, selector_dataset, max_samples=32)
        assert diag.confusion.sum() == 32


class TestPruningSummary:
    def test_empty_history(self):
        summary = pruning_summary([])
        assert summary["epochs"] == 0
        assert summary["total_saved"] == 0.0

    def test_partial_pruning(self):
        summary = pruning_summary([1.0, 0.5, 0.25])
        assert summary["epochs"] == 3
        assert summary["min_kept"] == 0.25
        assert summary["total_saved"] == pytest.approx(1.0 - (1.75 / 3))


class TestGradientRedundancy:
    def test_bucket_pairs_have_more_similar_gradients(self, small_selector_dataset):
        """Empirical check of the Sect. A.1 argument on a trained selector."""
        selector = _fit_mlp(small_selector_dataset, epochs=2)
        # Use the per-sample losses of a forward pass as the loss signal and
        # make near-duplicate windows so that buckets are non-empty.
        dataset = small_selector_dataset
        losses = np.linspace(1.0, 2.0, len(dataset))
        result = gradient_redundancy(
            selector, dataset, losses,
            config=PruningConfig(method="pa", ratio=0.8, lsh_bits=4, n_bins=2),
            max_pairs=8, seed=0,
        )
        assert result["n_random_pairs"] > 0
        assert np.isfinite(result["random_pair_distance"])
        if result["n_bucket_pairs"] > 0:
            # Bucketed (similar) samples should not have wildly more different
            # gradients than random pairs; typically they are closer.
            assert result["bucket_pair_distance"] <= result["random_pair_distance"] * 1.5

    def test_mismatched_losses_raise(self, small_selector_dataset):
        selector = _fit_mlp(small_selector_dataset, epochs=1)
        with pytest.raises(ValueError):
            gradient_redundancy(selector, small_selector_dataset, np.zeros(3))


class TestGridSearch:
    def test_paper_grid_contents(self):
        assert set(PAPER_GRID) == {"alpha", "t_soft", "mki_weight", "projection_dim"}

    def test_small_grid_search(self, small_selector_dataset):
        def factory():
            return make_selector("MLP", window=small_selector_dataset.windows.shape[1],
                                 n_classes=small_selector_dataset.n_classes,
                                 hidden=16, feature_dim=8, seed=0)

        result = grid_search(
            factory, small_selector_dataset,
            grid={"alpha": (0.2, 1.0), "t_soft": (0.25,)},
            # keep MKI disabled so every grid point trains in well under a second
            base_config=TrainerConfig(epochs=1, batch_size=32, seed=0, mki=MKIConfig(enabled=False)),
            val_fraction=0.3,
            seed=0,
        )
        assert len(result.trials) == 2
        best = result.best
        assert 0.0 <= best.score <= 1.0
        assert set(best.params) == {"alpha", "t_soft"}
        assert len(result.top(1)) == 1
        rows = result.as_rows()
        assert len(rows) == 2 and len(rows[0]) == 4

    def test_empty_grid_raises(self, small_selector_dataset):
        with pytest.raises(ValueError):
            grid_search(lambda: None, small_selector_dataset, grid={})

    def test_best_requires_trials(self):
        with pytest.raises(RuntimeError):
            GridSearchResult().best

    def test_trial_is_frozen_dataclass(self):
        trial = Trial(params={"alpha": 0.2}, score=0.5, training_time_s=1.0)
        assert trial.score == 0.5

    def test_default_scorer(self, small_selector_dataset):
        selector = _fit_mlp(small_selector_dataset, epochs=1)
        score = default_validation_scorer(selector, small_selector_dataset)
        assert 0.0 <= score <= 1.0
