"""Tests for the online selection + detection engine (repro.streaming)."""

import json

import numpy as np
import pytest

from repro.core import TrainerConfig
from repro.data import (
    build_selector_dataset,
    complete_window_count,
    count_windows,
    extract_new_windows,
    extract_windows,
    generate_series,
)
from repro.detectors import make_detector
from repro.eval import predict_for_series
from repro.selectors import make_selector
from repro.serving import window_budget_groups
from repro.streaming import (
    DriftConfig,
    DriftMonitor,
    GrowingArray,
    OnlineScorer,
    StreamBuffer,
    StreamEngine,
    StreamingConfig,
    StreamingSelector,
    iter_chunks,
    parse_tick_line,
    replay_records,
    total_variation,
)
from repro.system import ModelSelectionPipeline, PipelineConfig


class TestIncrementalWindowing:
    def test_complete_window_count_ignores_padding(self):
        assert complete_window_count(10, 64) == 0
        assert complete_window_count(64, 64) == 1
        assert complete_window_count(200, 64, 32) == 5
        # count_windows pads short series up to one window; the streaming
        # count must not
        assert count_windows(10, 64) == 1

    def test_extract_new_windows_matches_batch_rows(self, rng):
        series = rng.normal(size=500)
        full = extract_windows(series, 64, stride=32)
        got = extract_new_windows(series, 64, n_emitted=2, stride=32)
        assert np.array_equal(got, full[2:])

    def test_extract_new_windows_empty_when_nothing_new(self, rng):
        series = rng.normal(size=100)
        total = complete_window_count(100, 64, 32)
        assert extract_new_windows(series, 64, n_emitted=total, stride=32).shape == (0, 64)
        assert extract_new_windows(series[:10], 64, n_emitted=0).shape == (0, 64)


class TestGrowingArray:
    def test_append_and_read_back(self, rng):
        values = rng.normal(size=5000)
        arr = GrowingArray(initial_capacity=4)
        for start in range(0, len(values), 17):
            arr.append(values[start:start + 17])
        assert len(arr) == len(values)
        assert np.array_equal(arr.values, values)

    def test_values_view_is_read_only(self):
        arr = GrowingArray()
        arr.append(np.arange(3.0))
        with pytest.raises(ValueError):
            arr.values[0] = 99.0


class TestStreamBuffer:
    def test_windows_match_batch_extraction_bitwise(self, rng):
        series = rng.normal(size=1000)
        buffer = StreamBuffer(window=64, stride=32)
        emitted = []
        for start in range(0, len(series), 13):
            emitted.append(buffer.append(series[start:start + 13]))
        stacked = np.vstack([w for w in emitted if len(w)])
        assert np.array_equal(stacked, extract_windows(series, 64, stride=32))
        assert buffer.n_windows == complete_window_count(1000, 64, 32)

    def test_each_window_emitted_exactly_once(self, rng):
        series = rng.normal(size=300)
        buffer = StreamBuffer(window=64)
        total = sum(len(buffer.append(series[i:i + 1])) for i in range(len(series)))
        assert total == complete_window_count(300, 64)
        assert buffer.take_new_windows().shape == (0, 64)

    def test_no_padded_window_before_first_complete(self):
        buffer = StreamBuffer(window=64)
        assert buffer.append(np.zeros(63)).shape == (0, 64)
        assert buffer.length == 63 and buffer.n_windows == 0
        assert buffer.append(np.zeros(1)).shape == (1, 64)


@pytest.fixture(scope="module")
def streaming_world():
    """A trained selector + live query series shared by the engine tests."""
    train_records = [generate_series(name, 0, 400, seed=4)
                     for name in ("ECG", "IOPS", "MGAB", "SMD")]
    detector_names = ["IForest", "HBOS", "MP", "POLY"]
    gen = np.random.default_rng(9)
    matrix = gen.uniform(0.05, 0.4, size=(len(train_records), len(detector_names)))
    matrix[np.arange(len(train_records)), np.arange(len(train_records))] += 0.5
    dataset = build_selector_dataset(train_records, matrix, detector_names, window=64, stride=64)

    selector = make_selector("MLP", window=64, n_classes=4, hidden=16, feature_dim=8, seed=0)
    selector.fit(dataset, config=TrainerConfig(epochs=2, batch_size=32))

    queries = [generate_series(name, 3, 700, seed=6)
               for name in ("ECG", "IOPS", "MGAB", "SMD", "NAB")]
    return {"selector": selector, "detector_names": detector_names, "queries": queries}


def _fresh_engine(world, model_set=None, **overrides) -> StreamEngine:
    overrides.setdefault("window", 64)
    return StreamEngine(world["selector"], world["detector_names"],
                        StreamingConfig(**overrides), model_set=model_set)


class TestStreamingSelector:
    def test_incremental_probas_match_batch(self, streaming_world):
        selector = streaming_world["selector"]
        streaming = StreamingSelector(selector, n_classes=4, window=64)
        record = streaming_world["queries"][0]
        windows = extract_windows(record.series, 64, stride=64)
        state = streaming.new_state()
        for row in windows:  # one window per tick
            streaming.update(state, row[None, :])
        assert np.array_equal(state.probas, selector.predict_proba(windows))

    def test_selection_matches_batch_pipeline_bitwise(self, streaming_world):
        streaming = StreamingSelector(streaming_world["selector"], n_classes=4, window=64)
        for record in streaming_world["queries"]:
            state = streaming.new_state()
            windows = extract_windows(record.series, 64, stride=64)
            streaming.update(state, windows)
            view = streaming.selection(state)
            choice, aggregated = predict_for_series(streaming_world["selector"], record, 64)
            assert view.selected_index == choice
            assert np.array_equal(view.aggregated, aggregated)

    def test_window_cache_serves_repeats_bitwise(self, streaming_world):
        streaming = StreamingSelector(streaming_world["selector"], n_classes=4,
                                      window=64, cache_capacity=128)
        windows = extract_windows(streaming_world["queries"][0].series, 64, stride=64)
        first = streaming.predict_proba(windows)
        again = streaming.predict_proba(windows)
        assert np.array_equal(first, again)
        assert streaming.cached_windows == len(windows)
        assert streaming.cache_stats.hits == len(windows)

    def test_provisional_selection_before_first_window(self, streaming_world):
        streaming = StreamingSelector(streaming_world["selector"], n_classes=4, window=64)
        state = streaming.new_state()
        assert streaming.selection(state) is None
        partial = streaming_world["queries"][0].series[:20]
        view = streaming.selection(state, series=partial)
        assert view.provisional and view.n_windows == 1

    def test_reset_votes_keeps_only_recent_windows(self, streaming_world):
        streaming = StreamingSelector(streaming_world["selector"], n_classes=4, window=64)
        state = streaming.new_state()
        windows = extract_windows(streaming_world["queries"][0].series, 64, stride=64)
        streaming.update(state, windows)
        streaming.reset_votes(state, keep_last=3)
        assert len(state.active_probas) == 3
        assert np.array_equal(state.active_probas, state.probas[-3:])


class TestDriftMonitor:
    @staticmethod
    def _onehot(index, n=4):
        row = np.zeros(n)
        row[index] = 1.0
        return row

    def test_total_variation_bounds(self):
        assert total_variation([1, 0], [0, 1]) == 1.0
        assert total_variation([0.5, 0.5], [0.5, 0.5]) == 0.0

    def test_no_trigger_on_stable_stream(self):
        monitor = DriftMonitor(DriftConfig(reference_size=4, recent_size=4,
                                           threshold=0.3, release=0.1, cooldown=4))
        for _ in range(50):
            decision = monitor.update([self._onehot(0)])
            assert not decision.triggered
        assert monitor.triggers == 0

    def test_shift_triggers_once_not_every_tick(self):
        monitor = DriftMonitor(DriftConfig(reference_size=4, recent_size=4,
                                           threshold=0.5, release=0.2, cooldown=4))
        for _ in range(8):
            monitor.update([self._onehot(0)])
        triggered = [monitor.update([self._onehot(1)]).triggered for _ in range(8)]
        assert sum(triggered) == 1  # hysteresis: re-collection, not flapping
        assert monitor.triggers == 1

    def test_retrigger_after_second_shift(self):
        monitor = DriftMonitor(DriftConfig(reference_size=2, recent_size=2,
                                           threshold=0.5, release=0.2, cooldown=2))
        for _ in range(4):
            monitor.update([self._onehot(0)])
        assert any([monitor.update([self._onehot(1)]).triggered for _ in range(6)])
        # after re-collection in regime 1, a move to regime 2 triggers again
        assert any([monitor.update([self._onehot(2)]).triggered for _ in range(8)])
        assert monitor.triggers == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DriftConfig(threshold=0.0)
        with pytest.raises(ValueError):
            DriftConfig(release=0.5, threshold=0.3)
        with pytest.raises(ValueError):
            DriftConfig(reference_size=0)


class TestOnlineScorer:
    def test_tail_rescoring_equals_full_rerun_bitwise(self, rng):
        series = rng.normal(size=1500).cumsum() * 0.1
        detector = make_detector("POLY", window=32)
        scorer = OnlineScorer(detector, verify=True)  # verify asserts per tick
        n = 0
        while n < len(series):
            n = min(n + int(rng.integers(1, 50)), len(series))
            scorer.update(series[:n])
        assert scorer.tail_rescores > scorer.full_rescores
        assert np.array_equal(scorer.raw_scores, detector.score(series))
        assert np.array_equal(scorer.scores, detector.detect(series))

    def test_global_detector_falls_back_to_full_rescoring(self, rng):
        series = rng.normal(size=400)
        detector = make_detector("HBOS", window=16)
        scorer = OnlineScorer(detector)
        for n in range(50, 401, 50):
            scorer.update(series[:n])
        assert scorer.tail_rescores == 0 and scorer.full_rescores == 8
        assert np.array_equal(scorer.raw_scores, detector.score(series))

    def test_rescore_cadence_bounds_work(self, rng):
        series = rng.normal(size=400)
        scorer = OnlineScorer(make_detector("HBOS", window=16), rescore_every=100)
        for n in range(10, 401, 10):
            scorer.update(series[:n])
        # first possible score + one per 100 accumulated points; the scored
        # prefix lags until the next cadence boundary
        assert scorer.full_rescores == 4
        assert scorer.scored_length == 310
        assert scorer.update(series, force=True)
        assert scorer.scored_length == 400

    def test_local_detector_stays_current_despite_cadence(self, rng):
        """rescore_every bounds *full* re-runs; the exact tail path is cheap
        and keeps locally-scored detectors current every tick."""
        series = rng.normal(size=600)
        detector = make_detector("POLY", window=16)
        scorer = OnlineScorer(detector, rescore_every=10_000, verify=True)
        for n in range(50, 601, 50):
            scorer.update(series[:n])
        assert scorer.scored_length == 600
        assert np.array_equal(scorer.raw_scores, detector.score(series))

    def test_switch_detector_forces_full_rescore(self, rng):
        series = rng.normal(size=300)
        scorer = OnlineScorer(make_detector("POLY", window=16))
        scorer.update(series)
        replacement = make_detector("HBOS", window=16)
        scorer.switch_detector(replacement)
        scorer.update(series)
        assert np.array_equal(scorer.raw_scores, replacement.score(series))

    def test_shrinking_series_rejected(self):
        scorer = OnlineScorer(make_detector("POLY", window=16))
        scorer.update(np.arange(100.0))
        with pytest.raises(ValueError):
            scorer.update(np.arange(50.0))


class TestStreamEngine:
    def test_selections_match_batch_pipeline_bitwise(self, streaming_world):
        engine = _fresh_engine(streaming_world)
        last = {}
        for updates in replay_records(engine, streaming_world["queries"], chunk=37):
            last.update(updates)
        for record in streaming_world["queries"]:
            update = last[record.name]
            choice, aggregated = predict_for_series(streaming_world["selector"], record, 64)
            assert update.selected_index == choice
            assert update.selected_model == streaming_world["detector_names"][choice]
            assert list(update.votes.values()) == [float(v) for v in aggregated]

    def test_forward_pass_only_on_new_windows(self, streaming_world):
        engine = _fresh_engine(streaming_world)
        record = streaming_world["queries"][0]
        for start in range(0, 700, 64):
            engine.push(record.name, record.series[start:start + 64])
        stats = engine.stats
        # exactly one forward pass per complete window, ever
        assert stats.windows == complete_window_count(700, 64)
        assert stats.forward_windows == stats.windows

    def test_provisional_answers_before_first_complete_window(self, streaming_world):
        engine = _fresh_engine(streaming_world)
        record = streaming_world["queries"][0]
        update = engine.push(record.name, record.series[:30])
        assert update.provisional and update.selected_index is not None
        update = engine.push(record.name, record.series[30:64])
        assert not update.provisional and update.n_windows == 1

    def test_tick_boundaries_do_not_change_results(self, streaming_world):
        record = streaming_world["queries"][1]
        answers = []
        for chunk in (11, 64, 700):
            engine = _fresh_engine(streaming_world)
            for start in range(0, 700, chunk):
                update = engine.push(record.name, record.series[start:start + chunk])
            answers.append((update.selected_index, tuple(update.votes.values())))
        assert answers[0] == answers[1] == answers[2]

    def test_online_scores_match_batch_detection_bitwise(self, streaming_world):
        model_set = {name: make_detector(name, window=16)
                     for name in streaming_world["detector_names"]}
        engine = _fresh_engine(streaming_world, model_set=model_set, verify_scores=True)
        records = streaming_world["queries"][:2]
        for _ in replay_records(engine, records, chunk=50):
            pass
        for record in records:
            view = engine.selection(record.name)
            detector = model_set[streaming_world["detector_names"][view.selected_index]]
            assert np.array_equal(engine.scores(record.name), detector.detect(record.series))

    def test_multi_stream_batching_matches_single_stream(self, streaming_world):
        records = streaming_world["queries"][:3]
        together = _fresh_engine(streaming_world)
        for updates in replay_records(together, records, chunk=40):
            last_together = dict(updates)
        separate = {}
        for record in records:
            engine = _fresh_engine(streaming_world)
            for start in range(0, 700, 40):
                separate[record.name] = engine.push(record.name, record.series[start:start + 40])
        for record in records:
            assert last_together[record.name].votes == separate[record.name].votes
            assert (last_together[record.name].selected_index
                    == separate[record.name].selected_index)

    def test_small_forward_budget_preserves_results(self, streaming_world):
        records = streaming_world["queries"][:3]
        tight = _fresh_engine(streaming_world, max_batch_windows=1)
        roomy = _fresh_engine(streaming_world)
        for updates in replay_records(tight, records, chunk=130):
            tight_last = dict(updates)
        for updates in replay_records(roomy, records, chunk=130):
            roomy_last = dict(updates)
        for record in records:
            assert tight_last[record.name].votes == roomy_last[record.name].votes

    def test_drift_reselection_can_change_model_midstream(self, streaming_world):
        # a stream whose character flips halfway: ECG-like, then IOPS-like
        a = generate_series("ECG", 1, 640, seed=2).series
        b = generate_series("IOPS", 2, 640, seed=2).series
        engine = _fresh_engine(
            streaming_world,
            drift=DriftConfig(reference_size=3, recent_size=3, threshold=0.05,
                              release=0.01, cooldown=3),
            keep_last_on_drift=3,
        )
        stitched = np.concatenate([a, b])
        triggered = False
        for start in range(0, len(stitched), 64):
            update = engine.push("flip", stitched[start:start + 64])
            triggered = triggered or update.drift_triggered
        assert triggered
        assert engine.stats.drift_triggers >= 1
        # the vote now covers only recent windows, not the whole history
        assert engine.selection("flip").n_windows < engine.stats.windows

    def test_engine_without_pending_flushes_to_nothing(self, streaming_world):
        engine = _fresh_engine(streaming_world)
        assert engine.flush() == {}

    def test_model_set_must_cover_detector_names(self, streaming_world):
        with pytest.raises(ValueError):
            _fresh_engine(streaming_world, model_set={"IForest": make_detector("IForest")})

    def test_pipeline_as_stream_engine_matches_select_model(self):
        model_set = {name: make_detector(name, window=16) for name in ("IForest", "HBOS")}
        pipeline = ModelSelectionPipeline(
            model_set=model_set,
            config=PipelineConfig(window=64, stride=32, detector_window=16, seed=0),
        )
        records = [generate_series(name, 0, 400, seed=4) for name in ("ECG", "SMD")]
        pipeline.prepare_training_data(records)
        pipeline.train_selector("KNN")

        engine = pipeline.as_stream_engine()
        for record in records:
            update = engine.push(record.name, record.series)
            expected = pipeline.select_model(record)
            assert update.selected_model == expected["selected_model"]
            assert update.votes == expected["votes"]
            # scoring is opt-in: the default engine keeps no scorer
            assert engine.scores(record.name).shape == (0,)

        scoring = pipeline.as_stream_engine(score=True)
        record = records[0]
        scoring.push(record.name, record.series)
        assert len(scoring.scores(record.name)) == len(record.series)

    def test_as_stream_engine_requires_trained_selector(self):
        pipeline = ModelSelectionPipeline(model_set={"HBOS": make_detector("HBOS")})
        with pytest.raises(RuntimeError):
            pipeline.as_stream_engine()


class TestReplayHelpers:
    def test_iter_chunks_covers_series_in_order(self, rng):
        series = rng.normal(size=103)
        chunks = list(iter_chunks(series, 10))
        assert [len(c) for c in chunks] == [10] * 10 + [3]
        assert np.array_equal(np.concatenate(chunks), series)

    def test_iter_chunks_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            list(iter_chunks(np.arange(5.0), 0))

    def test_replay_handles_unequal_stream_lengths(self, streaming_world):
        short = generate_series("ECG", 9, 150, seed=1)
        long = generate_series("SMD", 9, 400, seed=1)
        engine = _fresh_engine(streaming_world)
        rounds = list(replay_records(engine, [short, long], chunk=100))
        assert len(rounds) == 4  # the long stream keeps ticking alone
        assert engine.series(short.name).shape == (150,)
        assert engine.series(long.name).shape == (400,)

    def test_parse_tick_line_formats(self):
        stream, values = parse_tick_line("3.5")
        assert stream == "stdin" and values.tolist() == [3.5]
        stream, values = parse_tick_line('{"stream": "a", "values": [1, 2]}')
        assert stream == "a" and values.tolist() == [1.0, 2.0]
        stream, values = parse_tick_line('{"value": 7}')
        assert stream == "stdin" and values.tolist() == [7.0]

    def test_parse_tick_line_rejects_garbage(self):
        for bad in ("", "not-a-number", "{broken", '{"stream": "a"}', "[1, 2]"):
            with pytest.raises(ValueError):
                parse_tick_line(bad)


class TestWindowBudgetGroups:
    def test_groups_respect_budget_and_order(self):
        groups = window_budget_groups([3, 3, 3, 3], max_windows=6)
        assert groups == [[0, 1], [2, 3]]

    def test_oversized_item_forms_own_group(self):
        assert window_budget_groups([10], max_windows=4) == [[0]]
        assert window_budget_groups([1, 10, 1], max_windows=4) == [[0], [1], [2]]

    def test_zero_count_items_ride_along(self):
        assert window_budget_groups([0, 5, 0], max_windows=5) == [[0, 1, 2]]

    def test_empty_and_invalid_inputs(self):
        assert window_budget_groups([], max_windows=8) == []
        with pytest.raises(ValueError):
            window_budget_groups([1], max_windows=0)
