"""Tests for the frozen text encoders (repro.text)."""

import numpy as np
import pytest

from repro.text import (
    AveragedWordVectorEncoder,
    HashingTextEncoder,
    char_ngrams,
    tokenize,
    tokenize_with_subwords,
)


class TestTokenizer:
    def test_tokenize_lowercases_and_splits(self):
        assert tokenize("Hello, World 42!") == ["hello", "world", "42"]

    def test_tokenize_empty_string(self):
        assert tokenize("") == []

    def test_char_ngrams_boundaries(self):
        grams = char_ngrams("ecg", 3, 3)
        assert "<ec" in grams and "cg>" in grams

    def test_char_ngrams_short_token(self):
        assert char_ngrams("ab", 5, 6) == []

    def test_subword_tokenizer_keeps_numbers_whole(self):
        tokens = tokenize_with_subwords("length 1600")
        assert "1600" in tokens
        assert not any(t.startswith("<16") for t in tokens)


class TestHashingTextEncoder:
    @pytest.fixture(scope="class")
    def encoder(self):
        return HashingTextEncoder(dim=128, n_buckets=1024, seed=0)

    def test_output_shape_and_norm(self, encoder):
        out = encoder.encode(["This is a time series from dataset ECG."])
        assert out.shape == (1, 128)
        assert np.linalg.norm(out[0]) == pytest.approx(1.0, abs=1e-9)

    def test_deterministic(self, encoder):
        text = "There are 2 anomalies in this series."
        assert np.allclose(encoder.encode([text]), encoder.encode([text]))

    def test_deterministic_across_instances(self):
        a = HashingTextEncoder(dim=64, seed=5)
        b = HashingTextEncoder(dim=64, seed=5)
        text = "The length of the series is 1200."
        assert np.allclose(a.encode([text]), b.encode([text]))

    def test_similar_texts_closer_than_dissimilar(self, encoder):
        base = "This is a time series from dataset ECG with 2 anomalies of length 30."
        similar = "This is a time series from dataset ECG with 3 anomalies of length 25."
        different = "Completely unrelated words about web service latency indicators."
        e_base, e_sim, e_diff = encoder.encode([base, similar, different])
        cos_sim = float(e_base @ e_sim)
        cos_diff = float(e_base @ e_diff)
        assert cos_sim > cos_diff

    def test_encode_one(self, encoder):
        assert encoder.encode_one("hello world").shape == (128,)

    def test_cache_reuses_embeddings(self, encoder):
        text = "cached metadata description"
        first = encoder.encode([text])
        assert text in encoder._cache
        second = encoder.encode([text, text])
        assert np.allclose(second[0], first[0])
        assert np.allclose(second[0], second[1])

    def test_empty_text_is_finite(self, encoder):
        out = encoder.encode([""])
        assert np.all(np.isfinite(out))


class TestAveragedWordVectorEncoder:
    def test_shape_and_determinism(self):
        encoder = AveragedWordVectorEncoder(dim=32)
        out1 = encoder.encode(["dataset ECG anomalies"])
        out2 = AveragedWordVectorEncoder(dim=32).encode(["dataset ECG anomalies"])
        assert out1.shape == (1, 32)
        assert np.allclose(out1, out2)

    def test_empty_text_gives_zero_vector(self):
        encoder = AveragedWordVectorEncoder(dim=16)
        assert np.allclose(encoder.encode([""]), 0.0)

    def test_shared_tokens_increase_similarity(self):
        encoder = AveragedWordVectorEncoder(dim=64)
        a, b, c = encoder.encode([
            "temperature humidity sensor drift",
            "temperature humidity sensor freeze",
            "electrocardiogram premature ventricular contraction",
        ])
        assert float(a @ b) > float(a @ c)
