"""Tests for the autodiff tensor engine (repro.nn.tensor)."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor, concatenate, stack, where


def numeric_gradient(fn, value, eps=1e-6):
    """Central-difference gradient of a scalar function of an array."""
    value = np.asarray(value, dtype=np.float64)
    grad = np.zeros_like(value)
    it = np.nditer(value, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        plus = value.copy()
        plus[idx] += eps
        minus = value.copy()
        minus[idx] -= eps
        grad[idx] = (fn(plus) - fn(minus)) / (2 * eps)
        it.iternext()
    return grad


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_detach_breaks_graph(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert np.shares_memory(d.data, t.data)

    def test_item_scalar(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2


class TestArithmeticGradients:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [3.0, 4.0])
        assert np.allclose(b.grad, [1.0, 2.0])

    def test_sub_and_neg(self):
        a = Tensor([5.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a - b).backward()
        assert np.allclose(a.grad, [1.0])
        assert np.allclose(b.grad, [-1.0])

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward()
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [-1.5])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).backward()
        assert np.allclose(a.grad, [6.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_radd_rmul_scalars(self):
        a = Tensor([2.0], requires_grad=True)
        (3.0 + 2.0 * a).backward()
        assert np.allclose(a.grad, [2.0])

    def test_rsub_rtruediv(self):
        a = Tensor([2.0], requires_grad=True)
        out = 1.0 - a
        out.backward()
        assert np.allclose(a.grad, [-1.0])
        b = Tensor([4.0], requires_grad=True)
        (8.0 / b).backward()
        assert np.allclose(b.grad, [-0.5])

    def test_broadcast_add_unbroadcasts_gradient(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_broadcast_mul_keepdims_axis(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.full((2, 1), 2.0), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 3.0)

    def test_gradient_accumulates_across_uses(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2 + a * 3).backward()
        assert np.allclose(a.grad, [5.0])


class TestMatmulGradients:
    def test_matmul_2d_matches_numeric(self):
        rng = np.random.default_rng(0)
        a_val = rng.normal(size=(3, 4))
        b_val = rng.normal(size=(4, 2))

        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).sum().backward()

        num_a = numeric_gradient(lambda v: (v @ b_val).sum(), a_val)
        num_b = numeric_gradient(lambda v: (a_val @ v).sum(), b_val)
        assert np.allclose(a.grad, num_a, atol=1e-5)
        assert np.allclose(b.grad, num_b, atol=1e-5)

    def test_matmul_batched(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
        out = a.matmul(b)
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)


class TestNonLinearities:
    @pytest.mark.parametrize("op", ["exp", "log", "tanh", "sigmoid", "relu", "gelu", "abs", "sqrt"])
    def test_unary_matches_numeric(self, op):
        rng = np.random.default_rng(2)
        value = rng.uniform(0.2, 2.0, size=(4,))  # positive so log/sqrt are safe
        t = Tensor(value, requires_grad=True)
        getattr(t, op)().sum().backward()
        numeric = numeric_gradient(lambda v: getattr(Tensor(v), op)().sum().item(), value)
        assert np.allclose(t.grad, numeric, atol=1e-4)

    def test_relu_zero_gradient_for_negatives(self):
        t = Tensor([-1.0, 2.0], requires_grad=True)
        t.relu().sum().backward()
        assert np.allclose(t.grad, [0.0, 1.0])

    def test_clip_gradient_mask(self):
        t = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(t.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        t = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        out = t.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        assert np.allclose(t.grad, 1.0)

    def test_mean_gradient_scaled(self):
        t = Tensor(np.ones((2, 4)), requires_grad=True)
        t.mean().backward()
        assert np.allclose(t.grad, 1.0 / 8)

    def test_mean_axis_tuple(self):
        t = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = t.mean(axis=(0, 2))
        assert out.shape == (3,)
        out.sum().backward()
        assert np.allclose(t.grad, 1.0 / 8)

    def test_var_matches_numpy(self):
        value = np.random.default_rng(3).normal(size=(5, 7))
        assert np.allclose(Tensor(value).var(axis=1).numpy(), value.var(axis=1))

    def test_max_gradient_goes_to_argmax(self):
        t = Tensor([[1.0, 5.0, 3.0]], requires_grad=True)
        t.max(axis=1).sum().backward()
        assert np.allclose(t.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        t = Tensor([[2.0, 2.0]], requires_grad=True)
        t.max(axis=1).sum().backward()
        assert np.allclose(t.grad.sum(), 1.0)

    def test_min_is_negated_max(self):
        value = np.random.default_rng(4).normal(size=(3, 4))
        assert np.allclose(Tensor(value).min(axis=1).numpy(), value.min(axis=1))


class TestShapeOps:
    def test_reshape_backward(self):
        t = Tensor(np.arange(6, dtype=float), requires_grad=True)
        t.reshape(2, 3).sum().backward()
        assert t.grad.shape == (6,)

    def test_transpose_roundtrip(self):
        value = np.random.default_rng(5).normal(size=(2, 3, 4))
        t = Tensor(value, requires_grad=True)
        t.transpose((2, 0, 1)).sum().backward()
        assert t.grad.shape == value.shape

    def test_swapaxes(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.swapaxes(1, 2).shape == (2, 4, 3)

    def test_getitem_backward_scatter(self):
        t = Tensor(np.arange(5, dtype=float), requires_grad=True)
        t[np.array([0, 0, 2])].sum().backward()
        assert np.allclose(t.grad, [2.0, 0.0, 1.0, 0.0, 0.0])

    def test_slice_backward(self):
        t = Tensor(np.arange(8, dtype=float), requires_grad=True)
        t[2:5].sum().backward()
        expected = np.zeros(8)
        expected[2:5] = 1.0
        assert np.allclose(t.grad, expected)

    def test_pad1d(self):
        t = Tensor(np.ones((1, 2, 4)), requires_grad=True)
        out = t.pad1d(2, 3)
        assert out.shape == (1, 2, 9)
        out.sum().backward()
        assert np.allclose(t.grad, 1.0)

    def test_flatten(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.flatten().shape == (2, 12)


class TestGraphUtilities:
    def test_no_grad_disables_tracking(self):
        with nn.no_grad():
            t = Tensor([1.0], requires_grad=True)
            out = t * 2
        assert not t.requires_grad
        assert not out.requires_grad

    def test_concatenate_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        concatenate([a, b], axis=0).sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (3, 2)

    def test_stack_backward(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_where_routes_gradients(self):
        a = Tensor(np.ones(4), requires_grad=True)
        b = Tensor(np.zeros(4), requires_grad=True)
        cond = np.array([True, False, True, False])
        where(cond, a, b).sum().backward()
        assert np.allclose(a.grad, cond.astype(float))
        assert np.allclose(b.grad, (~cond).astype(float))

    def test_backward_on_nonscalar_requires_matching_grad(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        out = t * 3
        out.backward(np.ones((2, 2)) * 2)
        assert np.allclose(t.grad, 6.0)

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3
        z = y + y  # two paths through y
        z.backward()
        assert np.allclose(x.grad, [6.0])
