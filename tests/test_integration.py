"""End-to-end integration tests: oracle → selector learning → evaluation.

These exercise the exact workflow that the benchmark harness and the demo
system use, at a reduced scale, and check the qualitative properties the
paper claims (knowledge enhancement does not hurt, pruning saves work while
keeping the selector usable, the whole pipeline beats picking models at
random).
"""

import numpy as np
import pytest

from repro.core import TrainerConfig, kdselector_config
from repro.data import TSBUADBenchmark, build_selector_dataset
from repro.detectors import make_detector
from repro.eval import Oracle, evaluate_selection, oracle_upper_bound
from repro.selectors import make_selector
from repro.system import ModelSelectionPipeline, PipelineConfig, SelectorStore


@pytest.fixture(scope="module")
def small_world(tmp_path_factory):
    """A miniature version of the paper's experimental world."""
    cache_dir = tmp_path_factory.mktemp("oracle")
    benchmark = TSBUADBenchmark(
        n_train_per_dataset=1, n_test_per_dataset=1, series_length=500, seed=21,
        train_datasets=["ECG", "IOPS", "MGAB", "SMD", "NAB", "SensorScope"],
        test_datasets=["ECG", "IOPS", "MGAB", "SMD"],
    ).load()
    model_set = {
        "IForest": make_detector("IForest", window=16),
        "LOF": make_detector("LOF", window=16),
        "HBOS": make_detector("HBOS", window=16),
        "MP": make_detector("MP", window=16),
        "PCA": make_detector("PCA", window=16),
        "POLY": make_detector("POLY", window=16),
    }
    oracle = Oracle(model_set, metric="auc_pr", cache_dir=cache_dir)
    perf_train = oracle.performance_matrix(benchmark.train_records)
    test_records = benchmark.all_test_records
    perf_test = oracle.performance_matrix(test_records)
    dataset = build_selector_dataset(
        benchmark.train_records, perf_train, oracle.detector_names, window=64, stride=32,
    )
    return {
        "benchmark": benchmark,
        "oracle": oracle,
        "perf_train": perf_train,
        "perf_test": perf_test,
        "test_records": test_records,
        "dataset": dataset,
    }


class TestOracleWorld:
    def test_performance_matrix_is_meaningful(self, small_world):
        perf = small_world["perf_train"]
        # Detectors disagree: the best model differs across series.
        assert len(np.unique(perf.argmax(axis=1))) > 1
        # Oracle scores are proper AUC-PR values.
        assert perf.min() >= 0.0 and perf.max() <= 1.0

    def test_oracle_upper_bound_dominates_single_best(self, small_world):
        perf = small_world["perf_test"]
        records = small_world["test_records"]
        upper = oracle_upper_bound(records, perf)
        mean_upper = np.mean(list(upper.values()))
        single_best = perf.mean(axis=0).max()
        assert mean_upper >= single_best - 1e-9


class TestSelectorLearningEndToEnd:
    def test_standard_vs_kdselector_resnet(self, small_world):
        dataset = small_world["dataset"]

        def train(config):
            selector = make_selector("ResNet", window=64, n_classes=dataset.n_classes,
                                     mid_channels=8, num_layers=2, seed=1)
            selector.fit(dataset, config=config)
            return selector

        standard = train(TrainerConfig(epochs=3, batch_size=32, seed=1))
        enhanced = train(kdselector_config(epochs=3, batch_size=32, seed=1, projection_dim=16))

        eval_std = evaluate_selection(standard, small_world["test_records"], small_world["perf_test"],
                                      small_world["oracle"].detector_names, window=64)
        eval_kd = evaluate_selection(enhanced, small_world["test_records"], small_world["perf_test"],
                                     small_world["oracle"].detector_names, window=64)

        # Both must produce valid selections on every test dataset.
        assert set(eval_std.per_dataset_score) == set(eval_kd.per_dataset_score)
        for value in list(eval_std.per_dataset_score.values()) + list(eval_kd.per_dataset_score.values()):
            assert 0.0 <= value <= 1.0

        # The KDSelector run prunes samples; the standard one does not.
        assert enhanced.last_report_.pruned_fraction > 0.0
        assert standard.last_report_.pruned_fraction == 0.0

    def test_selection_beats_worst_choice(self, small_world):
        """A trained selector should comfortably beat always picking the worst model."""
        dataset = small_world["dataset"]
        selector = make_selector("MLP", window=64, n_classes=dataset.n_classes,
                                 hidden=64, feature_dim=32, seed=0)
        selector.fit(dataset, config=TrainerConfig(epochs=6, batch_size=32, lr=3e-3, seed=0))
        evaluation = evaluate_selection(selector, small_world["test_records"], small_world["perf_test"],
                                        small_world["oracle"].detector_names, window=64)
        worst = small_world["perf_test"].min(axis=1).mean()
        assert evaluation.average_score > worst

    def test_non_nn_selector_end_to_end(self, small_world):
        selector = make_selector("RandomForest", n_estimators=10, seed=0)
        selector.fit(small_world["dataset"])
        evaluation = evaluate_selection(selector, small_world["test_records"], small_world["perf_test"],
                                        small_world["oracle"].detector_names, window=64)
        assert 0.0 <= evaluation.average_score <= 1.0
        assert len(evaluation.selected_models) == len(small_world["test_records"])


class TestSystemRoundTrip:
    def test_pipeline_with_store_roundtrip(self, small_world, tmp_path):
        dataset = small_world["dataset"]
        oracle = small_world["oracle"]
        pipeline = ModelSelectionPipeline(
            model_set=oracle.model_set,
            config=PipelineConfig(window=64, stride=32, detector_window=16),
        )
        pipeline.train_dataset = dataset
        selector = pipeline.train_selector(
            "MLP", trainer_config=TrainerConfig(epochs=2, batch_size=32, seed=0),
            hidden=32, feature_dim=16, seed=0,
        )

        store = SelectorStore(tmp_path)
        store.save("pipeline_selector", selector, metadata={"window": 64})
        restored = store.load("pipeline_selector")

        record = small_world["test_records"][0]
        windows = pipeline.windows_for(record)
        assert np.allclose(restored.predict_proba(windows), selector.predict_proba(windows))

        # The reloaded selector drives model selection + detection end to end.
        pipeline.selector = restored
        result = pipeline.detect(record)
        assert result.scores.shape == record.series.shape
        assert result.detector_name in oracle.detector_names
