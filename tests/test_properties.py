"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import nn
from repro.core import PruningConfig, SimHashLSH, make_pruner, performance_to_soft_labels
from repro.data.anomalies import inject_anomalies
from repro.data.windows import extract_windows
from repro.detectors.base import normalize_scores, sliding_windows, window_scores_to_point_scores
from repro.eval.metrics import auc_pr, auc_roc, best_f1, precision_recall_curve
from repro.ml.scalers import zscore
from repro.nn import functional as F

# Keep hypothesis example counts moderate so the suite stays fast.
FAST = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


def float_arrays(min_len=1, max_len=200):
    return st.integers(min_value=min_len, max_value=max_len).flatmap(
        lambda n: arrays(np.float64, n, elements=finite_floats)
    )


class TestMetricProperties:
    @FAST
    @given(
        scores=float_arrays(min_len=5, max_len=100),
        labels_seed=st.integers(0, 2 ** 31 - 1),
    )
    def test_auc_metrics_bounded(self, scores, labels_seed):
        rng = np.random.default_rng(labels_seed)
        labels = (rng.random(len(scores)) < 0.3).astype(int)
        pr = auc_pr(labels, scores)
        roc = auc_roc(labels, scores)
        f1 = best_f1(labels, scores)
        assert 0.0 <= pr <= 1.0
        assert 0.0 <= roc <= 1.0
        assert 0.0 <= f1 <= 1.0

    @FAST
    @given(scores=float_arrays(min_len=5, max_len=100), seed=st.integers(0, 2 ** 31 - 1))
    def test_auc_invariant_to_monotone_transform(self, scores, seed):
        """Ranking metrics only depend on the ordering of the scores."""
        rng = np.random.default_rng(seed)
        labels = (rng.random(len(scores)) < 0.4).astype(int)
        if labels.sum() == 0 or labels.sum() == len(labels):
            return
        # Quantise so the affine transform cannot merge almost-equal scores
        # through floating-point rounding (which would legitimately change ties).
        scores = np.round(scores, 6)
        shifted = 3.0 * scores + 7.0  # strictly monotone transform
        assert auc_pr(labels, scores) == pytest.approx(auc_pr(labels, shifted), abs=1e-9)
        assert auc_roc(labels, scores) == pytest.approx(auc_roc(labels, shifted), abs=1e-9)

    @FAST
    @given(scores=float_arrays(min_len=10, max_len=100), seed=st.integers(0, 2 ** 31 - 1))
    def test_precision_recall_curve_is_valid(self, scores, seed):
        rng = np.random.default_rng(seed)
        labels = (rng.random(len(scores)) < 0.5).astype(int)
        if labels.sum() == 0:
            return
        precision, recall, _ = precision_recall_curve(labels, scores)
        assert np.all((precision >= 0) & (precision <= 1))
        assert np.all((recall >= 0) & (recall <= 1))
        assert np.all(np.diff(recall) >= -1e-12)

    @FAST
    @given(labels_len=st.integers(5, 50), flip=st.booleans())
    def test_perfect_and_inverted_ranking_extremes(self, labels_len, flip):
        labels = np.zeros(labels_len, dtype=int)
        labels[-2:] = 1
        scores = np.linspace(0, 1, labels_len)
        if flip:
            assert auc_roc(labels, -scores) == pytest.approx(0.0)
        else:
            assert auc_roc(labels, scores) == pytest.approx(1.0)


class TestScoreAndWindowProperties:
    @FAST
    @given(scores=float_arrays(min_len=2, max_len=300))
    def test_normalize_scores_in_unit_interval(self, scores):
        out = normalize_scores(scores)
        assert out.shape == scores.shape
        assert out.min() >= 0.0 and out.max() <= 1.0 + 1e-12

    @FAST
    @given(
        length=st.integers(10, 300),
        window=st.integers(2, 40),
        stride=st.integers(1, 10),
    )
    def test_sliding_window_count_formula(self, length, window, stride):
        if window > length:
            return
        series = np.arange(length, dtype=float)
        windows = sliding_windows(series, window, stride)
        assert windows.shape == ((length - window) // stride + 1, window)
        # Each row is a contiguous slice of the series.
        assert np.allclose(windows[0], series[:window])

    @FAST
    @given(
        length=st.integers(10, 200),
        window=st.integers(2, 30),
        value=st.floats(min_value=-10, max_value=10, allow_nan=False),
    )
    def test_constant_window_scores_spread_is_constant(self, length, window, value):
        if window > length:
            return
        n_windows = length - window + 1
        out = window_scores_to_point_scores(np.full(n_windows, value), length, window)
        assert out.shape == (length,)
        assert np.allclose(out, value)

    @FAST
    @given(length=st.integers(4, 500), window=st.integers(4, 64))
    def test_extract_windows_are_z_normalised(self, length, window):
        series = np.random.default_rng(length).normal(size=length) * 5 + 3
        windows = extract_windows(series, window, stride=window)
        assert np.all(np.isfinite(windows))
        assert np.allclose(windows.mean(axis=1), 0.0, atol=1e-8)

    @FAST
    @given(values=float_arrays(min_len=2, max_len=200))
    def test_zscore_idempotent_scale(self, values):
        z = zscore(values)
        assert np.all(np.isfinite(z))
        if values.std() > 1e-9:
            assert abs(z.mean()) < 1e-6
            assert z.std() == pytest.approx(1.0, abs=1e-6)


class TestSoftLabelProperties:
    @FAST
    @given(
        n=st.integers(1, 30),
        m=st.integers(2, 15),
        t_soft=st.floats(min_value=0.05, max_value=2.0),
        seed=st.integers(0, 2 ** 31 - 1),
    )
    def test_soft_labels_valid_distributions(self, n, m, t_soft, seed):
        perf = np.random.default_rng(seed).uniform(0, 1, size=(n, m))
        soft = performance_to_soft_labels(perf, t_soft)
        assert soft.shape == (n, m)
        assert np.allclose(soft.sum(axis=1), 1.0, atol=1e-9)
        assert (soft >= 0).all()
        # Order preservation: better-performing models never get less probability.
        order_perf = np.argsort(perf, axis=1)
        order_soft = np.argsort(soft, axis=1)
        assert np.array_equal(order_perf[:, -1], order_soft[:, -1])


class TestPruningProperties:
    @FAST
    @given(
        n=st.integers(20, 300),
        ratio=st.floats(min_value=0.1, max_value=0.9),
        seed=st.integers(0, 10_000),
        method=st.sampled_from(["infobatch", "pa"]),
    )
    def test_pruner_invariants(self, n, ratio, seed, method):
        """Selected indices are unique and valid; weights are >= 1; hard samples kept by InfoBatch."""
        config = PruningConfig(method=method, ratio=ratio, lsh_bits=6, n_bins=4,
                               full_data_last_fraction=0.0)
        pruner = make_pruner(n, config, total_epochs=10, seed=seed)
        features = np.random.default_rng(seed).normal(size=(n, 8))
        pruner.setup(features)
        losses = np.random.default_rng(seed + 1).uniform(0, 2, size=n)
        pruner.update(np.arange(n), losses)

        indices, weights = pruner.select(epoch=1)
        assert len(indices) == len(np.unique(indices))
        assert indices.min() >= 0 and indices.max() < n
        assert (weights >= 1.0 - 1e-12).all()
        assert len(indices) <= n
        # After the select the kept fraction history is recorded in (0, 1].
        assert 0 < pruner.kept_fraction_history[-1] <= 1.0

    @FAST
    @given(
        n=st.integers(16, 128),
        bits=st.integers(2, 16),
        seed=st.integers(0, 10_000),
    )
    def test_simhash_deterministic_and_bounded(self, n, bits, seed):
        x = np.random.default_rng(seed).normal(size=(n, 12))
        lsh = SimHashLSH(n_bits=bits, seed=seed)
        sig1 = lsh.fit_signatures(x)
        sig2 = lsh.signatures(x)
        assert np.array_equal(sig1, sig2)
        assert sig1.max() < 2 ** bits


class TestAnomalyInjectionProperties:
    @FAST
    @given(
        length=st.integers(200, 600),
        n_anomalies=st.integers(0, 4),
        seed=st.integers(0, 2 ** 31 - 1),
        kind=st.sampled_from(["spike", "level_shift", "noise_burst", "flatline"]),
    )
    def test_labels_consistent_with_spans(self, length, n_anomalies, seed, kind):
        rng = np.random.default_rng(seed)
        base = np.sin(np.linspace(0, 12 * np.pi, length))
        series, labels, spans = inject_anomalies(
            base, rng, kinds=(kind,), n_anomalies=n_anomalies, length_range=(8, 24)
        )
        assert series.shape == labels.shape == base.shape
        assert np.all(np.isfinite(series))
        assert labels.sum() == sum(span.length for span in spans)
        assert len(spans) <= n_anomalies
        outside = np.ones(length, dtype=bool)
        for span in spans:
            outside[span.start:span.end] = False
        # Points outside the injected spans are untouched.
        assert np.allclose(series[outside], base[outside])


class TestAutodiffProperties:
    @FAST
    @given(
        rows=st.integers(1, 6),
        cols=st.integers(1, 6),
        seed=st.integers(0, 2 ** 31 - 1),
    )
    def test_softmax_rows_are_distributions(self, rows, cols, seed):
        x = np.random.default_rng(seed).normal(scale=5.0, size=(rows, cols))
        out = F.softmax(nn.Tensor(x), axis=-1).numpy()
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-9)
        assert (out >= 0).all()

    @FAST
    @given(
        shape=st.tuples(st.integers(1, 4), st.integers(1, 5)),
        seed=st.integers(0, 2 ** 31 - 1),
    )
    def test_sum_gradient_is_ones(self, shape, seed):
        value = np.random.default_rng(seed).normal(size=shape)
        t = nn.Tensor(value, requires_grad=True)
        t.sum().backward()
        assert np.allclose(t.grad, 1.0)

    @FAST
    @given(
        n=st.integers(2, 8),
        c=st.integers(2, 6),
        seed=st.integers(0, 2 ** 31 - 1),
    )
    def test_cross_entropy_gradient_rows_sum_to_zero(self, n, c, seed):
        rng = np.random.default_rng(seed)
        logits = nn.Tensor(rng.normal(size=(n, c)), requires_grad=True)
        labels = rng.integers(0, c, size=n)
        nn.cross_entropy(logits, labels).backward()
        # d/dlogits of CE is softmax - onehot, whose rows sum to zero.
        assert np.allclose(logits.grad.sum(axis=1), 0.0, atol=1e-9)

    @FAST
    @given(
        n=st.integers(1, 5),
        length=st.integers(8, 40),
        kernel=st.integers(1, 7),
        seed=st.integers(0, 2 ** 31 - 1),
    )
    def test_conv1d_output_length_formula(self, n, length, kernel, seed):
        if kernel > length:
            return
        rng = np.random.default_rng(seed)
        x = nn.Tensor(rng.normal(size=(n, 1, length)))
        w = nn.Tensor(rng.normal(size=(2, 1, kernel)))
        out = F.conv1d(x, w)
        assert out.shape == (n, 2, length - kernel + 1)
