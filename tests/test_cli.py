"""Tests for the command-line interface (repro.system.cli).

The CLI workflow is exercised end to end on a tiny dataset: generate-data →
label → train → evaluate / select / detect / list-selectors.  To keep the
oracle step fast, the detector window is small and only a few short series
are generated.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.system.cli import build_parser, main


@pytest.fixture(scope="module")
def cli_workspace(tmp_path_factory):
    """Run generate-data + label once and share the artefacts across tests."""
    root = tmp_path_factory.mktemp("cli")
    data_dir = root / "data"
    perf_path = root / "perf.npz"

    assert main([
        "generate-data", str(data_dir),
        "--datasets", "ECG", "IOPS", "SMD",
        "--per-dataset", "1", "--length", "400", "--seed", "3",
    ]) == 0

    assert main([
        "label", str(data_dir), str(perf_path),
        "--detector-window", "16",
    ]) == 0

    return {"root": root, "data_dir": data_dir, "perf_path": perf_path}


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "data", "perf.npz"])
        assert args.selector == "ResNet"
        assert args.pruning == "none"
        assert not args.pisl and not args.mki

    def test_invalid_selector_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "data", "perf.npz", "--selector", "NotASelector"])


class TestGenerateAndLabel:
    def test_generate_data_writes_csv(self, cli_workspace):
        files = list(cli_workspace["data_dir"].glob("*.csv"))
        assert len(files) == 3

    def test_label_outputs_matrix_and_names(self, cli_workspace):
        perf_path = cli_workspace["perf_path"]
        with np.load(perf_path, allow_pickle=False) as archive:
            matrix = archive["performance"]
            names = archive["names"]
        assert matrix.shape == (3, 12)
        assert len(names) == 3
        detectors = json.loads(perf_path.with_suffix(".detectors.json").read_text())
        assert len(detectors) == 12


class TestTrainEvaluateDetect:
    @pytest.fixture(scope="class")
    def trained_store(self, cli_workspace):
        store = cli_workspace["root"] / "store"
        assert main([
            "train", str(cli_workspace["data_dir"]), str(cli_workspace["perf_path"]),
            "--selector", "MLP", "--store", str(store), "--name", "mlp",
            "--window", "64", "--stride", "32", "--epochs", "1", "--batch-size", "32",
            "--pisl", "--pruning", "infobatch",
        ]) == 0
        return store

    def test_train_persists_selector(self, trained_store):
        assert (trained_store / "mlp" / "manifest.json").exists()

    def test_train_non_nn_selector(self, cli_workspace):
        store = cli_workspace["root"] / "store_knn"
        assert main([
            "train", str(cli_workspace["data_dir"]), str(cli_workspace["perf_path"]),
            "--selector", "KNN", "--store", str(store), "--window", "64", "--stride", "32",
        ]) == 0
        assert (store / "KNN" / "manifest.json").exists()

    def test_evaluate(self, cli_workspace, trained_store, capsys):
        assert main([
            "evaluate", str(cli_workspace["data_dir"]), str(cli_workspace["perf_path"]),
            "--store", str(trained_store), "--name", "mlp", "--window", "64",
        ]) == 0
        out = capsys.readouterr().out
        assert "average:" in out
        assert "selection accuracy" in out

    def test_select(self, cli_workspace, trained_store, capsys):
        series_file = sorted(cli_workspace["data_dir"].glob("*.csv"))[0]
        assert main([
            "select", str(series_file),
            "--store", str(trained_store), "--name", "mlp", "--window", "64",
            "--detector-window", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "selected model" in out
        assert "Vote share" in out

    def test_detect_writes_scores(self, cli_workspace, trained_store, capsys):
        series_file = sorted(cli_workspace["data_dir"].glob("*.csv"))[0]
        scores_out = cli_workspace["root"] / "scores.csv"
        assert main([
            "detect", str(series_file),
            "--store", str(trained_store), "--name", "mlp", "--window", "64",
            "--detector-window", "16", "--scores-output", str(scores_out),
        ]) == 0
        assert scores_out.exists()
        scores = np.loadtxt(scores_out, delimiter=",", skiprows=1)
        assert len(scores) == 400
        assert "auc_pr" in capsys.readouterr().out

    def test_batch_select_reports_throughput_and_cache(self, cli_workspace, trained_store, capsys):
        assert main([
            "batch-select", str(cli_workspace["data_dir"]),
            "--store", str(trained_store), "--name", "mlp", "--window", "64",
            "--repeat", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Selected model" in out
        assert "cache hits" in out
        assert "pass 2 (warm) throughput" in out

    def test_serve_answers_json_lines_and_caches(self, cli_workspace, trained_store, capsys, monkeypatch):
        import io

        series_file = sorted(cli_workspace["data_dir"].glob("*.csv"))[0]
        lines = f"{series_file}\n{series_file}\nnot/a/file.csv\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        assert main([
            "serve",
            "--store", str(trained_store), "--name", "mlp", "--window", "64",
        ]) == 0
        captured = capsys.readouterr()
        answers = [json.loads(line) for line in captured.out.splitlines() if line.strip()]
        assert len(answers) == 3
        assert not answers[0]["cached"] and answers[1]["cached"]
        assert answers[0]["selected_model"] == answers[1]["selected_model"]
        assert "error" in answers[2]
        assert "cache hits" in captured.err

    def test_stream_replays_files_as_ticks(self, cli_workspace, trained_store, capsys):
        files = sorted(cli_workspace["data_dir"].glob("*.csv"))[:2]
        assert main([
            "stream", str(files[0]), str(files[1]),
            "--store", str(trained_store), "--name", "mlp", "--window", "64",
            "--chunk", "100", "--score", "--detector-window", "16",
        ]) == 0
        captured = capsys.readouterr()
        updates = [json.loads(line) for line in captured.out.splitlines() if line.strip()]
        # 400-point series in 100-point ticks, two streams -> 8 updates
        assert len(updates) == 8
        streams = {u["stream"] for u in updates}
        assert streams == {f.stem for f in files}
        final = updates[-1]
        assert final["length"] == 400 and final["windows"] == 6
        assert final["selected_model"] is not None
        assert "forward-pass windows" in captured.err

    def test_stream_reads_stdin_ticks(self, trained_store, capsys, monkeypatch):
        import io

        lines = "\n".join(["1.5", "2.5", '{"stream": "other", "values": [1, 2, 3]}',
                           "not-a-number"]) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        assert main([
            "stream",
            "--store", str(trained_store), "--name", "mlp", "--window", "64",
        ]) == 0
        captured = capsys.readouterr()
        answers = [json.loads(line) for line in captured.out.splitlines() if line.strip()]
        assert len(answers) == 4
        assert answers[0]["stream"] == "stdin" and answers[0]["provisional"]
        assert answers[2]["stream"] == "other"
        assert "error" in answers[3]

    def test_stream_emit_changes_filters_steady_updates(self, cli_workspace, trained_store,
                                                        capsys):
        series_file = sorted(cli_workspace["data_dir"].glob("*.csv"))[0]
        assert main([
            "stream", str(series_file),
            "--store", str(trained_store), "--name", "mlp", "--window", "64",
            "--chunk", "50", "--emit", "changes",
        ]) == 0
        all_out = capsys.readouterr()
        changed = [json.loads(line) for line in all_out.out.splitlines() if line.strip()]
        assert all(u["changed"] or u["drift_triggered"] for u in changed)

    def test_stream_missing_file_exits_cleanly(self, trained_store):
        with pytest.raises(SystemExit):
            main(["stream", "no/such/file.csv",
                  "--store", str(trained_store), "--name", "mlp"])

    def test_serve_sharded_matches_single_process_stream(self, cli_workspace,
                                                         trained_store, capsys):
        files = sorted(cli_workspace["data_dir"].glob("*.csv"))[:2]
        base = ["--store", str(trained_store), "--name", "mlp",
                "--window", "64", "--chunk", "100"]
        assert main(["stream", str(files[0]), str(files[1]), *base]) == 0
        single = capsys.readouterr()
        assert main(["serve-sharded", str(files[0]), str(files[1]),
                     *base, "--shards", "2"]) == 0
        sharded = capsys.readouterr()

        def by_tick(out):
            updates = [json.loads(line) for line in out.splitlines() if line.strip()]
            return {(u["stream"], u["length"]): u for u in updates}

        # the sharded replay is bitwise-equal to the in-process engine
        assert by_tick(sharded.out) == by_tick(single.out)
        assert "restarts" in sharded.err

    def test_serve_sharded_requires_files_or_port(self, trained_store):
        with pytest.raises(SystemExit):
            main(["serve-sharded", "--store", str(trained_store), "--name", "mlp"])

    def test_list_selectors(self, trained_store, capsys):
        assert main(["list-selectors", "--store", str(trained_store)]) == 0
        assert "mlp" in capsys.readouterr().out

    def test_list_selectors_empty_store(self, tmp_path, capsys):
        assert main(["list-selectors", "--store", str(tmp_path / "empty")]) == 0
        assert "no selectors stored" in capsys.readouterr().out
