"""Tests for the selector voting ensemble (repro.selectors.ensemble_selector)."""

import numpy as np
import pytest

from repro.core import TrainerConfig
from repro.selectors import SelectorEnsemble, make_selector, selector_names


class TestSelectorEnsemble:
    def test_not_in_registry(self):
        assert "SelectorEnsemble" not in selector_names()

    def test_fit_requires_members(self, small_selector_dataset):
        with pytest.raises(RuntimeError):
            SelectorEnsemble().fit(small_selector_dataset)

    def test_predict_requires_members(self):
        with pytest.raises(RuntimeError):
            SelectorEnsemble().predict_proba(np.zeros((2, 64)))

    def test_mismatched_weights_raise(self, small_selector_dataset):
        member = make_selector("KNN")
        with pytest.raises(ValueError):
            SelectorEnsemble([member], weights=[1.0, 2.0])

    def test_ensemble_of_classical_selectors(self, small_selector_dataset):
        ensemble = SelectorEnsemble([
            make_selector("KNN"),
            make_selector("Ridge"),
        ])
        ensemble.fit(small_selector_dataset)
        proba = ensemble.predict_proba(small_selector_dataset.windows[:6])
        assert proba.shape == (6, small_selector_dataset.n_classes)
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)

    def test_single_member_matches_member(self, small_selector_dataset):
        member = make_selector("Ridge")
        ensemble = SelectorEnsemble([member]).fit(small_selector_dataset)
        windows = small_selector_dataset.windows[:5]
        assert np.allclose(ensemble.predict_proba(windows), member.predict_proba(windows))

    def test_weights_bias_toward_heavy_member(self, small_selector_dataset):
        knn = make_selector("KNN")
        ridge = make_selector("Ridge")
        heavy_knn = SelectorEnsemble([knn, ridge], weights=[100.0, 1.0]).fit(small_selector_dataset)
        windows = small_selector_dataset.windows[:10]
        assert np.allclose(heavy_knn.predict_proba(windows), knn.predict_proba(windows), atol=0.05)

    def test_add_member_incrementally(self, small_selector_dataset):
        ensemble = SelectorEnsemble()
        ensemble.add(make_selector("KNN")).add(make_selector("Ridge"), weight=2.0)
        assert len(ensemble.members) == 2
        ensemble.fit(small_selector_dataset)
        assert ensemble.predict(small_selector_dataset.windows[:3]).shape == (3,)

    def test_member_agreements(self, small_selector_dataset):
        ensemble = SelectorEnsemble([make_selector("KNN"), make_selector("Ridge")])
        ensemble.fit(small_selector_dataset)
        agreements = ensemble.member_agreements(small_selector_dataset.windows[:20])
        assert len(agreements) == 1
        assert 0.0 <= agreements[0] <= 1.0

    def test_mixed_nn_and_classical_members(self, small_selector_dataset):
        mlp = make_selector("MLP", window=small_selector_dataset.windows.shape[1],
                            n_classes=small_selector_dataset.n_classes, hidden=16, feature_dim=8)
        mlp.fit(small_selector_dataset, config=TrainerConfig(epochs=1, batch_size=32))
        ensemble = SelectorEnsemble([mlp, make_selector("KNN").fit(small_selector_dataset)])
        ensemble.n_classes = small_selector_dataset.n_classes
        proba = ensemble.predict_proba(small_selector_dataset.windows[:4])
        assert proba.shape == (4, small_selector_dataset.n_classes)
