"""Documentation consistency tests.

``docs/cli.md`` is verified against the actual argparse configuration (every
sub-command and every long option must be documented, and nothing stale may
remain), and the repository-wide checks of ``tools/docs_check.py`` — module
docstrings, README/docs existence, Markdown link integrity — run as part of
the suite.
"""

import argparse
import importlib.util
import re
from pathlib import Path

import pytest

from repro.system.cli import build_parser

ROOT = Path(__file__).resolve().parent.parent


def _load_docs_check():
    spec = importlib.util.spec_from_file_location("docs_check", ROOT / "tools" / "docs_check.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _subcommands():
    parser = build_parser()
    action = next(a for a in parser._actions if isinstance(a, argparse._SubParsersAction))
    return action


@pytest.fixture(scope="module")
def cli_doc_text():
    path = ROOT / "docs" / "cli.md"
    assert path.exists(), "docs/cli.md is missing"
    return path.read_text()


class TestCliDocs:
    def test_every_command_has_a_section(self, cli_doc_text):
        for name in _subcommands().choices:
            assert f"## `{name}`" in cli_doc_text, f"docs/cli.md lacks a section for {name!r}"

    def test_every_long_option_is_documented(self, cli_doc_text):
        for name, sub in _subcommands().choices.items():
            for action in sub._actions:
                for option in action.option_strings:
                    if option.startswith("--"):
                        assert f"`{option}`" in cli_doc_text, \
                            f"docs/cli.md lacks option {option} of command {name!r}"

    def test_no_stale_command_sections(self, cli_doc_text):
        documented = set(re.findall(r"^## `([^`]+)`", cli_doc_text, flags=re.MULTILINE))
        real = set(_subcommands().choices)
        assert documented == real, (
            f"docs/cli.md out of sync: stale {sorted(documented - real)}, "
            f"missing {sorted(real - documented)}"
        )

    def test_command_help_strings_reflected(self):
        """Every sub-command registered with the parser carries a help line."""
        for pseudo in _subcommands()._choices_actions:
            assert pseudo.help, f"sub-command {pseudo.dest!r} has no --help summary"

    def test_every_command_has_an_example(self, cli_doc_text):
        for name in _subcommands().choices:
            section = cli_doc_text.split(f"## `{name}`", 1)[1].split("\n## ", 1)[0]
            assert "```bash" in section, f"docs/cli.md section for {name!r} has no example"


class TestRepositoryDocs:
    def test_docs_check_passes(self):
        problems = _load_docs_check().run_checks()
        assert problems == [], "docs-check failures:\n" + "\n".join(problems)

    def test_readme_names_the_tier1_command(self):
        readme = (ROOT / "README.md").read_text()
        assert "python -m pytest -x -q" in readme
        assert "PYTHONPATH=src" in readme

    def test_readme_documents_every_subpackage(self):
        readme = (ROOT / "README.md").read_text()
        for package in ("repro.nn", "repro.ml", "repro.detectors", "repro.data",
                        "repro.selectors", "repro.core", "repro.eval",
                        "repro.system", "repro.serving", "repro.streaming"):
            assert package in readme, f"README.md does not mention {package}"

    def test_makefile_targets_exist(self):
        makefile = (ROOT / "Makefile").read_text()
        for target in ("test:", "bench-smoke:", "docs-check:"):
            assert re.search(rf"^{re.escape(target)}", makefile, flags=re.MULTILINE), \
                f"Makefile lacks target {target[:-1]!r}"
