"""Shared fixtures for the test suite.

The expensive objects (benchmark series, oracle performance matrix, windowed
selector dataset) are built once per session at a deliberately small scale
so that the full suite stays fast while still exercising the real code
paths end to end.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.data import TSBUADBenchmark, build_selector_dataset, generate_series
from repro.detectors import detector_names


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_benchmark():
    """A very small benchmark split (1 train / 1 test series per family)."""
    return TSBUADBenchmark(n_train_per_dataset=1, n_test_per_dataset=1, series_length=512, seed=3).load()


@pytest.fixture(scope="session")
def sample_record():
    """One deterministic labelled series with at least one anomaly."""
    record = generate_series("ECG", index=0, length=800, seed=11)
    if record.n_anomalies == 0:  # pragma: no cover - generator always injects here
        record = generate_series("ECG", index=1, length=800, seed=11)
    return record


@pytest.fixture(scope="session")
def detector_name_list():
    return detector_names()


@pytest.fixture(scope="session")
def synthetic_performance_matrix(tiny_benchmark, detector_name_list):
    """A deterministic stand-in for the oracle output.

    Scores are random but biased per dataset so that different detectors win
    on different families (the property the selector-learning tests need),
    without paying the cost of running all 12 detectors in every session.
    """
    records = tiny_benchmark.train_records
    gen = np.random.default_rng(7)
    n_detectors = len(detector_name_list)
    matrix = gen.uniform(0.05, 0.4, size=(len(records), n_detectors))
    for i, record in enumerate(records):
        favourite = zlib.crc32(record.dataset.encode()) % n_detectors
        matrix[i, favourite] += 0.5
    return matrix


@pytest.fixture(scope="session")
def selector_dataset(tiny_benchmark, synthetic_performance_matrix, detector_name_list):
    """Windowed selector dataset built from the tiny benchmark."""
    return build_selector_dataset(
        tiny_benchmark.train_records,
        synthetic_performance_matrix,
        detector_name_list,
        window=64,
        stride=64,
    )


@pytest.fixture(scope="session")
def small_selector_dataset(selector_dataset):
    """A subset of the selector dataset for the slowest training tests."""
    keep = np.arange(0, len(selector_dataset), 2)[:64]
    return selector_dataset.subset(keep)
