"""Tests for metrics, oracle labelling and selection evaluation (repro.eval)."""

import numpy as np
import pytest

from repro.data import generate_series
from repro.detectors import make_detector
from repro.eval import (
    Oracle,
    accuracy,
    auc_pr,
    auc_roc,
    best_f1,
    detection_report,
    evaluate_selection,
    oracle_upper_bound,
    precision_at_k,
    precision_recall_curve,
    single_best_baseline,
    top_k_accuracy,
)


class TestDetectionMetrics:
    def test_auc_pr_perfect_ranking(self):
        labels = np.array([0, 0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.3, 0.8, 0.9])
        assert auc_pr(labels, scores) == pytest.approx(1.0)

    def test_auc_pr_worst_ranking_is_low(self):
        labels = np.array([1, 1, 0, 0, 0, 0, 0, 0])
        scores = np.array([0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8])
        assert auc_pr(labels, scores) < 0.5

    def test_auc_pr_no_positives_returns_zero(self):
        assert auc_pr(np.zeros(10), np.random.default_rng(0).random(10)) == 0.0

    def test_auc_pr_random_scores_near_prevalence(self):
        rng = np.random.default_rng(1)
        labels = (rng.random(20000) < 0.1).astype(int)
        scores = rng.random(20000)
        assert auc_pr(labels, scores) == pytest.approx(0.1, abs=0.02)

    def test_auc_roc_perfect_and_inverted(self):
        labels = np.array([0, 0, 1, 1])
        assert auc_roc(labels, np.array([0.1, 0.2, 0.8, 0.9])) == pytest.approx(1.0)
        assert auc_roc(labels, np.array([0.9, 0.8, 0.2, 0.1])) == pytest.approx(0.0)

    def test_auc_roc_single_class_returns_half(self):
        assert auc_roc(np.zeros(5), np.arange(5.0)) == 0.5
        assert auc_roc(np.ones(5), np.arange(5.0)) == 0.5

    def test_auc_roc_handles_ties(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert auc_roc(labels, scores) == pytest.approx(0.5)

    def test_metrics_validate_shapes(self):
        with pytest.raises(ValueError):
            auc_pr(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            auc_roc(np.zeros(0), np.zeros(0))

    def test_precision_recall_curve_monotone_recall(self):
        rng = np.random.default_rng(2)
        labels = (rng.random(100) < 0.2).astype(int)
        scores = rng.random(100)
        precision, recall, thresholds = precision_recall_curve(labels, scores)
        assert np.all(np.diff(recall) >= 0)
        assert recall[0] == 0.0 and recall[-1] == pytest.approx(1.0)
        assert len(precision) == len(recall) == len(thresholds) + 1

    def test_best_f1_perfect_separation(self):
        labels = np.array([0, 0, 1, 1])
        assert best_f1(labels, np.array([0.0, 0.1, 0.9, 1.0])) == pytest.approx(1.0)

    def test_best_f1_no_positives(self):
        assert best_f1(np.zeros(4), np.arange(4.0)) == 0.0

    def test_precision_at_k(self):
        labels = np.array([0, 1, 0, 1, 0])
        scores = np.array([0.1, 0.9, 0.2, 0.8, 0.3])
        assert precision_at_k(labels, scores) == pytest.approx(1.0)
        assert precision_at_k(labels, scores, k=5) == pytest.approx(0.4)

    def test_detection_report_keys(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.2, 0.7, 0.1, 0.9])
        report = detection_report(labels, scores)
        assert set(report) == {"auc_pr", "auc_roc", "best_f1", "precision_at_k"}


class TestClassificationMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)

    def test_accuracy_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_top_k_accuracy(self):
        proba = np.array([
            [0.1, 0.6, 0.3],
            [0.5, 0.4, 0.1],
        ])
        assert top_k_accuracy(np.array([2, 0]), proba, k=1) == pytest.approx(0.5)
        assert top_k_accuracy(np.array([2, 0]), proba, k=2) == pytest.approx(1.0)

    def test_top_k_accuracy_validates_shape(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.array([0, 1]), np.zeros((3, 2)))


class TestOracle:
    @pytest.fixture(scope="class")
    def small_model_set(self):
        return {
            "IForest": make_detector("IForest", window=16),
            "HBOS": make_detector("HBOS", window=16),
            "POLY": make_detector("POLY", window=16),
        }

    @pytest.fixture(scope="class")
    def records(self):
        return [generate_series("IOPS", i, 400, seed=5) for i in range(2)]

    def test_performance_matrix_shape_and_range(self, small_model_set, records):
        oracle = Oracle(small_model_set, metric="auc_pr")
        matrix = oracle.performance_matrix(records)
        assert matrix.shape == (2, 3)
        assert np.all(matrix >= 0.0) and np.all(matrix <= 1.0)

    def test_cache_roundtrip(self, small_model_set, records, tmp_path):
        oracle = Oracle(small_model_set, metric="auc_pr", cache_dir=tmp_path)
        first = oracle.performance_matrix(records)
        assert len(list(tmp_path.glob("oracle_*.npz"))) == 1
        second = oracle.performance_matrix(records)
        assert np.allclose(first, second)

    def test_unknown_metric_raises(self, small_model_set):
        with pytest.raises(ValueError):
            Oracle(small_model_set, metric="nope")

    def test_hard_labels_are_argmax(self, small_model_set):
        oracle = Oracle(small_model_set)
        matrix = np.array([[0.1, 0.9, 0.3], [0.6, 0.2, 0.1]])
        assert np.array_equal(oracle.hard_labels(matrix), [1, 0])

    def test_summary_fields(self, small_model_set):
        oracle = Oracle(small_model_set)
        matrix = np.array([[0.1, 0.9, 0.3], [0.6, 0.2, 0.1]])
        summary = oracle.summary(matrix)
        assert summary["n_series"] == 2 and summary["n_detectors"] == 3
        assert summary["mean_best"] == pytest.approx(0.75)
        assert summary["winner_entropy"] > 0


class _ConstantSelector:
    """Test double that always selects a fixed model index."""

    def __init__(self, choice: int, n_classes: int):
        self.choice = choice
        self.n_classes = n_classes

    def predict_proba(self, windows):
        proba = np.zeros((len(windows), self.n_classes))
        proba[:, self.choice] = 1.0
        return proba

    def predict(self, windows):
        return self.predict_proba(windows).argmax(axis=1)


class TestSelectionEvaluation:
    @pytest.fixture(scope="class")
    def records(self):
        return [generate_series("ECG", i, 400, seed=6) for i in range(2)] + \
               [generate_series("SMD", i, 400, seed=6) for i in range(2)]

    @pytest.fixture(scope="class")
    def performance(self, records):
        gen = np.random.default_rng(0)
        return gen.uniform(0.1, 0.9, size=(len(records), 4))

    def test_constant_selector_scores_match_matrix(self, records, performance):
        names = ["A", "B", "C", "D"]
        selector = _ConstantSelector(choice=2, n_classes=4)
        result = evaluate_selection(selector, records, performance, names, window=64)
        for i, record in enumerate(records):
            assert result.per_series_score[record.name] == pytest.approx(performance[i, 2])
        assert set(result.selected_models.values()) == {"C"}
        assert set(result.per_dataset_score) == {"ECG", "SMD"}

    def test_average_score_is_dataset_mean(self, records, performance):
        selector = _ConstantSelector(choice=0, n_classes=4)
        result = evaluate_selection(selector, records, performance, ["A", "B", "C", "D"], window=64)
        expected = np.mean([np.mean(performance[:2, 0]), np.mean(performance[2:, 0])])
        assert result.average_score == pytest.approx(expected)

    def test_selection_accuracy_perfect_when_choice_is_best(self, records):
        performance = np.zeros((4, 3))
        performance[:, 1] = 1.0
        selector = _ConstantSelector(choice=1, n_classes=3)
        result = evaluate_selection(selector, records, performance, ["A", "B", "C"], window=64)
        assert result.selection_accuracy == 1.0
        assert result.top3_accuracy == 1.0

    def test_mismatched_matrix_raises(self, records):
        selector = _ConstantSelector(0, 3)
        with pytest.raises(ValueError):
            evaluate_selection(selector, records, np.zeros((2, 3)), ["A", "B", "C"], window=64)

    def test_mean_aggregation(self, records, performance):
        selector = _ConstantSelector(choice=3, n_classes=4)
        result = evaluate_selection(selector, records, performance, list("ABCD"), window=64,
                                    aggregation="mean")
        assert set(result.selected_models.values()) == {"D"}

    def test_oracle_upper_bound_dominates_any_choice(self, records, performance):
        upper = oracle_upper_bound(records, performance)
        selector = _ConstantSelector(choice=0, n_classes=4)
        result = evaluate_selection(selector, records, performance, list("ABCD"), window=64)
        for dataset, value in result.per_dataset_score.items():
            assert upper[dataset] >= value - 1e-12

    def test_single_best_baseline_identifies_detector(self, records):
        performance = np.zeros((4, 3))
        performance[:, 2] = 0.8
        baseline = single_best_baseline(records, performance, ["A", "B", "C"])
        assert baseline["__detector_name__"] == "C"
        assert baseline["ECG"] == pytest.approx(0.8)
