"""Ensemble classifiers: random forest and AdaBoost (SAMME)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .tree import DecisionStump, DecisionTreeClassifier


class RandomForestClassifier:
    """Bagged CART trees with per-split feature sub-sampling."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 8,
        max_features: str | int = "sqrt",
        min_samples_leaf: int = 1,
        seed: int = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.estimators_: List[DecisionTreeClassifier] = []
        self.classes_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=int)
        self.classes_ = np.unique(y)
        rng = np.random.default_rng(self.seed)
        n = len(y)
        self.estimators_ = []
        for i in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                max_features=self.max_features,
                min_samples_leaf=self.min_samples_leaf,
                seed=self.seed * 1000 + i,
            )
            tree.fit(x[idx], y[idx])
            self.estimators_.append(tree)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("forest must be fitted before predict")
        n_classes = len(self.classes_)
        agg = np.zeros((np.asarray(x).shape[0], n_classes))
        for tree in self.estimators_:
            proba = tree.predict_proba(x)
            # Trees may have seen a subset of classes in their bootstrap sample.
            cols = np.searchsorted(self.classes_, tree.classes_)
            agg[:, cols] += proba
        agg /= len(self.estimators_)
        agg /= np.maximum(agg.sum(axis=1, keepdims=True), 1e-12)
        return agg

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.classes_[self.predict_proba(x).argmax(axis=1)]


class AdaBoostClassifier:
    """Multi-class AdaBoost (SAMME) over decision stumps."""

    def __init__(self, n_estimators: int = 50, learning_rate: float = 1.0, seed: int = 0) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.seed = seed
        self.estimators_: List[DecisionStump] = []
        self.estimator_weights_: List[float] = []
        self.classes_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "AdaBoostClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=int)
        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)
        n = len(y)
        weights = np.full(n, 1.0 / n)
        self.estimators_ = []
        self.estimator_weights_ = []

        for i in range(self.n_estimators):
            stump = DecisionStump(seed=self.seed * 1000 + i)
            stump.fit(x, y, sample_weight=weights)
            pred = stump.predict(x)
            miss = pred != y
            err = float(np.clip((weights * miss).sum() / weights.sum(), 1e-10, 1.0 - 1e-10))
            if err >= 1.0 - 1.0 / n_classes:
                # Weak learner is no better than chance; stop boosting.
                if not self.estimators_:
                    self.estimators_.append(stump)
                    self.estimator_weights_.append(1.0)
                break
            alpha = self.learning_rate * (np.log((1.0 - err) / err) + np.log(n_classes - 1.0))
            weights *= np.exp(alpha * miss)
            weights /= weights.sum()
            self.estimators_.append(stump)
            self.estimator_weights_.append(float(alpha))
            if err < 1e-8:
                break
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("ensemble must be fitted before predict")
        n_classes = len(self.classes_)
        scores = np.zeros((np.asarray(x).shape[0], n_classes))
        for stump, alpha in zip(self.estimators_, self.estimator_weights_):
            pred = stump.predict(x)
            cols = np.searchsorted(self.classes_, pred)
            scores[np.arange(len(pred)), cols] += alpha
        return scores

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        scores = self.decision_function(x)
        shifted = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.classes_[self.decision_function(x).argmax(axis=1)]
