"""CART decision trees (classification), used by the forest and boosting ensembles."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    proba: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeClassifier:
    """Gini-impurity CART classifier.

    Supports sample weights (needed by AdaBoost) and random feature
    sub-sampling at each split (needed by the random forest).
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int | str] = None,
        n_thresholds: int = 16,
        seed: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.n_thresholds = n_thresholds
        self.seed = seed
        self._root: Optional[_Node] = None
        self.classes_: Optional[np.ndarray] = None
        self.n_classes_: int = 0

    # ------------------------------------------------------------------ #
    def fit(self, x: np.ndarray, y: np.ndarray, sample_weight: Optional[np.ndarray] = None) -> "DecisionTreeClassifier":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=int)
        self.classes_ = np.unique(y)
        self.n_classes_ = len(self.classes_)
        y_idx = np.searchsorted(self.classes_, y)
        if sample_weight is None:
            sample_weight = np.ones(len(y))
        sample_weight = np.asarray(sample_weight, dtype=np.float64)
        self._rng = np.random.default_rng(self.seed)
        self._root = self._grow(x, y_idx, sample_weight, depth=0)
        return self

    def _n_features_to_try(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if self.max_features == "log2":
            return max(1, int(np.log2(n_features)))
        return min(int(self.max_features), n_features)

    def _leaf(self, y_idx: np.ndarray, weight: np.ndarray) -> _Node:
        proba = np.bincount(y_idx, weights=weight, minlength=self.n_classes_)
        total = proba.sum()
        proba = proba / total if total > 0 else np.full(self.n_classes_, 1.0 / self.n_classes_)
        return _Node(proba=proba)

    def _grow(self, x: np.ndarray, y_idx: np.ndarray, weight: np.ndarray, depth: int) -> _Node:
        if (
            depth >= self.max_depth
            or len(y_idx) < self.min_samples_split
            or len(np.unique(y_idx)) == 1
        ):
            return self._leaf(y_idx, weight)

        n_features = x.shape[1]
        feature_pool = self._rng.permutation(n_features)[: self._n_features_to_try(n_features)]
        best = None  # (gini, feature, threshold, mask)
        for feature in feature_pool:
            column = x[:, feature]
            values = np.unique(column)
            if len(values) < 2:
                continue
            if len(values) > self.n_thresholds:
                quantiles = np.linspace(0, 1, self.n_thresholds + 2)[1:-1]
                thresholds = np.unique(np.quantile(column, quantiles))
            else:
                thresholds = (values[:-1] + values[1:]) / 2.0
            for threshold in thresholds:
                mask = column <= threshold
                n_left = int(mask.sum())
                if n_left < self.min_samples_leaf or (len(mask) - n_left) < self.min_samples_leaf:
                    continue
                gini = self._weighted_gini(y_idx, weight, mask)
                if best is None or gini < best[0]:
                    best = (gini, feature, threshold, mask)

        if best is None:
            return self._leaf(y_idx, weight)

        _, feature, threshold, mask = best
        node = _Node(feature=int(feature), threshold=float(threshold))
        node.left = self._grow(x[mask], y_idx[mask], weight[mask], depth + 1)
        node.right = self._grow(x[~mask], y_idx[~mask], weight[~mask], depth + 1)
        node.proba = self._leaf(y_idx, weight).proba
        return node

    def _weighted_gini(self, y_idx: np.ndarray, weight: np.ndarray, mask: np.ndarray) -> float:
        total = weight.sum()
        gini = 0.0
        for side_mask in (mask, ~mask):
            w = weight[side_mask]
            side_total = w.sum()
            if side_total <= 0:
                continue
            counts = np.bincount(y_idx[side_mask], weights=w, minlength=self.n_classes_)
            p = counts / side_total
            gini += (side_total / total) * (1.0 - (p ** 2).sum())
        return gini

    # ------------------------------------------------------------------ #
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree must be fitted before predict")
        x = np.asarray(x, dtype=np.float64)
        out = np.zeros((x.shape[0], self.n_classes_))
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.proba
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.classes_[self.predict_proba(x).argmax(axis=1)]


class DecisionStump(DecisionTreeClassifier):
    """Depth-1 tree; the weak learner used by AdaBoost."""

    def __init__(self, n_thresholds: int = 16, seed: int = 0) -> None:
        super().__init__(max_depth=1, n_thresholds=n_thresholds, seed=seed)
