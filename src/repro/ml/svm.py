"""Support-vector machines trained in the primal.

``LinearSVC`` replaces scikit-learn's SVC baseline (one-vs-rest hinge loss,
Pegasos-style SGD).  ``OneClassSVM`` backs the OCSVM anomaly detector: it
uses random Fourier features to approximate an RBF kernel and optimises the
standard one-class objective in the primal.
"""

from __future__ import annotations

import numpy as np

from ..accel.config import memory_budget_bytes
from ..accel.precision import resolve_dtype


class LinearSVC:
    """One-vs-rest linear SVM trained with Pegasos SGD."""

    def __init__(self, c: float = 1.0, n_iter: int = 40, seed: int = 0) -> None:
        self.c = c
        self.n_iter = n_iter
        self.seed = seed
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearSVC":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=int)
        self.classes_ = np.unique(y)
        n_samples, n_features = x.shape
        n_classes = len(self.classes_)
        self.coef_ = np.zeros((n_classes, n_features))
        self.intercept_ = np.zeros(n_classes)
        lam = 1.0 / (self.c * n_samples)
        rng = np.random.default_rng(self.seed)

        for col, cls in enumerate(self.classes_):
            sign = np.where(y == cls, 1.0, -1.0)
            w = np.zeros(n_features)
            b = 0.0
            t = 0
            for _ in range(self.n_iter):
                order = rng.permutation(n_samples)
                for i in order:
                    t += 1
                    eta = 1.0 / (lam * t)
                    margin = sign[i] * (x[i] @ w + b)
                    w *= (1.0 - eta * lam)
                    if margin < 1.0:
                        w += eta * sign[i] * x[i]
                        b += eta * sign[i]
            self.coef_[col] = w
            self.intercept_[col] = b
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model must be fitted before predict")
        return np.asarray(x, dtype=np.float64) @ self.coef_.T + self.intercept_

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        scores = self.decision_function(x)
        shifted = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.classes_[self.decision_function(x).argmax(axis=1)]


class OneClassSVM:
    """One-class SVM on random Fourier features (RBF kernel approximation).

    The decision function is ``w . phi(x) - rho``; negative values are
    anomalous.  :meth:`score_samples` returns ``rho - w . phi(x)`` so that
    larger values mean more anomalous, matching the detector convention.
    """

    def __init__(
        self,
        nu: float = 0.1,
        gamma: float | str = "scale",
        n_components: int = 128,
        n_iter: int = 30,
        seed: int = 0,
        dtype=None,
    ) -> None:
        if not 0.0 < nu <= 1.0:
            raise ValueError("nu must be in (0, 1]")
        self.nu = nu
        self.gamma = gamma
        self.n_components = n_components
        self.n_iter = n_iter
        self.seed = seed
        self.dtype = dtype  # None defers to the accel precision policy
        self._w: np.ndarray | None = None
        self._rho: float = 0.0
        self._omega: np.ndarray | None = None
        self._phase: np.ndarray | None = None

    def _features(self, x: np.ndarray) -> np.ndarray:
        proj = x @ self._omega + self._phase
        return np.sqrt(2.0 / self.n_components) * np.cos(proj)

    def fit(self, x: np.ndarray) -> "OneClassSVM":
        dt = resolve_dtype(self.dtype)
        x = np.asarray(x, dtype=dt)
        n_samples, n_features = x.shape
        rng = np.random.default_rng(self.seed)

        if self.gamma == "scale":
            var = x.var()
            gamma = 1.0 / (n_features * var) if var > 1e-12 else 1.0 / n_features
        else:
            gamma = float(self.gamma)
        self._omega = rng.normal(0.0, np.sqrt(2.0 * gamma),
                                 size=(n_features, self.n_components)).astype(dt, copy=False)
        self._phase = rng.uniform(0.0, 2.0 * np.pi, size=self.n_components).astype(dt, copy=False)

        phi = self._features(x)
        w = phi.mean(axis=0).copy()
        rho = 0.0
        lr = 0.1
        for _ in range(self.n_iter):
            scores = phi @ w - rho
            violating = scores < 0
            # Sub-gradient of: 0.5 ||w||^2 - rho + (1 / (nu n)) sum max(0, rho - w.phi)
            grad_w = w - (phi[violating].sum(axis=0) / (self.nu * n_samples))
            grad_rho = -1.0 + violating.sum() / (self.nu * n_samples)
            w -= lr * grad_w
            rho -= lr * grad_rho
        self._w = w
        self._rho = rho
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self._w is None:
            raise RuntimeError("model must be fitted before scoring")
        x = np.asarray(x, dtype=self._omega.dtype)
        # Chunk the random-feature expansion so scoring scratch stays within
        # the accel memory budget instead of materialising (n, n_components).
        chunk = max(1, memory_budget_bytes() // max(
            2 * self.n_components * x.dtype.itemsize, 1))
        if len(x) <= chunk:
            return self._features(x) @ self._w - self._rho
        out = np.empty(len(x), dtype=x.dtype)
        for start in range(0, len(x), chunk):
            stop = min(start + chunk, len(x))
            out[start:stop] = self._features(x[start:stop]) @ self._w - self._rho
        return out

    def score_samples(self, x: np.ndarray) -> np.ndarray:
        """Anomaly scores: larger means more anomalous."""
        return -self.decision_function(x)
