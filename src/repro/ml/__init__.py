"""``repro.ml`` — classical machine-learning algorithms built on NumPy.

These replace the scikit-learn estimators that the paper's baselines rely
on (KNN, SVC, AdaBoost, RandomForest, Ridge) plus the clustering /
decomposition / one-class tools that the TSAD detectors need.
"""

from .scalers import MinMaxScaler, StandardScaler, zscore, zscore_rows
from .neighbors import KNeighborsClassifier, kneighbors, pairwise_sq_euclidean
from .linear import LogisticRegression, RidgeClassifier, RidgeRegression
from .svm import LinearSVC, OneClassSVM
from .tree import DecisionStump, DecisionTreeClassifier
from .ensemble import AdaBoostClassifier, RandomForestClassifier
from .cluster import KMeans, PCA

__all__ = [
    "MinMaxScaler", "StandardScaler", "zscore", "zscore_rows",
    "KNeighborsClassifier", "kneighbors", "pairwise_sq_euclidean",
    "LogisticRegression", "RidgeClassifier", "RidgeRegression",
    "LinearSVC", "OneClassSVM",
    "DecisionStump", "DecisionTreeClassifier",
    "AdaBoostClassifier", "RandomForestClassifier",
    "KMeans", "PCA",
]
