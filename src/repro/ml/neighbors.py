"""Nearest-neighbour algorithms (scikit-learn replacements)."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def pairwise_sq_euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances between rows of ``a`` and ``b``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a_sq = (a ** 2).sum(axis=1)[:, None]
    b_sq = (b ** 2).sum(axis=1)[None, :]
    d = a_sq + b_sq - 2.0 * a @ b.T
    np.maximum(d, 0.0, out=d)
    return d


def kneighbors(
    query: np.ndarray,
    reference: np.ndarray,
    k: int,
    exclude_self: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return (distances, indices) of the ``k`` nearest reference rows.

    ``exclude_self`` skips the zero-distance self match when ``query`` is the
    same matrix as ``reference`` (used by LOF and KNN-style detectors).
    """
    d = pairwise_sq_euclidean(query, reference)
    if exclude_self:
        np.fill_diagonal(d, np.inf)
    k = min(k, d.shape[1] - (1 if exclude_self else 0))
    k = max(k, 1)
    idx = np.argpartition(d, kth=k - 1, axis=1)[:, :k]
    part = np.take_along_axis(d, idx, axis=1)
    order = np.argsort(part, axis=1)
    idx = np.take_along_axis(idx, order, axis=1)
    dist = np.sqrt(np.take_along_axis(part, order, axis=1))
    return dist, idx


class KNeighborsClassifier:
    """K-nearest-neighbour classifier with distance-weighted voting."""

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform") -> None:
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        self._x = np.asarray(x, dtype=np.float64)
        self._y = np.asarray(y, dtype=int)
        self.classes_ = np.unique(self._y)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("classifier must be fitted before predict")
        dist, idx = kneighbors(np.asarray(x, dtype=np.float64), self._x, self.n_neighbors)
        labels = self._y[idx]
        if self.weights == "distance":
            w = 1.0 / (dist + 1e-9)
        else:
            w = np.ones_like(dist)
        n_classes = len(self.classes_)
        proba = np.zeros((x.shape[0], n_classes))
        class_to_col = {c: i for i, c in enumerate(self.classes_)}
        for col, cls in enumerate(self.classes_):
            proba[:, col] = np.where(labels == cls, w, 0.0).sum(axis=1)
        proba /= np.maximum(proba.sum(axis=1, keepdims=True), 1e-12)
        return proba

    def predict(self, x: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(x)
        return self.classes_[proba.argmax(axis=1)]
