"""Nearest-neighbour algorithms (scikit-learn replacements).

The distance kernels route through :mod:`repro.accel`:
:func:`pairwise_sq_euclidean` gains a symmetric self-join fast path, and
:func:`kneighbors` keeps the historical dense path while the distance
matrix fits the accel memory budget, switching to the memory-budgeted
tiled kernel (:func:`repro.accel.tile_kneighbors`) beyond it — O(tile²)
scratch instead of O(n²), which is what lets LOF/KNN-style detectors
scale to tens of thousands of windows.

Dense-path equivalence with the pre-accel code: bit-for-bit for distinct
query/reference operands; for self-joins the distances inherit the fast
path's symmetrisation — upper triangle bitwise-identical, mirrored lower
triangle within the last ulp of the historical values (see
:func:`pairwise_sq_euclidean`).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..accel.config import memory_budget_bytes
from ..accel.distances import tile_kneighbors
from ..accel.precision import resolve_dtype


def pairwise_sq_euclidean(a: np.ndarray, b: Optional[np.ndarray] = None,
                          dtype=None) -> np.ndarray:
    """Pairwise squared Euclidean distances between rows of ``a`` and ``b``.

    ``b=None`` (or ``b is a``) takes the symmetric self-join fast path: the
    row norms are computed once and the strict upper triangle is mirrored
    onto the lower one.  The diagonal and upper triangle are bitwise
    identical to the historical two-operand computation on the same array
    (asserted by the test suite); the mirrored lower triangle can deviate
    from it by the last ulp wherever BLAS's GEMM output was not exactly
    symmetric — the fast path trades that noise for an exactly symmetric
    result.
    """
    dt = resolve_dtype(dtype)
    self_join = b is None or b is a
    a = np.asarray(a, dtype=dt)
    if self_join:
        a_sq = (a ** 2).sum(axis=1)
        d = a_sq[:, None] + a_sq[None, :] - 2.0 * a @ a.T
        np.maximum(d, 0.0, out=d)
        _mirror_upper(d)
        return d
    b = np.asarray(b, dtype=dt)
    a_sq = (a ** 2).sum(axis=1)[:, None]
    b_sq = (b ** 2).sum(axis=1)[None, :]
    d = a_sq + b_sq - 2.0 * a @ b.T
    np.maximum(d, 0.0, out=d)
    return d


def _mirror_upper(d: np.ndarray, block: int = 1024) -> None:
    """Copy the strict upper triangle of a square matrix onto the lower one."""
    n = d.shape[0]
    for i0 in range(0, n, block):
        i1 = min(i0 + block, n)
        if i0:
            d[i0:i1, :i0] = d[:i0, i0:i1].T
        il, jl = np.tril_indices(i1 - i0, k=-1)
        d[i0 + il, i0 + jl] = d[i0 + jl, i0 + il]


def kneighbors(
    query: np.ndarray,
    reference: np.ndarray,
    k: int,
    exclude_self: bool = False,
    memory_budget_mb: Optional[float] = None,
    dtype=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return (distances, indices) of the ``k`` nearest reference rows.

    ``exclude_self`` skips the zero-distance self match when ``query`` is the
    same matrix as ``reference`` (used by LOF and KNN-style detectors).

    While the full (m, n) distance matrix fits the accel memory budget
    (``REPRO_MEMORY_BUDGET_MB``), this is the historical dense computation —
    bit-for-bit for distinct operands; self-joins go through the
    symmetrised :func:`pairwise_sq_euclidean` fast path, whose mirrored
    lower triangle can sit one ulp from the historical values.  Larger
    problems stream through :func:`repro.accel.tile_kneighbors`; tiled
    results agree with the dense path to the last ulp of the distances,
    but resolve duplicate-distance ties to the lowest index instead of
    ``argpartition``'s arbitrary order.
    """
    dt = resolve_dtype(dtype)
    self_join = reference is query
    query = np.asarray(query, dtype=dt)
    reference = query if self_join else np.asarray(reference, dtype=dt)
    m, n = query.shape[0], reference.shape[0]
    if m * n * dt.itemsize > memory_budget_bytes(memory_budget_mb):
        return tile_kneighbors(
            query, reference if not self_join else query, k,
            exclude_self=exclude_self,
            memory_budget_mb=memory_budget_mb, dtype=dt,
        )
    d = pairwise_sq_euclidean(query, reference if not self_join else None, dtype=dt)
    if exclude_self:
        np.fill_diagonal(d, np.inf)
    k = min(k, d.shape[1] - (1 if exclude_self else 0))
    k = max(k, 1)
    idx = np.argpartition(d, kth=k - 1, axis=1)[:, :k]
    part = np.take_along_axis(d, idx, axis=1)
    order = np.argsort(part, axis=1)
    idx = np.take_along_axis(idx, order, axis=1)
    dist = np.sqrt(np.take_along_axis(part, order, axis=1))
    return dist, idx


class KNeighborsClassifier:
    """K-nearest-neighbour classifier with distance-weighted voting."""

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform") -> None:
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        self._x = np.asarray(x, dtype=np.float64)
        self._y = np.asarray(y, dtype=int)
        self.classes_ = np.unique(self._y)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("classifier must be fitted before predict")
        dist, idx = kneighbors(np.asarray(x, dtype=np.float64), self._x, self.n_neighbors)
        labels = self._y[idx]
        if self.weights == "distance":
            w = 1.0 / (dist + 1e-9)
        else:
            w = np.ones_like(dist)
        n_classes = len(self.classes_)
        proba = np.zeros((x.shape[0], n_classes))
        class_to_col = {c: i for i, c in enumerate(self.classes_)}
        for col, cls in enumerate(self.classes_):
            proba[:, col] = np.where(labels == cls, w, 0.0).sum(axis=1)
        proba /= np.maximum(proba.sum(axis=1, keepdims=True), 1e-12)
        return proba

    def predict(self, x: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(x)
        return self.classes_[proba.argmax(axis=1)]
