"""Feature scaling utilities (scikit-learn replacements)."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Standardise features to zero mean and unit variance."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=np.float64)
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler must be fitted before transform")
        return (np.asarray(x, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)


class MinMaxScaler:
    """Scale features to the [0, 1] range."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        x = np.asarray(x, dtype=np.float64)
        self.min_ = x.min(axis=0)
        rng = x.max(axis=0) - self.min_
        self.range_ = np.where(rng > 1e-12, rng, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("MinMaxScaler must be fitted before transform")
        return (np.asarray(x, dtype=np.float64) - self.min_) / self.range_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)


def zscore(series: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Z-normalise a 1-D series (constant series map to zeros)."""
    series = np.asarray(series, dtype=np.float64)
    std = series.std()
    if std < eps:
        return np.zeros_like(series)
    return (series - series.mean()) / std


def zscore_rows(matrix: np.ndarray, eps: float = 1e-12, dtype=None) -> np.ndarray:
    """Z-normalise every row of a 2-D matrix in one vectorised pass.

    Equivalent to ``np.apply_along_axis(zscore, 1, matrix)`` — row means
    and stds reduce along the same contiguous axis with the same pairwise
    summation, so the result is bitwise identical — without the
    row-at-a-time Python loop, which dominates the detectors' window
    preparation once series reach tens of thousands of windows.
    """
    from ..accel.precision import resolve_dtype  # deferred: accel is optional here

    matrix = np.asarray(matrix, dtype=np.float64)
    mean = matrix.mean(axis=1, keepdims=True)
    std = matrix.std(axis=1, keepdims=True)
    z = (matrix - mean) / np.where(std < eps, 1.0, std)
    z[std[:, 0] < eps] = 0.0
    return z.astype(resolve_dtype(dtype), copy=False)
