"""Clustering and decomposition: k-means and PCA."""

from __future__ import annotations

from typing import Optional

import numpy as np


class KMeans:
    """Lloyd's algorithm with k-means++ initialisation."""

    def __init__(self, n_clusters: int = 8, n_iter: int = 50, seed: int = 0, tol: float = 1e-6) -> None:
        self.n_clusters = n_clusters
        self.n_iter = n_iter
        self.seed = seed
        self.tol = tol
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: float = np.inf

    def fit(self, x: np.ndarray) -> "KMeans":
        x = np.asarray(x, dtype=np.float64)
        n = x.shape[0]
        k = min(self.n_clusters, n)
        rng = np.random.default_rng(self.seed)
        centers = self._kmeanspp(x, k, rng)

        for _ in range(self.n_iter):
            dists = self._sq_dists(x, centers)
            labels = dists.argmin(axis=1)
            new_centers = centers.copy()
            for j in range(k):
                members = x[labels == j]
                if len(members):
                    new_centers[j] = members.mean(axis=0)
                else:
                    new_centers[j] = x[rng.integers(0, n)]
            shift = float(np.abs(new_centers - centers).max())
            centers = new_centers
            if shift < self.tol:
                break

        dists = self._sq_dists(x, centers)
        self.labels_ = dists.argmin(axis=1)
        self.inertia_ = float(dists.min(axis=1).sum())
        self.cluster_centers_ = centers
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise RuntimeError("KMeans must be fitted before predict")
        return self._sq_dists(np.asarray(x, dtype=np.float64), self.cluster_centers_).argmin(axis=1)

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Distances (not squared) from each sample to every centroid."""
        if self.cluster_centers_ is None:
            raise RuntimeError("KMeans must be fitted before transform")
        return np.sqrt(self._sq_dists(np.asarray(x, dtype=np.float64), self.cluster_centers_))

    @staticmethod
    def _sq_dists(x: np.ndarray, centers: np.ndarray) -> np.ndarray:
        # GEMM-based expansion: O(n·k) scratch instead of the (n, k, d)
        # broadcast cube, and BLAS throughput on the dominant term.
        from .neighbors import pairwise_sq_euclidean  # deferred: module cycle

        return pairwise_sq_euclidean(x, np.asarray(centers, dtype=np.float64))

    @staticmethod
    def _kmeanspp(x: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
        n = x.shape[0]
        centers = [x[rng.integers(0, n)]]
        for _ in range(1, k):
            d2 = KMeans._sq_dists(x, np.asarray(centers)).min(axis=1)
            total = d2.sum()
            if total <= 0:
                centers.append(x[rng.integers(0, n)])
                continue
            probs = d2 / total
            centers.append(x[rng.choice(n, p=probs)])
        return np.asarray(centers, dtype=np.float64)


class PCA:
    """Principal component analysis via SVD of the centred data matrix."""

    def __init__(self, n_components: int) -> None:
        self.n_components = n_components
        self.components_: Optional[np.ndarray] = None
        self.mean_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "PCA":
        x = np.asarray(x, dtype=np.float64)
        self.mean_ = x.mean(axis=0)
        centred = x - self.mean_
        _, s, vt = np.linalg.svd(centred, full_matrices=False)
        k = min(self.n_components, vt.shape[0])
        self.components_ = vt[:k]
        var = s ** 2
        self.explained_variance_ratio_ = var[:k] / max(var.sum(), 1e-12)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("PCA must be fitted before transform")
        return (np.asarray(x, dtype=np.float64) - self.mean_) @ self.components_.T

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("PCA must be fitted before inverse_transform")
        return np.asarray(z, dtype=np.float64) @ self.components_ + self.mean_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def reconstruction_error(self, x: np.ndarray) -> np.ndarray:
        """Per-sample squared reconstruction error (anomaly signal)."""
        recon = self.inverse_transform(self.transform(x))
        return ((np.asarray(x, dtype=np.float64) - recon) ** 2).mean(axis=1)
