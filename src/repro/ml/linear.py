"""Linear models: ridge regression/classification and logistic regression."""

from __future__ import annotations

import numpy as np


class RidgeRegression:
    """Closed-form ridge regression ``w = (X^T X + alpha I)^-1 X^T y``."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if self.fit_intercept:
            x_mean = x.mean(axis=0)
            y_mean = y.mean(axis=0)
            xc = x - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(x.shape[1])
            y_mean = 0.0
            xc, yc = x, y
        gram = xc.T @ xc + self.alpha * np.eye(x.shape[1])
        self.coef_ = np.linalg.solve(gram, xc.T @ yc)
        self.intercept_ = y_mean - x_mean @ self.coef_
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model must be fitted before predict")
        return np.asarray(x, dtype=np.float64) @ self.coef_ + self.intercept_


class RidgeClassifier:
    """Ridge regression on one-hot targets; argmax of the scores classifies.

    This is the classifier MiniRocket/Rocket pair with in the paper's
    kernel-based baseline.
    """

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = alpha
        self._ridge = RidgeRegression(alpha=alpha)
        self.classes_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RidgeClassifier":
        y = np.asarray(y, dtype=int)
        self.classes_ = np.unique(y)
        targets = np.full((len(y), len(self.classes_)), -1.0)
        for col, cls in enumerate(self.classes_):
            targets[y == cls, col] = 1.0
        self._ridge.fit(x, targets)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        return self._ridge.predict(x)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        scores = self.decision_function(x)
        shifted = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("model must be fitted before predict")
        return self.classes_[self.decision_function(x).argmax(axis=1)]


class LogisticRegression:
    """Multinomial logistic regression trained with full-batch gradient descent."""

    def __init__(self, lr: float = 0.1, n_iter: int = 300, l2: float = 1e-4) -> None:
        self.lr = lr
        self.n_iter = n_iter
        self.l2 = l2
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=int)
        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)
        col = {c: i for i, c in enumerate(self.classes_)}
        targets = np.zeros((len(y), n_classes))
        targets[np.arange(len(y)), [col[v] for v in y]] = 1.0

        self.coef_ = np.zeros((x.shape[1], n_classes))
        self.intercept_ = np.zeros(n_classes)
        for _ in range(self.n_iter):
            probs = self._softmax(x @ self.coef_ + self.intercept_)
            grad_logits = (probs - targets) / len(y)
            self.coef_ -= self.lr * (x.T @ grad_logits + self.l2 * self.coef_)
            self.intercept_ -= self.lr * grad_logits.sum(axis=0)
        return self

    @staticmethod
    def _softmax(z: np.ndarray) -> np.ndarray:
        z = z - z.max(axis=1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=1, keepdims=True)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model must be fitted before predict")
        return self._softmax(np.asarray(x, dtype=np.float64) @ self.coef_ + self.intercept_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.classes_[self.predict_proba(x).argmax(axis=1)]
