"""Synthetic generators for the 16 TSB-UAD-style dataset families.

The real benchmark cannot be downloaded in this offline environment, so each
family is replaced by a generator whose signal model and anomaly types echo
the description in Table 4 of the paper.  The families are deliberately
heterogeneous so that no single detector dominates everywhere — the property
that makes TSAD model selection a meaningful problem.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from . import signals
from .anomalies import inject_anomalies
from .records import DATASET_NAMES, TimeSeriesRecord


@dataclass(frozen=True)
class FamilyConfig:
    """Configuration of one synthetic dataset family."""

    name: str
    base: Callable[[int, np.random.Generator], np.ndarray]
    anomaly_kinds: Tuple[str, ...]
    noise_std: float = 0.05
    n_anomalies: Tuple[int, int] = (1, 3)
    anomaly_length: Tuple[int, int] = (16, 48)
    magnitude: float = 2.5


# --------------------------------------------------------------------------- #
# base signals per family
# --------------------------------------------------------------------------- #
def _ecg_base(length: int, rng: np.random.Generator) -> np.ndarray:
    return signals.ecg_like(length, beat_period=int(rng.integers(40, 70)), rng=rng)


def _mitdb_base(length: int, rng: np.random.Generator) -> np.ndarray:
    base = signals.ecg_like(length, beat_period=int(rng.integers(50, 90)), rng=rng)
    return base + 0.15 * signals.sine_wave(length, period=length / 3, amplitude=1.0)


def _svdb_base(length: int, rng: np.random.Generator) -> np.ndarray:
    return signals.ecg_like(length, beat_period=int(rng.integers(35, 55)), rng=rng, amplitude=1.2)


def _mgab_base(length: int, rng: np.random.Generator) -> np.ndarray:
    return signals.mackey_glass(length, rng)


def _iops_base(length: int, rng: np.random.Generator) -> np.ndarray:
    return (
        signals.level_steps(length, rng, n_levels=int(rng.integers(3, 7)), step_std=0.8)
        + 0.4 * signals.seasonal_pattern(length, period=max(length // 6, 20), rng=rng)
        + signals.ar1_process(length, rng, phi=0.7, noise_std=0.08)
    )


def _smd_base(length: int, rng: np.random.Generator) -> np.ndarray:
    return (
        signals.level_steps(length, rng, n_levels=int(rng.integers(2, 5)), step_std=0.5)
        + signals.ar1_process(length, rng, phi=0.95, noise_std=0.05)
        + signals.trend(length, slope=rng.uniform(-0.3, 0.3) / max(length, 1))
    )


def _nab_base(length: int, rng: np.random.Generator) -> np.ndarray:
    return (
        signals.seasonal_pattern(length, period=max(length // 8, 24), rng=rng)
        + signals.random_walk(length, rng, step_std=0.02)
    )


def _yahoo_base(length: int, rng: np.random.Generator) -> np.ndarray:
    return (
        signals.sine_mixture(length, [length / 5, length / 23], [1.0, 0.3], rng)
        + signals.trend(length, slope=rng.uniform(0.0, 1.0) / max(length, 1))
        + signals.ar1_process(length, rng, phi=0.5, noise_std=0.05)
    )


def _kdd21_base(length: int, rng: np.random.Generator) -> np.ndarray:
    choice = rng.integers(0, 3)
    if choice == 0:
        return _ecg_base(length, rng)
    if choice == 1:
        return _mgab_base(length, rng)
    return _iops_base(length, rng)


def _sensorscope_base(length: int, rng: np.random.Generator) -> np.ndarray:
    return (
        signals.sine_wave(length, period=max(length // 3, 30), amplitude=1.0, phase=rng.uniform(0, 2 * np.pi))
        + signals.random_walk(length, rng, step_std=0.03)
    )


def _daphnet_base(length: int, rng: np.random.Generator) -> np.ndarray:
    walk = signals.sine_mixture(length, [18, 7], [1.0, 0.4], rng)
    envelope = 0.5 + 0.5 * np.abs(signals.sine_wave(length, period=max(length // 4, 40)))
    return walk * envelope + 0.1 * signals.ar1_process(length, rng, phi=0.6, noise_std=0.2)


def _opportunity_base(length: int, rng: np.random.Generator) -> np.ndarray:
    segments = signals.level_steps(length, rng, n_levels=int(rng.integers(4, 8)), step_std=1.0)
    return segments + signals.sine_mixture(length, [25, 11], [0.4, 0.2], rng)


def _ghl_base(length: int, rng: np.random.Generator) -> np.ndarray:
    heating_cycle = signals.square_wave(length, period=max(length // 6, 40), rng=rng, low=-0.5, high=0.8)
    return heating_cycle + signals.ar1_process(length, rng, phi=0.9, noise_std=0.04)


def _genesis_base(length: int, rng: np.random.Generator) -> np.ndarray:
    return signals.square_wave(length, period=max(length // 10, 25), rng=rng, low=0.0, high=1.0, duty=0.4)


def _occupancy_base(length: int, rng: np.random.Generator) -> np.ndarray:
    occupancy = signals.square_wave(length, period=max(length // 5, 50), rng=rng, low=0.0, high=1.0, duty=0.6)
    return occupancy + 0.3 * signals.seasonal_pattern(length, period=max(length // 5, 50), rng=rng)


def _dodgers_base(length: int, rng: np.random.Generator) -> np.ndarray:
    return signals.seasonal_pattern(length, period=max(length // 7, 30), rng=rng, sharpness=4.0) \
        + 0.1 * signals.ar1_process(length, rng, phi=0.5, noise_std=0.3)


FAMILY_CONFIGS: Dict[str, FamilyConfig] = {
    "Dodgers": FamilyConfig("Dodgers", _dodgers_base, ("spike", "level_shift"), noise_std=0.08),
    "ECG": FamilyConfig("ECG", _ecg_base, ("frequency_change", "amplitude_change"), noise_std=0.04,
                        anomaly_length=(24, 60)),
    "IOPS": FamilyConfig("IOPS", _iops_base, ("spike", "level_shift", "noise_burst"), noise_std=0.06),
    "KDD21": FamilyConfig("KDD21", _kdd21_base, ("spike", "pattern_distortion", "level_shift"), noise_std=0.05),
    "MGAB": FamilyConfig("MGAB", _mgab_base, ("pattern_distortion",), noise_std=0.01,
                         anomaly_length=(24, 56), magnitude=1.5),
    "NAB": FamilyConfig("NAB", _nab_base, ("spike", "level_shift", "flatline"), noise_std=0.06),
    "SensorScope": FamilyConfig("SensorScope", _sensorscope_base, ("flatline", "noise_burst", "spike"),
                                noise_std=0.05),
    "YAHOO": FamilyConfig("YAHOO", _yahoo_base, ("spike", "level_shift"), noise_std=0.04,
                          anomaly_length=(8, 24)),
    "Daphnet": FamilyConfig("Daphnet", _daphnet_base, ("flatline", "amplitude_change"), noise_std=0.06,
                            anomaly_length=(24, 64)),
    "GHL": FamilyConfig("GHL", _ghl_base, ("level_shift", "frequency_change"), noise_std=0.04),
    "Genesis": FamilyConfig("Genesis", _genesis_base, ("flatline", "spike"), noise_std=0.03),
    "MITDB": FamilyConfig("MITDB", _mitdb_base, ("frequency_change", "pattern_distortion"), noise_std=0.05,
                          anomaly_length=(24, 60)),
    "OPPORTUNITY": FamilyConfig("OPPORTUNITY", _opportunity_base, ("level_shift", "noise_burst", "flatline"),
                                noise_std=0.06),
    "Occupancy": FamilyConfig("Occupancy", _occupancy_base, ("level_shift", "flatline"), noise_std=0.04),
    "SMD": FamilyConfig("SMD", _smd_base, ("spike", "level_shift", "noise_burst"), noise_std=0.05),
    "SVDB": FamilyConfig("SVDB", _svdb_base, ("frequency_change", "amplitude_change"), noise_std=0.05,
                         anomaly_length=(24, 56)),
}

# Keep the registry aligned with the documented dataset list.
assert set(FAMILY_CONFIGS) == set(DATASET_NAMES)


def generate_series(
    dataset: str,
    index: int,
    length: int,
    seed: int,
    anomaly_free: bool = False,
) -> TimeSeriesRecord:
    """Generate one labelled series of ``dataset`` family.

    The generator is deterministic in (dataset, index, length, seed), which
    lets the oracle cache and the tests rely on reproducible data.
    """
    if dataset not in FAMILY_CONFIGS:
        raise KeyError(f"unknown dataset family {dataset!r}; available: {sorted(FAMILY_CONFIGS)}")
    config = FAMILY_CONFIGS[dataset]
    # Stable across processes (unlike built-in hash()), so cached oracle
    # results and tests see identical data.
    key = f"{dataset}|{index}|{length}|{seed}".encode("utf-8")
    rng = np.random.default_rng(zlib.crc32(key))

    base = config.base(length, rng)
    base = base + rng.normal(0.0, config.noise_std, size=length)

    if anomaly_free:
        n_anomalies = 0
    else:
        n_anomalies = int(rng.integers(config.n_anomalies[0], config.n_anomalies[1] + 1))
    series, labels, spans = inject_anomalies(
        base,
        rng,
        kinds=config.anomaly_kinds,
        n_anomalies=n_anomalies,
        length_range=config.anomaly_length,
        magnitude=config.magnitude,
    )
    return TimeSeriesRecord(
        name=f"{dataset}_{index}",
        dataset=dataset,
        series=series,
        labels=labels,
        anomalies=spans,
    )


def generate_dataset(
    dataset: str,
    n_series: int,
    length: int = 1600,
    seed: int = 0,
) -> List[TimeSeriesRecord]:
    """Generate ``n_series`` labelled series from one family."""
    return [generate_series(dataset, index, length, seed) for index in range(n_series)]
