"""``repro.data`` — synthetic TSB-UAD-style benchmark data.

Provides the 16 dataset families of the paper (Table 4), anomaly injection,
metadata templating for MKI, windowed selector datasets and the train/test
benchmark protocol.
"""

from .anomalies import INJECTORS, AnomalySpan, inject_anomalies
from .benchmark import BenchmarkSplit, TSBUADBenchmark
from .generators import FAMILY_CONFIGS, generate_dataset, generate_series
from .loaders import (
    labels_to_spans,
    load_series_directory,
    load_series_file,
    save_series_file,
)
from .metadata import describe_record, describe_subsequence
from .records import (
    DATASET_DESCRIPTIONS,
    DATASET_NAMES,
    TEST_DATASET_NAMES,
    TimeSeriesRecord,
)
from .windows import (
    SelectorDataset,
    build_selector_dataset,
    complete_window_count,
    count_windows,
    extract_new_windows,
    extract_windows,
    extract_windows_batch,
    znormalize_windows,
)

__all__ = [
    "INJECTORS", "AnomalySpan", "inject_anomalies",
    "BenchmarkSplit", "TSBUADBenchmark",
    "FAMILY_CONFIGS", "generate_dataset", "generate_series",
    "labels_to_spans", "load_series_directory", "load_series_file", "save_series_file",
    "describe_record", "describe_subsequence",
    "DATASET_DESCRIPTIONS", "DATASET_NAMES", "TEST_DATASET_NAMES", "TimeSeriesRecord",
    "SelectorDataset", "build_selector_dataset", "complete_window_count", "count_windows",
    "extract_new_windows", "extract_windows", "extract_windows_batch", "znormalize_windows",
]
