"""Windowed selector datasets.

The selector is a time-series classifier over fixed-length subsequences
(Sect. 2 of the paper): raw series of variable length are cut into windows
of size ``L``; the selector predicts a TSAD model per window and the final
per-series choice is a majority vote.

:class:`SelectorDataset` bundles everything the KDSelector trainer needs:

* ``windows``       — (N, L) z-normalised subsequences,
* ``hard_labels``   — index of the best detector for the source series,
* ``performances``  — per-window copy of the detector performance vector
  (the knowledge PISL turns into soft labels),
* ``metadata_texts``— natural-language descriptions (the knowledge MKI
  embeds),
* ``series_ids``    — which source series each window came from (used for
  majority voting at evaluation time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .metadata import describe_record
from .records import TimeSeriesRecord


def znormalize_windows(windows: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Z-normalise each row of a (N, L) window matrix in one vectorised pass.

    Constant rows (std below ``eps``) map to zeros, matching
    :func:`repro.ml.scalers.zscore` applied row by row.  Because every row is
    reduced independently along the last axis, the result is bitwise
    identical whether rows from one series or from a whole batch of series
    are stacked together — the property the serving layer's batch path
    relies on.
    """
    windows = np.asarray(windows, dtype=np.float64)
    mean = windows.mean(axis=1, keepdims=True)
    std = windows.std(axis=1, keepdims=True)
    constant = std.ravel() < eps
    out = (windows - mean) / np.where(std < eps, 1.0, std)
    out[constant] = 0.0
    return out


def _pad_series(series: np.ndarray, window: int) -> np.ndarray:
    """Pad a too-short series by repeating its last value (empty → zeros)."""
    if len(series) >= window:
        return series
    fill = series[-1] if len(series) else 0.0
    return np.concatenate([series, np.full(window - len(series), fill)])


def count_windows(length: int, window: int, stride: Optional[int] = None) -> int:
    """Number of windows :func:`extract_windows` yields for a series length.

    The single source of truth for the window count (shared with batched
    extraction and the serving layer's micro-batch budgeting): too-short
    series are padded up to ``window``, so every series yields at least one.
    """
    stride = stride or window
    return (max(length, window) - window) // stride + 1


def complete_window_count(length: int, window: int, stride: Optional[int] = None) -> int:
    """Number of *complete* (un-padded) windows in a series of ``length``.

    Unlike :func:`count_windows`, a series shorter than ``window`` yields
    zero: no padded window is invented.  This is the window arithmetic of
    the streaming layer, where a partial tail must stay pending until enough
    points arrive rather than being padded to a fake window whose content
    would change on every append.  For ``length >= window`` the two counts
    agree.
    """
    stride = stride or window
    if length < window:
        return 0
    return (length - window) // stride + 1


def extract_new_windows(
    series: np.ndarray,
    window: int,
    n_emitted: int,
    stride: Optional[int] = None,
    normalize: bool = True,
) -> np.ndarray:
    """Windows ``n_emitted, n_emitted + 1, ...`` of a growing series.

    This is the incremental companion of :func:`extract_windows`: a stream
    that has already emitted the first ``n_emitted`` complete windows calls
    this after appending points to obtain exactly the windows that newly
    became complete (possibly none — shape ``(0, window)``).

    Because :func:`znormalize_windows` reduces every row independently, the
    returned rows are bitwise identical to rows ``n_emitted:`` of
    ``extract_windows(series, window, stride)`` — incremental extraction can
    never drift from batch extraction.
    """
    series = np.asarray(series, dtype=np.float64).ravel()
    stride = stride or window
    total = complete_window_count(len(series), window, stride)
    if total <= n_emitted:
        return np.empty((0, window), dtype=np.float64)
    starts = stride * np.arange(n_emitted, total)
    windows = series[starts[:, None] + np.arange(window)[None, :]]
    if normalize:
        windows = znormalize_windows(windows)
    return windows


def extract_windows(series: np.ndarray, window: int, stride: Optional[int] = None,
                    normalize: bool = True) -> np.ndarray:
    """Cut a series into (possibly overlapping) fixed-length windows.

    Series shorter than ``window`` are padded by repeating their last value
    so that every series contributes at least one window.
    """
    series = _pad_series(np.asarray(series, dtype=np.float64).ravel(), window)
    stride = stride or window
    n = count_windows(len(series), window, stride)
    idx = np.arange(window)[None, :] + stride * np.arange(n)[:, None]
    windows = series[idx]
    if normalize:
        windows = znormalize_windows(windows)
    return windows


def extract_windows_batch(
    series_list: Sequence[np.ndarray],
    window: int,
    stride: Optional[int] = None,
    normalize: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Window a whole batch of series into one stacked (N, L) matrix.

    Returns ``(windows, offsets)`` where ``windows`` stacks every series'
    windows in order and ``offsets`` has length ``len(series_list) + 1``:
    series ``i`` owns rows ``windows[offsets[i]:offsets[i + 1]]``.

    The per-window values are bitwise identical to calling
    :func:`extract_windows` on each series separately, but normalisation and
    allocation happen once for the whole batch, which is what makes the
    serving layer's batched selector forward pass worthwhile.
    """
    stride = stride or window
    padded: List[np.ndarray] = []
    counts: List[int] = []
    for series in series_list:
        series = _pad_series(np.asarray(series, dtype=np.float64).ravel(), window)
        padded.append(series)
        counts.append(count_windows(len(series), window, stride))

    offsets = np.zeros(len(padded) + 1, dtype=int)
    np.cumsum(counts, out=offsets[1:])
    stacked = np.empty((int(offsets[-1]), window), dtype=np.float64)
    base = np.arange(window)[None, :]
    for i, series in enumerate(padded):
        idx = base + stride * np.arange(counts[i])[:, None]
        stacked[offsets[i]:offsets[i + 1]] = series[idx]
    if normalize:
        stacked = znormalize_windows(stacked)
    return stacked, offsets


@dataclass
class SelectorDataset:
    """Training/evaluation samples for selector learning."""

    windows: np.ndarray
    hard_labels: np.ndarray
    performances: np.ndarray
    metadata_texts: List[str]
    series_ids: np.ndarray
    series_names: List[str]
    series_datasets: List[str]
    detector_names: List[str]
    window_size: int

    def __post_init__(self) -> None:
        self.windows = np.asarray(self.windows, dtype=np.float64)
        self.hard_labels = np.asarray(self.hard_labels, dtype=int)
        self.performances = np.asarray(self.performances, dtype=np.float64)
        self.series_ids = np.asarray(self.series_ids, dtype=int)
        n = len(self.windows)
        if not (len(self.hard_labels) == len(self.performances) == len(self.metadata_texts)
                == len(self.series_ids) == n):
            raise ValueError("all per-window arrays must have the same length")

    def __len__(self) -> int:
        return len(self.windows)

    @property
    def n_classes(self) -> int:
        return len(self.detector_names)

    def subset(self, indices: Sequence[int]) -> "SelectorDataset":
        """Return a new dataset restricted to the given window indices."""
        indices = np.asarray(indices, dtype=int)
        return SelectorDataset(
            windows=self.windows[indices],
            hard_labels=self.hard_labels[indices],
            performances=self.performances[indices],
            metadata_texts=[self.metadata_texts[i] for i in indices],
            series_ids=self.series_ids[indices],
            series_names=self.series_names,
            series_datasets=self.series_datasets,
            detector_names=self.detector_names,
            window_size=self.window_size,
        )

    def train_val_split(self, val_fraction: float = 0.3, seed: int = 0) -> tuple["SelectorDataset", "SelectorDataset"]:
        """Random window-level split (the system UI's Training/Validation split)."""
        if not 0.0 <= val_fraction < 1.0:
            raise ValueError("val_fraction must be in [0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        n_val = int(len(self) * val_fraction)
        return self.subset(order[n_val:]), self.subset(order[:n_val])


def build_selector_dataset(
    records: Sequence[TimeSeriesRecord],
    performance_matrix: np.ndarray,
    detector_names: Sequence[str],
    window: int = 128,
    stride: Optional[int] = None,
    max_windows_per_series: Optional[int] = None,
    seed: int = 0,
) -> SelectorDataset:
    """Assemble the windowed selector dataset from labelled series.

    ``performance_matrix`` has shape (n_series, n_detectors): entry (i, j) is
    the detection performance (e.g. AUC-PR) of detector ``j`` on series
    ``i`` — the oracle knowledge produced by :mod:`repro.eval.oracle`.
    """
    performance_matrix = np.asarray(performance_matrix, dtype=np.float64)
    if performance_matrix.shape != (len(records), len(detector_names)):
        raise ValueError(
            f"performance matrix shape {performance_matrix.shape} does not match "
            f"({len(records)}, {len(detector_names)})"
        )
    rng = np.random.default_rng(seed)

    all_windows: List[np.ndarray] = []
    hard_labels: List[int] = []
    performances: List[np.ndarray] = []
    texts: List[str] = []
    series_ids: List[int] = []

    for series_idx, record in enumerate(records):
        windows = extract_windows(record.series, window, stride=stride)
        if max_windows_per_series is not None and len(windows) > max_windows_per_series:
            keep = rng.choice(len(windows), size=max_windows_per_series, replace=False)
            windows = windows[np.sort(keep)]
        perf = performance_matrix[series_idx]
        label = int(np.argmax(perf))
        text = describe_record(record)
        for row in windows:
            all_windows.append(row)
            hard_labels.append(label)
            performances.append(perf)
            texts.append(text)
            series_ids.append(series_idx)

    return SelectorDataset(
        windows=np.asarray(all_windows),
        hard_labels=np.asarray(hard_labels),
        performances=np.asarray(performances),
        metadata_texts=texts,
        series_ids=np.asarray(series_ids),
        series_names=[r.name for r in records],
        series_datasets=[r.dataset for r in records],
        detector_names=list(detector_names),
        window_size=window,
    )
