"""Natural-language metadata used by the Meta-Knowledge Integration module.

The paper feeds a templated description of each series (dataset domain,
length, number of anomalies, anomaly durations) into a frozen language
model.  :func:`describe_record` reproduces the exact template from
Sect. B.1 of the paper.
"""

from __future__ import annotations

from typing import Iterable

from .records import TimeSeriesRecord


def _format_lengths(lengths: Iterable[int]) -> str:
    lengths = list(lengths)
    if not lengths:
        return ""
    return ", ".join(str(v) for v in lengths)


def describe_record(record: TimeSeriesRecord) -> str:
    """Render the paper's metadata template for one time series.

    Template (Sect. B.1): "This is a time series from dataset [Dataset name],
    [Description]. The length of the series is [Length]. There are [Number of
    anomalies] anomalies in this series. The lengths of the anomalies are
    [lengths]."  The last sentence is omitted when the series has no anomaly.
    """
    parts = [
        f"This is a time series from dataset {record.dataset}, which is {record.domain_description}.",
        f"The length of the series is {record.length}.",
        f"There are {record.n_anomalies} anomalies in this series.",
    ]
    if record.n_anomalies > 0:
        parts.append(f"The lengths of the anomalies are {_format_lengths(record.anomaly_lengths)}.")
    return " ".join(parts)


def describe_subsequence(record: TimeSeriesRecord, start: int, window: int) -> str:
    """Describe a subsequence of a series, restricted to local anomalies.

    Used when metadata is attached per training window rather than per
    series: the anomaly count/durations are those that overlap the window.
    """
    end = start + window
    local = [span for span in record.anomalies if span.start < end and span.end > start]
    parts = [
        f"This is a time series from dataset {record.dataset}, which is {record.domain_description}.",
        f"The length of the series is {window}.",
        f"There are {len(local)} anomalies in this series.",
    ]
    if local:
        lengths = [min(span.end, end) - max(span.start, start) for span in local]
        parts.append(f"The lengths of the anomalies are {_format_lengths(lengths)}.")
    return " ".join(parts)
