"""Loading user-provided time series (the "test on your own data" path).

The demo system lets users upload their own series instead of the bundled
benchmark.  This module reads labelled univariate series from simple file
formats and turns them into :class:`TimeSeriesRecord` objects:

* **CSV / TSV** — one or two columns (``value`` or ``value,label``), with or
  without a header row.
* **NPZ** — arrays ``series`` and optionally ``labels``.
* **Directory** — every ``*.csv`` / ``*.npz`` file inside, one record each.

Anomaly spans are reconstructed from the point labels so that the metadata
template (number of anomalies, durations) works for user data exactly as it
does for the synthetic benchmark.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .anomalies import AnomalySpan
from .records import TimeSeriesRecord

PathLike = Union[str, Path]


def labels_to_spans(labels: np.ndarray, kind: str = "unknown") -> List[AnomalySpan]:
    """Convert point-wise 0/1 labels into contiguous anomaly spans."""
    labels = np.asarray(labels, dtype=int).ravel()
    spans: List[AnomalySpan] = []
    in_span = False
    start = 0
    for i, flag in enumerate(labels):
        if flag and not in_span:
            in_span = True
            start = i
        elif not flag and in_span:
            spans.append(AnomalySpan(start=start, length=i - start, kind=kind))
            in_span = False
    if in_span:
        spans.append(AnomalySpan(start=start, length=len(labels) - start, kind=kind))
    return spans


def _parse_float(token: str) -> Optional[float]:
    try:
        return float(token)
    except ValueError:
        return None


def _read_csv(path: Path, delimiter: Optional[str] = None) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    delimiter = delimiter or ("\t" if path.suffix.lower() in (".tsv", ".tab") else ",")
    values: List[float] = []
    labels: List[float] = []
    has_labels = False
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for row_index, row in enumerate(reader):
            row = [cell.strip() for cell in row if cell.strip() != ""]
            if not row:
                continue
            first = _parse_float(row[0])
            if first is None:
                if row_index == 0:
                    continue  # header row
                raise ValueError(f"{path}: non-numeric value {row[0]!r} at row {row_index}")
            values.append(first)
            if len(row) > 1:
                second = _parse_float(row[1])
                if second is None:
                    raise ValueError(f"{path}: non-numeric label {row[1]!r} at row {row_index}")
                labels.append(second)
                has_labels = True
    if not values:
        raise ValueError(f"{path}: no numeric rows found")
    series = np.asarray(values, dtype=np.float64)
    if has_labels:
        if len(labels) != len(values):
            raise ValueError(f"{path}: some rows are missing the label column")
        return series, (np.asarray(labels) > 0.5).astype(int)
    return series, None


def _read_npz(path: Path) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    with np.load(path, allow_pickle=False) as archive:
        if "series" not in archive:
            raise ValueError(f"{path}: NPZ file must contain a 'series' array")
        series = np.asarray(archive["series"], dtype=np.float64).ravel()
        labels = None
        if "labels" in archive:
            labels = np.asarray(archive["labels"], dtype=int).ravel()
    return series, labels


def load_series_file(
    path: PathLike,
    dataset: str = "Custom",
    name: Optional[str] = None,
    delimiter: Optional[str] = None,
) -> TimeSeriesRecord:
    """Load one labelled (or unlabelled) series from a CSV/TSV/NPZ file."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    if path.suffix.lower() == ".npz":
        series, labels = _read_npz(path)
    elif path.suffix.lower() in (".csv", ".tsv", ".tab", ".txt"):
        series, labels = _read_csv(path, delimiter=delimiter)
    else:
        raise ValueError(f"unsupported file type {path.suffix!r} (expected .csv, .tsv, .txt or .npz)")

    if labels is None:
        labels = np.zeros(len(series), dtype=int)
    if len(labels) != len(series):
        raise ValueError(f"{path}: series ({len(series)}) and labels ({len(labels)}) lengths differ")

    return TimeSeriesRecord(
        name=name or path.stem,
        dataset=dataset,
        series=series,
        labels=labels,
        anomalies=labels_to_spans(labels),
    )


def load_series_directory(
    directory: PathLike,
    dataset: str = "Custom",
    pattern: Sequence[str] = ("*.csv", "*.tsv", "*.txt", "*.npz"),
) -> List[TimeSeriesRecord]:
    """Load every supported file in a directory, sorted by file name."""
    directory = Path(directory)
    if not directory.is_dir():
        raise NotADirectoryError(directory)
    paths: List[Path] = []
    for glob in pattern:
        paths.extend(directory.glob(glob))
    records = [load_series_file(path, dataset=dataset) for path in sorted(set(paths))]
    if not records:
        raise ValueError(f"no time series files found in {directory}")
    return records


def save_series_file(record: TimeSeriesRecord, path: PathLike) -> Path:
    """Write a record back to CSV (value,label per row) or NPZ."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix.lower() == ".npz":
        np.savez(path, series=record.series, labels=record.labels)
        return path
    if path.suffix.lower() in (".csv", ".tsv", ".txt"):
        delimiter = "\t" if path.suffix.lower() == ".tsv" else ","
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle, delimiter=delimiter)
            writer.writerow(["value", "label"])
            for value, label in zip(record.series, record.labels):
                writer.writerow([f"{value:.10g}", int(label)])
        return path
    raise ValueError(f"unsupported output type {path.suffix!r}")
