"""Base waveform generators for the synthetic TSB-UAD-style benchmark.

Each function returns a 1-D float array.  The 16 dataset families in
:mod:`repro.data.generators` compose these primitives so that the resulting
collections are heterogeneous in the same way the real benchmark is:
periodic medical signals, chaotic series, noisy server metrics, slowly
drifting environmental sensors, switching industrial processes, and so on.
"""

from __future__ import annotations

import numpy as np


def sine_wave(length: int, period: float, amplitude: float = 1.0, phase: float = 0.0) -> np.ndarray:
    """Plain sinusoid."""
    t = np.arange(length)
    return amplitude * np.sin(2.0 * np.pi * t / period + phase)


def sine_mixture(length: int, periods, amplitudes, rng: np.random.Generator) -> np.ndarray:
    """Sum of sinusoids with random phases."""
    out = np.zeros(length)
    for period, amplitude in zip(periods, amplitudes):
        out += sine_wave(length, period, amplitude, phase=rng.uniform(0, 2 * np.pi))
    return out


def ecg_like(length: int, beat_period: int, rng: np.random.Generator, amplitude: float = 1.0) -> np.ndarray:
    """Synthetic electrocardiogram: a sharp QRS-like spike plus P/T bumps per beat."""
    t = np.arange(beat_period, dtype=np.float64)
    centre = beat_period * 0.45
    qrs = amplitude * np.exp(-0.5 * ((t - centre) / (beat_period * 0.02 + 1.0)) ** 2)
    p_wave = 0.18 * amplitude * np.exp(-0.5 * ((t - beat_period * 0.28) / (beat_period * 0.05 + 1.0)) ** 2)
    t_wave = 0.32 * amplitude * np.exp(-0.5 * ((t - beat_period * 0.68) / (beat_period * 0.07 + 1.0)) ** 2)
    beat = qrs + p_wave + t_wave - 0.12 * amplitude

    n_beats = length // beat_period + 2
    series = np.concatenate([beat * (1.0 + 0.04 * rng.normal()) for _ in range(n_beats)])
    return series[:length]


def mackey_glass(length: int, rng: np.random.Generator, tau: int = 17, beta: float = 0.2,
                 gamma: float = 0.1, n: int = 10, warmup: int = 500) -> np.ndarray:
    """Mackey-Glass delay differential equation (Euler discretisation).

    The MGAB benchmark is built from exactly this chaotic system.
    """
    total = length + warmup
    x = np.zeros(total + tau)
    x[:tau] = 1.2 + 0.05 * rng.normal(size=tau)
    for i in range(tau, total + tau - 1):
        x[i + 1] = x[i] + beta * x[i - tau] / (1.0 + x[i - tau] ** n) - gamma * x[i]
    return x[tau + warmup:tau + warmup + length]


def random_walk(length: int, rng: np.random.Generator, step_std: float = 0.05, drift: float = 0.0) -> np.ndarray:
    """Gaussian random walk with optional drift."""
    steps = rng.normal(drift, step_std, size=length)
    return np.cumsum(steps)


def ar1_process(length: int, rng: np.random.Generator, phi: float = 0.9, noise_std: float = 0.1) -> np.ndarray:
    """First-order autoregressive process."""
    out = np.zeros(length)
    noise = rng.normal(0.0, noise_std, size=length)
    for i in range(1, length):
        out[i] = phi * out[i - 1] + noise[i]
    return out


def square_wave(length: int, period: int, rng: np.random.Generator, low: float = 0.0,
                high: float = 1.0, duty: float = 0.5, jitter: float = 0.05) -> np.ndarray:
    """Square wave with per-cycle duty-cycle jitter (occupancy / actuator style)."""
    out = np.full(length, low, dtype=np.float64)
    pos = 0
    while pos < length:
        cycle_duty = np.clip(duty + jitter * rng.normal(), 0.1, 0.9)
        on = int(period * cycle_duty)
        out[pos:pos + on] = high
        pos += period
    return out


def level_steps(length: int, rng: np.random.Generator, n_levels: int = 5, step_std: float = 1.0) -> np.ndarray:
    """Piecewise-constant signal (web-service load / machine state style)."""
    boundaries = np.sort(rng.choice(np.arange(1, length - 1), size=max(n_levels - 1, 1), replace=False))
    levels = np.cumsum(rng.normal(0.0, step_std, size=n_levels))
    out = np.zeros(length)
    start = 0
    for i, end in enumerate(list(boundaries) + [length]):
        out[start:end] = levels[i]
        start = end
    return out


def seasonal_pattern(length: int, period: int, rng: np.random.Generator, sharpness: float = 3.0) -> np.ndarray:
    """Asymmetric repeating daily-traffic-like pattern (rush-hour bumps)."""
    t = np.arange(length) % period
    base = np.exp(-0.5 * ((t - 0.35 * period) / (period / (2 * sharpness))) ** 2)
    base += 0.7 * np.exp(-0.5 * ((t - 0.75 * period) / (period / (2 * sharpness))) ** 2)
    return base * (1.0 + 0.05 * rng.normal(size=length))


def trend(length: int, slope: float) -> np.ndarray:
    """Linear trend."""
    return slope * np.arange(length, dtype=np.float64)
