"""Data records shared across the benchmark, oracle and selector pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .anomalies import AnomalySpan

#: Domain descriptions lifted from Table 4 of the paper (abridged); these are
#: the natural-language dataset descriptions consumed by the MKI module.
DATASET_DESCRIPTIONS: Dict[str, str] = {
    "Dodgers": "a loop sensor data for the Glendale on-ramp for the 101 North freeway in Los Angeles, "
               "where anomalies represent unusual traffic after a Dodgers game",
    "ECG": "a standard electrocardiogram dataset where the anomalies represent ventricular premature contractions",
    "IOPS": "a dataset with performance indicators that reflect the scale, quality of web services, "
            "and health status of a machine",
    "KDD21": "a composite dataset released in a recent SIGKDD 2021 competition",
    "MGAB": "composed of Mackey-Glass time series with non-trivial anomalies exhibiting chaotic behavior",
    "NAB": "composed of labeled real-world and artificial time series including AWS server metrics, "
           "online advertisement clicking rates, real time traffic data and Twitter mentions",
    "SensorScope": "a collection of environmental data, such as temperature, humidity and solar radiation, "
                   "collected from a tiered sensor measurement system",
    "YAHOO": "a dataset published by Yahoo labs consisting of real and synthetic time series based on "
             "real production traffic to Yahoo systems",
    "Daphnet": "the annotated readings of acceleration sensors on Parkinson's disease patients that "
               "experience freezing of gait during walking tasks",
    "GHL": "a Gasoil Heating Loop dataset containing the status of reservoirs such as temperature and level, "
           "where anomalies indicate changes in max temperature or pump frequency",
    "Genesis": "a portable pick-and-place demonstrator which uses an air tank to supply gripping and storage units",
    "MITDB": "half-hour excerpts of two-channel ambulatory ECG recordings from the BIH Arrhythmia Laboratory",
    "OPPORTUNITY": "motion sensor readings recorded while users executed typical daily activities, "
                   "devised to benchmark human activity recognition algorithms",
    "Occupancy": "experimental data for binary room-occupancy classification from temperature, humidity, "
                 "light and CO2 measurements",
    "SMD": "a five-week-long server machine dataset collected from a large Internet company with three "
           "groups of entities from 28 different machines",
    "SVDB": "half-hour ECG recordings chosen to supplement supraventricular arrhythmia examples from the "
            "MIT-BIH Arrhythmia Database",
}

#: Order used throughout the reproduction (matches Table 4).
DATASET_NAMES: List[str] = list(DATASET_DESCRIPTIONS)

#: The 14 subsets used as test data in Fig. 4 (Dodgers and Occupancy are train-only).
TEST_DATASET_NAMES: List[str] = [
    name for name in DATASET_NAMES if name not in ("Dodgers", "Occupancy")
]


@dataclass
class TimeSeriesRecord:
    """A labelled univariate time series plus its provenance metadata."""

    name: str
    dataset: str
    series: np.ndarray
    labels: np.ndarray
    anomalies: List[AnomalySpan] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.series = np.asarray(self.series, dtype=np.float64).ravel()
        self.labels = np.asarray(self.labels, dtype=int).ravel()
        if self.series.shape != self.labels.shape:
            raise ValueError(
                f"series and labels must align: {self.series.shape} vs {self.labels.shape}"
            )

    @property
    def length(self) -> int:
        return int(len(self.series))

    @property
    def n_anomalies(self) -> int:
        return len(self.anomalies)

    @property
    def anomaly_lengths(self) -> List[int]:
        return [span.length for span in self.anomalies]

    @property
    def domain_description(self) -> str:
        return DATASET_DESCRIPTIONS.get(self.dataset, "a univariate time series dataset")

    def __repr__(self) -> str:
        return (
            f"TimeSeriesRecord(name={self.name!r}, dataset={self.dataset!r}, "
            f"length={self.length}, anomalies={self.n_anomalies})"
        )
