"""Anomaly injectors for the synthetic benchmark.

Every injector mutates a copy of the input series over a chosen interval and
returns the new series together with the binary point labels.  The variety of
anomaly types (spikes, level shifts, flatlines, noise bursts, pattern
distortions, frequency changes) is what makes different detectors win on
different dataset families, which is the property the model-selection
experiments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class AnomalySpan:
    """A labelled anomalous interval ``[start, start + length)``."""

    start: int
    length: int
    kind: str

    @property
    def end(self) -> int:
        return self.start + self.length


def _scale(series: np.ndarray) -> float:
    spread = float(series.std())
    return spread if spread > 1e-9 else 1.0


def inject_spike(series: np.ndarray, start: int, length: int, rng: np.random.Generator,
                 magnitude: float = 3.0) -> np.ndarray:
    """Additive spike / dip over the interval."""
    out = series.copy()
    sign = rng.choice([-1.0, 1.0])
    bump = magnitude * _scale(series) * np.hanning(max(length, 2))[:length]
    out[start:start + length] += sign * bump
    return out


def inject_level_shift(series: np.ndarray, start: int, length: int, rng: np.random.Generator,
                       magnitude: float = 2.5) -> np.ndarray:
    """Constant offset over the interval (e.g. a stuck valve or config change)."""
    out = series.copy()
    sign = rng.choice([-1.0, 1.0])
    out[start:start + length] += sign * magnitude * _scale(series)
    return out


def inject_noise_burst(series: np.ndarray, start: int, length: int, rng: np.random.Generator,
                       magnitude: float = 3.0) -> np.ndarray:
    """High-variance noise over the interval (sensor interference)."""
    out = series.copy()
    out[start:start + length] += rng.normal(0.0, magnitude * _scale(series) * 0.5, size=length)
    return out


def inject_flatline(series: np.ndarray, start: int, length: int, rng: np.random.Generator,
                    magnitude: float = 0.0) -> np.ndarray:
    """Freeze the signal at its value just before the interval (stuck sensor)."""
    del magnitude
    out = series.copy()
    out[start:start + length] = out[max(start - 1, 0)]
    return out


def inject_amplitude_change(series: np.ndarray, start: int, length: int, rng: np.random.Generator,
                            magnitude: float = 2.0) -> np.ndarray:
    """Multiply the local oscillation around its mean by a factor."""
    out = series.copy()
    segment = out[start:start + length]
    local_mean = segment.mean()
    factor = magnitude if rng.random() < 0.5 else 1.0 / magnitude
    out[start:start + length] = local_mean + factor * (segment - local_mean)
    return out


def inject_pattern_distortion(series: np.ndarray, start: int, length: int, rng: np.random.Generator,
                              magnitude: float = 1.0) -> np.ndarray:
    """Replace the interval with a smoothly warped version of itself.

    This produces subtle anomalies (as in MGAB) that point-wise detectors
    struggle with but forecasting / discord detectors can find.
    """
    out = series.copy()
    segment = out[start:start + length]
    warp = np.interp(
        np.linspace(0, length - 1, length) + magnitude * np.sin(np.linspace(0, 3 * np.pi, length)),
        np.arange(length),
        segment,
    )
    out[start:start + length] = warp + 0.05 * magnitude * _scale(series) * rng.normal(size=length)
    return out


def inject_frequency_change(series: np.ndarray, start: int, length: int, rng: np.random.Generator,
                            magnitude: float = 2.0) -> np.ndarray:
    """Locally compress the signal in time (e.g. premature heart beats)."""
    out = series.copy()
    src_length = min(len(series) - start, int(length * magnitude))
    if src_length <= 2:
        return inject_spike(series, start, length, rng)
    source = out[start:start + src_length]
    out[start:start + length] = np.interp(
        np.linspace(0, src_length - 1, length), np.arange(src_length), source
    )
    return out


Injector = Callable[[np.ndarray, int, int, np.random.Generator, float], np.ndarray]

INJECTORS: Dict[str, Injector] = {
    "spike": inject_spike,
    "level_shift": inject_level_shift,
    "noise_burst": inject_noise_burst,
    "flatline": inject_flatline,
    "amplitude_change": inject_amplitude_change,
    "pattern_distortion": inject_pattern_distortion,
    "frequency_change": inject_frequency_change,
}


def inject_anomalies(
    series: np.ndarray,
    rng: np.random.Generator,
    kinds: Sequence[str],
    n_anomalies: int,
    length_range: Tuple[int, int],
    magnitude: float = 2.5,
    margin: int = 32,
) -> Tuple[np.ndarray, np.ndarray, List[AnomalySpan]]:
    """Inject ``n_anomalies`` non-overlapping anomalies of the given kinds.

    Returns the modified series, the point-wise binary labels and the list of
    injected spans.  Unknown kinds raise ``KeyError`` so configuration typos
    fail loudly.
    """
    series = np.asarray(series, dtype=np.float64).copy()
    labels = np.zeros(len(series), dtype=int)
    spans: List[AnomalySpan] = []
    for kind in kinds:
        if kind not in INJECTORS:
            raise KeyError(f"unknown anomaly kind {kind!r}; available: {sorted(INJECTORS)}")

    attempts = 0
    while len(spans) < n_anomalies and attempts < 50 * max(n_anomalies, 1):
        attempts += 1
        length = int(rng.integers(length_range[0], length_range[1] + 1))
        max_start = len(series) - length - margin
        if max_start <= margin:
            break
        start = int(rng.integers(margin, max_start))
        if labels[max(0, start - margin):start + length + margin].any():
            continue
        kind = str(rng.choice(list(kinds)))
        series = INJECTORS[kind](series, start, length, rng, magnitude)
        labels[start:start + length] = 1
        spans.append(AnomalySpan(start=start, length=length, kind=kind))

    spans.sort(key=lambda s: s.start)
    return series, labels, spans
