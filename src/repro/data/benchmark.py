"""Benchmark assembly following the paper's train/test protocol.

The paper uses the 16 TSB-UAD subsets: the training set combines samples
from all 16 datasets, while series from 14 subsets are used for testing
(Fig. 4 reports per-dataset results for those 14).  This module builds the
same structure from the synthetic generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .generators import generate_series
from .records import DATASET_NAMES, TEST_DATASET_NAMES, TimeSeriesRecord


@dataclass
class BenchmarkSplit:
    """Train/test series of the benchmark."""

    train_records: List[TimeSeriesRecord]
    test_records: Dict[str, List[TimeSeriesRecord]]

    @property
    def all_test_records(self) -> List[TimeSeriesRecord]:
        return [record for records in self.test_records.values() for record in records]

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-dataset counts, useful for logging and sanity tests."""
        out: Dict[str, Dict[str, int]] = {}
        for record in self.train_records:
            out.setdefault(record.dataset, {"train": 0, "test": 0})["train"] += 1
        for dataset, records in self.test_records.items():
            out.setdefault(dataset, {"train": 0, "test": 0})["test"] += len(records)
        return out


@dataclass
class TSBUADBenchmark:
    """Synthetic stand-in for the 16 TSB-UAD subsets used by the paper.

    Parameters mirror the experimental scale knobs: how many series each
    family contributes to training and testing, and how long the series are.
    The default sizes are deliberately small so that the full pipeline
    (oracle labelling + selector learning + evaluation) runs in minutes on a
    laptop; the benchmark harness scales them up.
    """

    n_train_per_dataset: int = 2
    n_test_per_dataset: int = 2
    series_length: int = 1200
    seed: int = 7
    train_datasets: Sequence[str] = field(default_factory=lambda: list(DATASET_NAMES))
    test_datasets: Sequence[str] = field(default_factory=lambda: list(TEST_DATASET_NAMES))

    def load(self) -> BenchmarkSplit:
        """Generate the benchmark split deterministically."""
        train_records = [
            generate_series(dataset, index, self.series_length, self.seed)
            for dataset in self.train_datasets
            for index in range(self.n_train_per_dataset)
        ]
        test_records = {
            dataset: [
                # Offset the index so test series never coincide with training ones.
                generate_series(dataset, 1000 + index, self.series_length, self.seed)
                for index in range(self.n_test_per_dataset)
            ]
            for dataset in self.test_datasets
        }
        return BenchmarkSplit(train_records=train_records, test_records=test_records)
