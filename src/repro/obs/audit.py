"""Append-only audit log of selection decisions, with bit-exact replay.

Every consequential runtime decision — a selection, a drift-triggered
re-selection, a cache eviction storm, a shard restart — can be recorded as
one JSON line in an append-only log.  Selection events carry **content
hashes of their inputs** (the same blake2b fingerprint the serving cache
keys on, plus the windowing configuration), so any audited decision can be
replayed bit-for-bit later: :func:`replay_selection` re-extracts the
windows from the hashed series prefix, re-runs the selector through the
same chunk-padded predict path and re-aggregates the same vote rows.

The log itself is dumb on purpose: monotonically sequenced dicts, written
eagerly (one ``write`` + ``flush`` per event) and mirrored in a bounded
in-memory ring for :meth:`AuditLog.events` queries.  Timestamps are only
attached when an explicit ``clock`` is supplied — by default events are
clock-free, so two runs of the same ticks produce byte-identical logs.

:data:`NULL_AUDIT` is the default everywhere: ``enabled`` is ``False`` and
:meth:`NullAuditLog.record` does nothing, so instrumented code guards
event assembly behind ``if audit.enabled`` and pays one attribute read
when auditing is off.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np


def content_hash(series: np.ndarray, extra: Iterable[object] = ()) -> str:
    """The serving cache's content fingerprint (dtype + shape + bytes)."""
    from ..serving.cache import series_fingerprint  # deferred: serving imports obs

    return series_fingerprint(series, extra=extra)


class AuditLog:
    """Append-only, sequence-numbered JSONL event log."""

    enabled = True

    def __init__(self, path: Optional[object] = None, keep: int = 4096,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.path = path
        self.clock = clock
        self._events: "deque[Dict[str, object]]" = deque(maxlen=keep)
        self._seq = 0
        self._lock = threading.Lock()
        if path is not None:
            Path(path).parent.mkdir(parents=True, exist_ok=True)
            self._file = open(path, "a", encoding="utf-8")
        else:
            self._file = None

    # ------------------------------------------------------------------ #
    def record(self, event: str, **fields: object) -> Dict[str, object]:
        """Append one event; returns the stored dict (seq included)."""
        with self._lock:
            self._seq += 1
            entry: Dict[str, object] = {"seq": self._seq, "event": event}
            if self.clock is not None:
                entry["ts"] = self.clock()
            entry.update(fields)
            self._events.append(entry)
            if self._file is not None:
                self._file.write(json.dumps(entry) + "\n")
                self._file.flush()
        return entry

    def events(self, event: Optional[str] = None,
               stream: Optional[str] = None) -> List[Dict[str, object]]:
        """Recorded events (bounded by ``keep``), optionally filtered."""
        with self._lock:
            entries = list(self._events)
        if event is not None:
            entries = [e for e in entries if e.get("event") == event]
        if stream is not None:
            entries = [e for e in entries if e.get("stream") == stream]
        return entries

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    @staticmethod
    def read(path) -> List[Dict[str, object]]:
        """Load every event of a JSONL audit file (skips blank lines)."""
        events = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
        return events

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:
        return f"AuditLog(seq={self._seq}, path={self.path!r})"


class NullAuditLog:
    """The default audit log: records nothing, costs one attribute read."""

    enabled = False

    def record(self, event: str, **fields: object) -> None:
        return None

    def events(self, event: Optional[str] = None,
               stream: Optional[str] = None) -> List[Dict[str, object]]:
        return []

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullAuditLog()"


NULL_AUDIT = NullAuditLog()


# --------------------------------------------------------------------------- #
# replay: recompute an audited selection decision bit-for-bit
# --------------------------------------------------------------------------- #
def selection_inputs(series: np.ndarray, window: int, stride: int,
                     aggregation: str, vote_start: int,
                     predict_batch_size: int) -> Dict[str, object]:
    """The replayable ``inputs`` block of a selection audit event."""
    series = np.ascontiguousarray(np.asarray(series, dtype=np.float64))
    return {
        "series_hash": content_hash(series, extra=(window, stride, aggregation)),
        "length": int(len(series)),
        "window": int(window),
        "stride": int(stride),
        "aggregation": str(aggregation),
        "vote_start": int(vote_start),
        "predict_batch_size": int(predict_batch_size),
    }


def replay_selection(event: Dict[str, object], series: np.ndarray,
                     selector) -> Dict[str, object]:
    """Recompute a recorded selection from its content-hashed inputs.

    ``series`` must contain (a prefix reaching) the audited stream bytes;
    the recorded hash is verified before anything is computed.  The
    recomputation follows the engine's own path — complete windows only,
    the chunk-padded selector predict, the batch pipeline's aggregation
    over the recorded vote range — so on the NN selector path the returned
    votes are bitwise-equal to the audited ones.

    Raises ``ValueError`` on hash mismatch or a provisional (pre-window)
    event, which has no complete-window vote to replay.
    """
    from ..data.windows import extract_new_windows  # deferred: heavy import chain
    from ..eval.evaluation import aggregate_window_probas
    from ..streaming.selector import StreamingSelector

    if event.get("event") != "selection":
        raise ValueError(f"not a selection event: {event.get('event')!r}")
    if event.get("provisional"):
        raise ValueError("provisional selections (no complete window) "
                         "are recomputed every tick and cannot be replayed")
    inputs = event.get("inputs")
    if not inputs:
        raise ValueError("event carries no replayable inputs")

    series = np.ascontiguousarray(
        np.asarray(series, dtype=np.float64).ravel()[: int(inputs["length"])])
    if len(series) != int(inputs["length"]):
        raise ValueError(f"series too short: {len(series)} < {inputs['length']}")
    window, stride = int(inputs["window"]), int(inputs["stride"])
    aggregation = str(inputs["aggregation"])
    observed = content_hash(series, extra=(window, stride, aggregation))
    if observed != inputs["series_hash"]:
        raise ValueError(f"content hash mismatch: {observed} != {inputs['series_hash']}")

    votes: Dict[str, float] = dict(event["votes"])
    streaming = StreamingSelector(
        selector,
        n_classes=len(votes),
        window=window,
        stride=stride,
        aggregation=aggregation,
        predict_batch_size=int(inputs["predict_batch_size"]),
    )
    windows = extract_new_windows(series, window, n_emitted=0, stride=stride)
    probas = streaming.predict_proba(windows)
    active = probas[int(inputs["vote_start"]):]
    if not len(active):
        raise ValueError("recorded vote range is empty")
    choice, aggregated = aggregate_window_probas(active, aggregation)
    names = list(votes)
    return {
        "stream": event.get("stream"),
        "selected_index": int(choice),
        "selected_model": names[int(choice)] if int(choice) < len(names) else None,
        "votes": {name: float(aggregated[k]) for k, name in enumerate(names)},
        "n_windows": int(len(active)),
    }
