"""``repro.obs`` — zero-dependency observability for the runtime layers.

Metrics, tracing, auditing and explanation for everything that serves
selections: the serving cache, the streaming engine and the sharded
service.  The cardinal rule is that observability **never perturbs the
computation** — metrics and audit events only read state, spans only read
a clock — so selections and scores stay bitwise-identical with
instrumentation on or off (pinned in ``tests/test_obs.py``).

* :mod:`repro.obs.metrics` — ``Counter``/``Gauge``/``Histogram``, the
  registry with a near-zero-cost no-op mode, Prometheus text exposition,
* :mod:`repro.obs.trace`   — explicit-clock spans with parent/child
  nesting, exported as JSONL,
* :mod:`repro.obs.audit`   — append-only JSONL log of selections,
  re-selections, drift events, eviction storms and shard restarts, each
  selection carrying content-hashed inputs; :func:`replay_selection`
  recomputes an audited decision bit-for-bit,
* :mod:`repro.obs.explain` — the ``explain(stream_id)`` surface: vote
  breakdown, winner margin and drift trajectory, from a live engine or
  from the audit log alone.

The default registry/tracer/audit are all disabled no-ops; the CLI flags
(``--metrics-output``, ``--trace``, ``--audit``) and ``repro.obs.metrics.enable()``
switch them on.  See ``docs/observability.md`` for the metric catalogue
and the audit schema.
"""

from .audit import NULL_AUDIT, AuditLog, NullAuditLog, content_hash, replay_selection, selection_inputs
from .explain import explain_from_audit, explain_stream, format_explain
from .metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    NULL_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetric,
    default_registry,
    disable,
    enable,
    enabled,
    set_default_registry,
)
from .trace import NULL_TRACER, NullTracer, Span, Tracer, default_tracer, set_default_tracer, span

__all__ = [
    "AuditLog", "NullAuditLog", "NULL_AUDIT", "content_hash",
    "replay_selection", "selection_inputs",
    "explain_from_audit", "explain_stream", "format_explain",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullMetric", "NULL_METRIC",
    "DEFAULT_COUNT_BUCKETS", "DEFAULT_LATENCY_BUCKETS",
    "default_registry", "set_default_registry", "enable", "disable", "enabled",
    "Span", "Tracer", "NullTracer", "NULL_TRACER",
    "default_tracer", "set_default_tracer", "span",
]
