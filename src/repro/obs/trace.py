"""Lightweight tracing: explicit-clock spans with parent/child nesting.

A span is one timed region of work — ``span("engine.flush", streams=4)``
— recorded with a start/end read from an **explicit, injectable clock**
(default :func:`time.perf_counter`).  Nothing about the traced computation
changes: spans only read the clock around it, which is what keeps ticks
deterministic and the bitwise guarantees untouched.

Nesting is tracked per thread: a span opened while another span of the
same tracer is active on the same thread becomes its child
(``parent_id``), so one flush decomposes into its forward-pass and
scoring sub-spans without any plumbing at the call sites.

Finished spans are kept in a bounded in-memory ring (:attr:`Tracer.spans`)
and, when the tracer was built with a ``sink``, appended as JSON lines —
one object per span — so a long run can be inspected offline.

The module-level :func:`span` helper forwards to the process-wide default
tracer, which is a no-op :class:`NullTracer` until
:func:`set_default_tracer` installs a real one: an un-traced process pays
one function call and zero clock reads per instrumentation site.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Dict, List, Optional


class Span:
    """One finished (or in-flight) timed region."""

    __slots__ = ("name", "span_id", "parent_id", "attrs", "start_s", "end_s")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 attrs: Dict[str, object], start_s: float) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start_s = start_s
        self.end_s: Optional[float] = None

    @property
    def duration_s(self) -> Optional[float]:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation (one JSONL line per span)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id})"


class _SpanHandle:
    """Context manager that finishes its span on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info) -> bool:
        self._tracer._finish(self.span)
        return False


class _NullSpanHandle:
    """Shared do-nothing context manager (the default tracer's answer)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN_HANDLE = _NullSpanHandle()


class Tracer:
    """Collect spans with an injectable clock and optional JSONL sink."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 sink: Optional[object] = None, keep: int = 4096) -> None:
        self.clock = clock
        self._spans: "deque[Span]" = deque(maxlen=keep)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 0
        self._sink_file = None
        self._sink_owned = False
        if sink is not None:
            if hasattr(sink, "write"):
                self._sink_file = sink
            else:
                Path(sink).parent.mkdir(parents=True, exist_ok=True)
                self._sink_file = open(sink, "a", encoding="utf-8")
                self._sink_owned = True

    # ------------------------------------------------------------------ #
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: object) -> _SpanHandle:
        """Open a span; use as ``with tracer.span("engine.flush", n=3):``."""
        stack = self._stack()
        with self._lock:
            self._next_id += 1
            span_id = self._next_id
        parent_id = stack[-1].span_id if stack else None
        span = Span(name, span_id, parent_id, attrs, self.clock())
        stack.append(span)
        return _SpanHandle(self, span)

    def _finish(self, span: Span) -> None:
        span.end_s = self.clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - out-of-order exit
            stack.remove(span)
        with self._lock:
            self._spans.append(span)
            if self._sink_file is not None:
                self._sink_file.write(json.dumps(span.as_dict()) + "\n")
                self._sink_file.flush()

    # ------------------------------------------------------------------ #
    @property
    def spans(self) -> List[Span]:
        """Finished spans, oldest first (bounded by ``keep``)."""
        with self._lock:
            return list(self._spans)

    def export(self) -> List[Dict[str, object]]:
        """Finished spans as JSON-ready dicts."""
        return [span.as_dict() for span in self.spans]

    def close(self) -> None:
        if self._sink_owned and self._sink_file is not None:
            self._sink_file.close()
            self._sink_file = None

    def __repr__(self) -> str:
        return f"Tracer(spans={len(self._spans)})"


class NullTracer:
    """The default: every span is the shared no-op context manager."""

    enabled = False

    def span(self, name: str, **attrs: object) -> _NullSpanHandle:
        return _NULL_SPAN_HANDLE

    @property
    def spans(self) -> List[Span]:
        return []

    def export(self) -> List[Dict[str, object]]:
        return []

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_TRACER = NullTracer()
_default_tracer: object = NULL_TRACER


def default_tracer():
    """The process-wide tracer the :func:`span` helper forwards to."""
    return _default_tracer


def set_default_tracer(tracer: Optional[object]):
    """Install (or, with ``None``, remove) the default tracer; returns the old."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer if tracer is not None else NULL_TRACER
    return previous


def span(name: str, **attrs: object):
    """Open a span on the default tracer (a no-op until one is installed)."""
    return _default_tracer.span(name, **attrs)
