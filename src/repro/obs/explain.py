"""The ``explain`` surface: why did this stream pick that detector?

Two entry points answer the same question from two sources:

* :func:`explain_stream` interrogates a **live** :class:`StreamEngine` —
  the stream's running vote state, per-window argmax breakdown, winner
  margin, and the drift monitor's statistic trajectory,
* :func:`explain_from_audit` reconstructs the same report from an **audit
  log alone** (a list of recorded events or a JSONL file read with
  :meth:`AuditLog.read`) — no engine, no selector, no series required.

Both return the same JSON-ready shape, so the ``explain`` CLI command can
render either source identically::

    {"stream": ..., "selected_model": ..., "votes": {...},
     "margin": ..., "runner_up": ...,
     "drift": {"statistic": ..., "triggers": ..., "trajectory": [...]}}

:func:`format_explain` renders the report as the fixed-width tables the
rest of the CLI prints.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


def _margin(votes: Dict[str, float]) -> Dict[str, object]:
    """Winner margin + runner-up from a ``{model: share}`` vote map."""
    ranked = sorted(votes.items(), key=lambda kv: -kv[1])
    if not ranked:
        return {"margin": 0.0, "runner_up": None}
    if len(ranked) == 1:
        return {"margin": float(ranked[0][1]), "runner_up": None}
    return {"margin": float(ranked[0][1] - ranked[1][1]), "runner_up": ranked[1][0]}


#: gate fields surfaced when an int8 tier (served or escalation) is live
_QUANT_SUMMARY_KEYS = ("agreement", "act_scales_hash", "n_calibration",
                       "base_type", "n_quantized_convs", "n_folded_bns")


def _quantization_block(engine) -> Optional[Dict[str, object]]:
    """Quantization provenance of whichever int8 selector is in the path:
    the served selector, or the cascade's slow (escalation) selector."""
    served = getattr(getattr(engine, "streaming_selector", None), "selector", None)
    slow = getattr(getattr(engine, "cascade", None), "slow_selector", None)
    for selector in (served, slow):
        provenance = getattr(selector, "quant_provenance", None)
        if provenance:
            return {key: provenance[key] for key in _QUANT_SUMMARY_KEYS
                    if key in provenance}
    return None


def explain_stream(engine, stream_id: str) -> Dict[str, object]:
    """Explain a live stream's current selection from the engine state."""
    if stream_id not in engine:
        raise KeyError(f"unknown stream {stream_id!r}")
    state = engine._streams[stream_id]
    names: List[str] = list(engine.detector_names)
    view = engine.selection(stream_id)

    votes: Dict[str, float] = {}
    if view is not None:
        votes = {name: float(view.aggregated[k]) for k, name in enumerate(names)}

    # per-window argmax breakdown over the rows the running vote covers
    active = state.votes.active_probas
    window_votes = {name: 0 for name in names}
    if len(active):
        counts = np.bincount(active.argmax(axis=1), minlength=len(names))
        window_votes = {name: int(counts[k]) for k, name in enumerate(names)}

    drift: Optional[Dict[str, object]] = None
    if state.monitor is not None:
        drift = {
            "statistic": float(state.monitor.statistic),
            "triggers": int(state.monitor.triggers),
            "trajectory": [float(s) for s in state.monitor.history],
        }

    cascade: Optional[Dict[str, object]] = None
    if getattr(engine, "cascade", None) is not None:
        last = getattr(state, "last_cascade", None)
        cascade = _cascade_block(last,
                                 escalated_total=getattr(state, "escalated_windows", 0))

    return {
        "source": "engine",
        "stream": stream_id,
        "selector_tier": getattr(engine.config, "selector_tier", "teacher"),
        "selected_index": None if view is None else int(view.selected_index),
        "selected_model": (None if view is None
                           else names[int(view.selected_index)]),
        "n_windows": 0 if view is None else int(view.n_windows),
        "vote_start": int(state.votes.vote_start),
        "provisional": bool(view.provisional) if view is not None else False,
        "votes": votes,
        "window_votes": window_votes,
        **_margin(votes),
        "drift": drift,
        "cascade": cascade,
        "quantization": _quantization_block(engine),
    }


def _cascade_block(last: Optional[Dict[str, object]],
                   escalated_total: int = 0) -> Dict[str, object]:
    """The cascade section of an explain report: which stage answered, the
    fast tier's weakest margin vs the threshold, predicted-vs-actual cost."""
    if not last:
        return {"enabled": True, "stage": None, "escalated_total": int(escalated_total)}
    escalated = int(last.get("escalated_windows") or 0)
    plan = last.get("plan")
    if plan == "teacher":
        stage = "teacher"
    elif escalated:
        stage = "escalated"
    else:
        stage = "student"
    return {
        "enabled": True,
        "stage": stage,
        "plan": plan,
        "slow_tier": last.get("slow_tier", "teacher"),
        "escalated_windows": escalated,
        "n_new_windows": int(last.get("n_new_windows") or last.get("n_windows") or 0),
        "escalated_total": int(escalated_total),
        "threshold": last.get("threshold"),
        "min_margin": last.get("min_margin"),
        "predicted_ms": last.get("predicted_ms"),
        "predicted_mb": last.get("predicted_mb"),
        "actual_forward_ms": last.get("actual_forward_ms"),
        "fallback": bool(last.get("fallback")),
    }


def explain_from_audit(events: List[Dict[str, object]],
                       stream_id: str) -> Dict[str, object]:
    """Explain a stream's last recorded selection from audit events alone."""
    selections = [e for e in events
                  if e.get("event") == "selection" and e.get("stream") == stream_id]
    if not selections:
        raise ValueError(f"no selection events recorded for stream {stream_id!r}")
    last = selections[-1]
    votes = {str(k): float(v) for k, v in dict(last.get("votes") or {}).items()}

    drift_events = [e for e in events
                    if e.get("event") == "drift" and e.get("stream") == stream_id]
    trajectory = [float(e.get("drift_statistic", 0.0)) for e in selections]
    drift = {
        "statistic": trajectory[-1] if trajectory else 0.0,
        "triggers": len(drift_events),
        "trajectory": trajectory,
    }

    return {
        "source": "audit",
        "stream": stream_id,
        "selector_tier": str(last.get("selector_tier") or "teacher"),
        "selected_index": last.get("selected_index"),
        "selected_model": last.get("selected_model"),
        "n_windows": int(last.get("n_windows") or 0),
        "vote_start": int((last.get("inputs") or {}).get("vote_start", 0)),
        "provisional": bool(last.get("provisional")),
        "votes": votes,
        "window_votes": None,  # per-window rows are not audited, only votes
        **_margin(votes),
        "drift": drift,
        "cascade": (_cascade_block(
                        dict(last["cascade"]),
                        escalated_total=sum(int((e.get("cascade") or {})
                                                .get("escalated_windows") or 0)
                                            for e in selections))
                    if last.get("cascade") else None),
        "updates": len(selections),
        "reselections": sum(1 for e in selections if e.get("changed")),
    }


def format_explain(info: Dict[str, object]) -> str:
    """Render one explain report as fixed-width text (the CLI output)."""
    from ..system.reporting import format_table  # deferred: system imports obs-using layers

    tier = info.get("selector_tier") or "teacher"
    lines = [
        f"stream {info['stream']}: selected {info['selected_model']} "
        f"(index {info['selected_index']})"
        + (" [provisional]" if info.get("provisional") else "")
        + (f" [tier: {tier}]" if tier != "teacher" else ""),
        f"windows voting: {info['n_windows']} (vote starts at window "
        f"{info.get('vote_start', 0)})  margin: {info['margin']:.4f}"
        + (f"  runner-up: {info['runner_up']}" if info.get("runner_up") else ""),
    ]
    votes: Dict[str, float] = info.get("votes") or {}
    window_votes = info.get("window_votes")
    if votes:
        if window_votes:
            rows = [[name, share, window_votes.get(name, 0)]
                    for name, share in sorted(votes.items(), key=lambda kv: -kv[1])]
            lines.append(format_table(["Model", "Vote share", "Window votes"], rows))
        else:
            rows = sorted(votes.items(), key=lambda kv: -kv[1])
            lines.append(format_table(["Model", "Vote share"], rows))
    drift = info.get("drift")
    if drift:
        trajectory = drift.get("trajectory") or []
        tail = ", ".join(f"{s:.3f}" for s in trajectory[-8:]) or "-"
        lines.append(f"drift statistic: {drift['statistic']:.4f}  "
                     f"re-selections: {drift['triggers']}  trajectory (last 8): {tail}")
    cascade = info.get("cascade")
    if cascade:
        if cascade.get("stage") is None:
            lines.append("cascade: enabled (no routed flush yet)")
        else:
            margin_txt = ("-" if cascade.get("min_margin") is None
                          else f"{cascade['min_margin']:.4f}")
            threshold_txt = ("-" if cascade.get("threshold") is None
                             else f"{cascade['threshold']:.4f}")
            cost_bits = []
            if cascade.get("predicted_ms") is not None:
                cost_bits.append(f"predicted {cascade['predicted_ms']:.2f} ms")
            if cascade.get("actual_forward_ms") is not None:
                cost_bits.append(f"actual {cascade['actual_forward_ms']:.2f} ms")
            if cascade.get("predicted_mb") is not None:
                cost_bits.append(f"predicted {cascade['predicted_mb']:.2f} MB")
            lines.append(
                f"cascade: stage {cascade['stage']} (plan {cascade.get('plan')}"
                + (f", slow tier {cascade['slow_tier']}"
                   if cascade.get("slow_tier") not in (None, "teacher") else "")
                + (", SLO fallback" if cascade.get("fallback") else "")
                + f")  escalated {cascade.get('escalated_windows', 0)}"
                f"/{cascade.get('n_new_windows', 0)} new windows "
                f"({cascade.get('escalated_total', 0)} total)  "
                f"min margin {margin_txt} vs threshold {threshold_txt}"
                + (f"  cost: {', '.join(cost_bits)}" if cost_bits else ""))
    quant = info.get("quantization")
    if quant:
        lines.append(
            f"quantization: agreement {float(quant.get('agreement', 0.0)):.4f} "
            f"on {quant.get('n_calibration', 0)} calibration windows  "
            f"scales hash {quant.get('act_scales_hash', '-')}  "
            f"({quant.get('n_quantized_convs', 0)} int8 convs, "
            f"{quant.get('n_folded_bns', 0)} folded norms)")
    return "\n".join(lines)
