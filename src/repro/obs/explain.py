"""The ``explain`` surface: why did this stream pick that detector?

Two entry points answer the same question from two sources:

* :func:`explain_stream` interrogates a **live** :class:`StreamEngine` —
  the stream's running vote state, per-window argmax breakdown, winner
  margin, and the drift monitor's statistic trajectory,
* :func:`explain_from_audit` reconstructs the same report from an **audit
  log alone** (a list of recorded events or a JSONL file read with
  :meth:`AuditLog.read`) — no engine, no selector, no series required.

Both return the same JSON-ready shape, so the ``explain`` CLI command can
render either source identically::

    {"stream": ..., "selected_model": ..., "votes": {...},
     "margin": ..., "runner_up": ...,
     "drift": {"statistic": ..., "triggers": ..., "trajectory": [...]}}

:func:`format_explain` renders the report as the fixed-width tables the
rest of the CLI prints.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np


def _margin(votes: Dict[str, float]) -> Dict[str, object]:
    """Winner margin + runner-up from a ``{model: share}`` vote map."""
    ranked = sorted(votes.items(), key=lambda kv: -kv[1])
    if not ranked:
        return {"margin": 0.0, "runner_up": None}
    if len(ranked) == 1:
        return {"margin": float(ranked[0][1]), "runner_up": None}
    return {"margin": float(ranked[0][1] - ranked[1][1]), "runner_up": ranked[1][0]}


def explain_stream(engine, stream_id: str) -> Dict[str, object]:
    """Explain a live stream's current selection from the engine state."""
    if stream_id not in engine:
        raise KeyError(f"unknown stream {stream_id!r}")
    state = engine._streams[stream_id]
    names: List[str] = list(engine.detector_names)
    view = engine.selection(stream_id)

    votes: Dict[str, float] = {}
    if view is not None:
        votes = {name: float(view.aggregated[k]) for k, name in enumerate(names)}

    # per-window argmax breakdown over the rows the running vote covers
    active = state.votes.active_probas
    window_votes = {name: 0 for name in names}
    if len(active):
        counts = np.bincount(active.argmax(axis=1), minlength=len(names))
        window_votes = {name: int(counts[k]) for k, name in enumerate(names)}

    drift: Optional[Dict[str, object]] = None
    if state.monitor is not None:
        drift = {
            "statistic": float(state.monitor.statistic),
            "triggers": int(state.monitor.triggers),
            "trajectory": [float(s) for s in state.monitor.history],
        }

    return {
        "source": "engine",
        "stream": stream_id,
        "selector_tier": getattr(engine.config, "selector_tier", "teacher"),
        "selected_index": None if view is None else int(view.selected_index),
        "selected_model": (None if view is None
                           else names[int(view.selected_index)]),
        "n_windows": 0 if view is None else int(view.n_windows),
        "vote_start": int(state.votes.vote_start),
        "provisional": bool(view.provisional) if view is not None else False,
        "votes": votes,
        "window_votes": window_votes,
        **_margin(votes),
        "drift": drift,
    }


def explain_from_audit(events: List[Dict[str, object]],
                       stream_id: str) -> Dict[str, object]:
    """Explain a stream's last recorded selection from audit events alone."""
    selections = [e for e in events
                  if e.get("event") == "selection" and e.get("stream") == stream_id]
    if not selections:
        raise ValueError(f"no selection events recorded for stream {stream_id!r}")
    last = selections[-1]
    votes = {str(k): float(v) for k, v in dict(last.get("votes") or {}).items()}

    drift_events = [e for e in events
                    if e.get("event") == "drift" and e.get("stream") == stream_id]
    trajectory = [float(e.get("drift_statistic", 0.0)) for e in selections]
    drift = {
        "statistic": trajectory[-1] if trajectory else 0.0,
        "triggers": len(drift_events),
        "trajectory": trajectory,
    }

    return {
        "source": "audit",
        "stream": stream_id,
        "selector_tier": str(last.get("selector_tier") or "teacher"),
        "selected_index": last.get("selected_index"),
        "selected_model": last.get("selected_model"),
        "n_windows": int(last.get("n_windows") or 0),
        "vote_start": int((last.get("inputs") or {}).get("vote_start", 0)),
        "provisional": bool(last.get("provisional")),
        "votes": votes,
        "window_votes": None,  # per-window rows are not audited, only votes
        **_margin(votes),
        "drift": drift,
        "updates": len(selections),
        "reselections": sum(1 for e in selections if e.get("changed")),
    }


def format_explain(info: Dict[str, object]) -> str:
    """Render one explain report as fixed-width text (the CLI output)."""
    from ..system.reporting import format_table  # deferred: system imports obs-using layers

    tier = info.get("selector_tier") or "teacher"
    lines = [
        f"stream {info['stream']}: selected {info['selected_model']} "
        f"(index {info['selected_index']})"
        + (" [provisional]" if info.get("provisional") else "")
        + (f" [tier: {tier}]" if tier != "teacher" else ""),
        f"windows voting: {info['n_windows']} (vote starts at window "
        f"{info.get('vote_start', 0)})  margin: {info['margin']:.4f}"
        + (f"  runner-up: {info['runner_up']}" if info.get("runner_up") else ""),
    ]
    votes: Dict[str, float] = info.get("votes") or {}
    window_votes = info.get("window_votes")
    if votes:
        if window_votes:
            rows = [[name, share, window_votes.get(name, 0)]
                    for name, share in sorted(votes.items(), key=lambda kv: -kv[1])]
            lines.append(format_table(["Model", "Vote share", "Window votes"], rows))
        else:
            rows = sorted(votes.items(), key=lambda kv: -kv[1])
            lines.append(format_table(["Model", "Vote share"], rows))
    drift = info.get("drift")
    if drift:
        trajectory = drift.get("trajectory") or []
        tail = ", ".join(f"{s:.3f}" for s in trajectory[-8:]) or "-"
        lines.append(f"drift statistic: {drift['statistic']:.4f}  "
                     f"re-selections: {drift['triggers']}  trajectory (last 8): {tail}")
    return "\n".join(lines)
