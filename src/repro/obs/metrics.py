"""Prometheus-style metrics: counters, gauges, histograms, one registry.

Zero-dependency (stdlib only) instrumentation primitives for the runtime
layers.  Three metric kinds mirror the Prometheus data model:

* :class:`Counter` — a monotone count (``cache hits``, ``flushes``),
* :class:`Gauge` — a value that goes up and down (``streams live``),
* :class:`Histogram` — a distribution over fixed buckets; the default
  bucket ladder (:data:`DEFAULT_LATENCY_BUCKETS`) is log-scale from 10 µs
  to 10 s, which is where every latency in this system lives.

Metric objects are **standalone and always functional** — constructing a
``Counter`` and calling :meth:`Counter.inc` works whether or not any
registry knows about it.  That is what lets the stats the system has
always exposed (:class:`repro.serving.cache.CacheStats`,
:class:`repro.streaming.engine.StreamEngineStats`) ride on the same
objects without depending on observability being switched on.

A :class:`MetricsRegistry` aggregates metrics for exposition
(:meth:`MetricsRegistry.render_prometheus` emits the Prometheus text
format).  The registry is where the **no-op mode** lives:

* a *disabled* registry hands out shared null metrics from
  :meth:`counter` / :meth:`gauge` / :meth:`histogram` whose methods do
  nothing and whose :meth:`Histogram.time` context manager never reads a
  clock — instrumentation sites pay one attribute call and nothing else,
* :meth:`register` on a disabled registry leaves the metric fully
  functional but untracked — stats keep counting, exposition skips them.

A process-wide default registry (disabled unless the ``REPRO_OBS``
environment variable is truthy) is reachable via :func:`default_registry`;
:func:`enable` / :func:`disable` flip it at runtime.  Components read the
default registry **at construction time**, so enable observability before
building engines/services (the CLI flags do).
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: log-scale latency ladder: 10 µs .. 10 s in 1-2.5-5 steps (seconds)
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-05, 2.5e-05, 5e-05, 1e-04, 2.5e-04, 5e-04,
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: log-scale ladder for size-like observations (windows per tick, batch sizes)
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (thread-safe)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        """``(suffix, extra labels, value)`` rows for exposition."""
        return [("", {}, float(self._value))]

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A value that can go up and down (thread-safe)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        return [("", {}, float(self._value))]

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._value})"


class _HistogramTimer:
    """Context manager timing a block into one histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        import time

        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        import time

        self._histogram.observe(time.perf_counter() - self._start)
        return False


class Histogram:
    """A fixed-bucket distribution (thread-safe, cumulative on export)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Dict[str, str]] = None,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def time(self) -> _HistogramTimer:
        """Time a ``with`` block into this histogram (seconds)."""
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; last entry is the overflow."""
        with self._lock:
            return list(self._counts)

    def samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        with self._lock:
            counts, total, total_sum = list(self._counts), self._count, self._sum
        rows: List[Tuple[str, Dict[str, str], float]] = []
        cumulative = 0
        for bound, count in zip(self.buckets, counts):
            cumulative += count
            rows.append(("_bucket", {"le": _format_value(bound)}, float(cumulative)))
        rows.append(("_bucket", {"le": "+Inf"}, float(total)))
        rows.append(("_sum", {}, total_sum))
        rows.append(("_count", {}, float(total)))
        return rows

    def __repr__(self) -> str:
        return f"Histogram({self.name}, count={self._count})"


# --------------------------------------------------------------------------- #
# the no-op side: shared null metrics handed out by disabled registries
# --------------------------------------------------------------------------- #
class _NullTimer:
    """A reusable context manager that never reads a clock."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class NullMetric:
    """Does nothing, cheaply — what a disabled registry hands out."""

    kind = "null"
    name = ""
    help = ""
    labels: Dict[str, str] = {}
    buckets: Tuple[float, ...] = ()
    value = 0
    count = 0
    sum = 0.0
    bucket_counts: List[int] = []

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> _NullTimer:
        return _NULL_TIMER

    def samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        return []

    def __repr__(self) -> str:
        return "NullMetric()"


NULL_METRIC = NullMetric()


# --------------------------------------------------------------------------- #
# registry + exposition
# --------------------------------------------------------------------------- #
def _format_value(value: float) -> str:
    """Prometheus number formatting: integers without the trailing ``.0``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"'
                     for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class MetricsRegistry:
    """A collection of metrics with get-or-create access and exposition.

    ``enabled=False`` turns the registry into a no-op factory: the
    ``counter``/``gauge``/``histogram`` helpers return :data:`NULL_METRIC`
    and :meth:`register` tracks nothing (the metric itself keeps working).
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = bool(enabled)
        self._metrics: "Dict[Tuple[str, Tuple[Tuple[str, str], ...]], object]" = {}
        self._lock = threading.Lock()

    # -- enablement ---------------------------------------------------- #
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # -- get-or-create site metrics ------------------------------------ #
    def _get_or_create(self, cls, name: str, help: str,
                       labels: Dict[str, str], **kwargs):
        if not self._enabled:
            return NULL_METRIC
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, help, labels, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(f"metric {name!r} already registered as "
                                f"{type(metric).__name__}, not {cls.__name__}")
            return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  **labels: str) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    # -- pre-built (always-real) metrics ------------------------------- #
    def register(self, metric):
        """Track a standalone metric for exposition (no-op when disabled).

        Two live instances under the same ``(name, labels)`` (e.g. two
        caches built with the same name) are disambiguated by adding an
        ``instance`` label to the newcomer.
        """
        if not self._enabled or isinstance(metric, NullMetric):
            return metric
        with self._lock:
            key = (metric.name, _label_key(metric.labels))
            if key in self._metrics and self._metrics[key] is not metric:
                instance = 2
                while True:
                    labels = {**metric.labels, "instance": str(instance)}
                    candidate = (metric.name, _label_key(labels))
                    if candidate not in self._metrics:
                        break
                    instance += 1
                metric.labels = labels
                key = candidate
            self._metrics[key] = metric
        return metric

    # -- introspection ------------------------------------------------- #
    def metrics(self) -> List[object]:
        with self._lock:
            return list(self._metrics.values())

    def find(self, name: str, **labels: str):
        """The tracked metric under ``(name, labels)`` or ``None``."""
        with self._lock:
            return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, **labels: str) -> Optional[float]:
        """Shortcut: the tracked metric's scalar value (counters/gauges)."""
        metric = self.find(name, **labels)
        return None if metric is None else metric.value

    def snapshot(self) -> Dict[str, float]:
        """``{"name{labels}": value}`` for counters and gauges,
        ``{"name{labels}": count}`` for histograms (JSON-friendly)."""
        out: Dict[str, float] = {}
        for metric in self.metrics():
            key = metric.name + _render_labels(metric.labels)
            out[key] = metric.count if metric.kind == "histogram" else metric.value
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        by_name: "Dict[str, List[object]]" = {}
        for metric in self.metrics():
            by_name.setdefault(metric.name, []).append(metric)
        lines: List[str] = []
        for name, group in by_name.items():
            first = group[0]
            if first.help:
                lines.append(f"# HELP {name} {first.help}")
            lines.append(f"# TYPE {name} {first.kind}")
            for metric in group:
                for suffix, extra, value in metric.samples():
                    labels = _render_labels({**metric.labels, **extra})
                    lines.append(f"{name}{suffix}{labels} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:
        state = "enabled" if self._enabled else "disabled"
        return f"MetricsRegistry({len(self)} metrics, {state})"


# --------------------------------------------------------------------------- #
# the process-wide default registry
# --------------------------------------------------------------------------- #
def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "").strip().lower() in ("1", "true", "yes", "on")


_default_registry = MetricsRegistry(enabled=_env_enabled())


def default_registry() -> MetricsRegistry:
    """The process-wide registry components attach to at construction."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests, CLI); returns the old one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def enable() -> MetricsRegistry:
    """Switch the default registry on (idempotent); returns it."""
    _default_registry.enable()
    return _default_registry


def disable() -> MetricsRegistry:
    """Switch the default registry off; returns it."""
    _default_registry.disable()
    return _default_registry


def enabled() -> bool:
    """Is the default registry collecting?"""
    return _default_registry.enabled
