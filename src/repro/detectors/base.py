"""Common infrastructure for the TSAD model set.

Every detector follows the TSB-UAD convention used by the paper: it is an
*unsupervised* scorer that receives a univariate series and returns one
anomaly score per data point (larger = more anomalous).  Detectors that
operate on subsequences map their per-window scores back to per-point
scores by averaging the scores of all windows covering a point.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Type

import numpy as np


def sliding_windows(series: np.ndarray, window: int, stride: int = 1) -> np.ndarray:
    """Return the (n_windows, window) matrix of subsequences of ``series``."""
    series = np.asarray(series, dtype=np.float64).ravel()
    if window <= 0:
        raise ValueError("window must be positive")
    if len(series) < window:
        raise ValueError(f"series of length {len(series)} is shorter than window {window}")
    n = (len(series) - window) // stride + 1
    idx = np.arange(window)[None, :] + stride * np.arange(n)[:, None]
    return series[idx]


def window_scores_to_point_scores(
    window_scores: np.ndarray,
    series_length: int,
    window: int,
    stride: int = 1,
) -> np.ndarray:
    """Spread per-window scores back onto points by averaging overlaps."""
    scores = np.zeros(series_length, dtype=np.float64)
    counts = np.zeros(series_length, dtype=np.float64)
    for i, s in enumerate(np.asarray(window_scores, dtype=np.float64)):
        start = i * stride
        scores[start:start + window] += s
        counts[start:start + window] += 1.0
    counts[counts == 0] = 1.0
    return scores / counts


def normalize_scores(scores: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Min-max normalise scores to [0, 1]; constant scores map to zeros."""
    scores = np.asarray(scores, dtype=np.float64)
    lo, hi = scores.min(), scores.max()
    if hi - lo < eps:
        return np.zeros_like(scores)
    return (scores - lo) / (hi - lo)


class AnomalyDetector(ABC):
    """Base class for all TSAD models in the candidate set."""

    #: registry name (filled by :func:`register_detector`)
    name: str = "base"

    def __init__(self, window: int = 32) -> None:
        self.window = window

    @abstractmethod
    def score(self, series: np.ndarray) -> np.ndarray:
        """Return raw per-point anomaly scores for ``series``."""

    def detect(self, series: np.ndarray) -> np.ndarray:
        """Return per-point anomaly scores normalised to [0, 1]."""
        series = np.asarray(series, dtype=np.float64).ravel()
        if len(series) == 0:
            return np.zeros(0)
        scores = self.score(series)
        if len(scores) != len(series):
            raise RuntimeError(
                f"{self.__class__.__name__} returned {len(scores)} scores for a series of "
                f"length {len(series)}"
            )
        return normalize_scores(scores)

    def effective_window(self, series: np.ndarray) -> int:
        """Window size clipped so that it always fits the series."""
        return int(max(4, min(self.window, len(series) // 2)))

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}(window={self.window})"


_DETECTOR_REGISTRY: Dict[str, Type[AnomalyDetector]] = {}


def register_detector(name: str):
    """Class decorator registering a detector under ``name``."""

    def wrap(cls: Type[AnomalyDetector]) -> Type[AnomalyDetector]:
        cls.name = name
        _DETECTOR_REGISTRY[name] = cls
        return cls

    return wrap


def detector_names() -> list[str]:
    """Names of all registered detectors, in registration order."""
    return list(_DETECTOR_REGISTRY)


def make_detector(name: str, **kwargs) -> AnomalyDetector:
    """Instantiate a registered detector by name."""
    if name not in _DETECTOR_REGISTRY:
        raise KeyError(f"unknown detector {name!r}; available: {sorted(_DETECTOR_REGISTRY)}")
    return _DETECTOR_REGISTRY[name](**kwargs)


#: The paper's 12-model candidate set (Table 5), in its reporting order.
DEFAULT_MODEL_NAMES = [
    "IForest", "IForest1", "LOF", "HBOS", "MP", "NORMA",
    "PCA", "AE", "LSTM-AD", "POLY", "CNN", "OCSVM",
]


def make_default_model_set(window: int = 32, fast: bool = True) -> Dict[str, AnomalyDetector]:
    """Instantiate the paper's 12-model TSAD candidate set.

    ``fast=True`` configures the neural detectors (AE / LSTM-AD / CNN) with
    small budgets so that the oracle labelling pass stays laptop-friendly.
    Extension detectors (see :mod:`repro.detectors.extended`) are *not*
    included, keeping the candidate set identical to the paper's.
    """
    from . import (  # local import to avoid a registration cycle
        autoencoder, cnn_ad, hbos, iforest, lof, lstm_ad,
        matrix_profile, norma, ocsvm, pca, poly,
    )
    del autoencoder, cnn_ad, hbos, iforest, lof, lstm_ad
    del matrix_profile, norma, ocsvm, pca, poly

    epochs = 5 if fast else 30
    overrides = {
        "AE": {"epochs": epochs},
        "LSTM-AD": {"epochs": max(2, epochs // 2)},
        "CNN": {"epochs": epochs},
    }
    model_set = {}
    for name in DEFAULT_MODEL_NAMES:
        kwargs = {"window": window}
        kwargs.update(overrides.get(name, {}))
        model_set[name] = make_detector(name, **kwargs)
    return model_set
