"""Common infrastructure for the TSAD model set.

Every detector follows the TSB-UAD convention used by the paper: it is an
*unsupervised* scorer that receives a univariate series and returns one
anomaly score per data point (larger = more anomalous).  Detectors that
operate on subsequences map their per-window scores back to per-point
scores by averaging the scores of all windows covering a point.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Type

import numpy as np


def sliding_windows(series: np.ndarray, window: int, stride: int = 1) -> np.ndarray:
    """Return the (n_windows, window) matrix of subsequences of ``series``."""
    series = np.asarray(series, dtype=np.float64).ravel()
    if window <= 0:
        raise ValueError("window must be positive")
    if len(series) < window:
        raise ValueError(f"series of length {len(series)} is shorter than window {window}")
    n = (len(series) - window) // stride + 1
    idx = np.arange(window)[None, :] + stride * np.arange(n)[:, None]
    return series[idx]


#: Window block size for the scatter-add in ``window_scores_to_point_scores``
#: — bounds the (block, window) index buffer instead of materialising one
#: row per window for the whole series.
_POINT_SCORE_BLOCK = 4096


def window_scores_to_point_scores(
    window_scores: np.ndarray,
    series_length: int,
    window: int,
    stride: int = 1,
) -> np.ndarray:
    """Spread per-window scores back onto points by averaging overlaps.

    Vectorised: window scores are scattered onto their covered points with
    ``np.add.at`` (in blocks, so peak memory stays bounded) and the overlap
    counts come from closed-form index arithmetic.  Both accumulate exactly
    the values the historical per-window Python loop added, in the same
    ascending-window order per point, so results are bitwise identical.
    """
    window_scores = np.asarray(window_scores, dtype=np.float64)
    n = len(window_scores)
    # Scatter into a buffer long enough for every window (windows may extend
    # past series_length — the old loop's slice assignment clamped them);
    # the overhang is truncated at the end.
    span = (n - 1) * stride + window if n else 0
    scores = np.zeros(max(series_length, span), dtype=np.float64)
    offsets = np.arange(window)[None, :]
    for block_start in range(0, n, _POINT_SCORE_BLOCK):
        block = slice(block_start, min(block_start + _POINT_SCORE_BLOCK, n))
        idx = stride * np.arange(block.start, block.stop)[:, None] + offsets
        np.add.at(scores, idx, window_scores[block, None])
    scores = scores[:series_length]

    # A point p is covered by windows s with s*stride <= p <= s*stride+window-1,
    # i.e. s in [ceil((p-window+1)/stride), floor(p/stride)] ∩ [0, n-1].
    p = np.arange(series_length)
    lo = np.maximum(-((window - 1 - p) // stride), 0)
    hi = np.minimum(p // stride, n - 1)
    counts = np.maximum(hi - lo + 1, 0).astype(np.float64)
    counts[counts == 0] = 1.0
    return scores / counts


def normalize_scores(scores: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Min-max normalise scores to [0, 1]; constant scores map to zeros."""
    scores = np.asarray(scores, dtype=np.float64)
    lo, hi = scores.min(), scores.max()
    if hi - lo < eps:
        return np.zeros_like(scores)
    return (scores - lo) / (hi - lo)


class AnomalyDetector(ABC):
    """Base class for all TSAD models in the candidate set."""

    #: registry name (filled by :func:`register_detector`)
    name: str = "base"

    #: True when ``score()`` is *windowed-local*: every raw point score is
    #: the overlap average of per-window scores, and each window's score
    #: depends only on that window's values (no statistics over the whole
    #: series).  Local detectors can be re-scored incrementally on a stream
    #: (:class:`repro.streaming.OnlineScorer` recomputes only the tail);
    #: global detectors need a full re-run when the series grows.
    locally_scored: bool = False

    def __init__(self, window: int = 32) -> None:
        self.window = window

    @abstractmethod
    def score(self, series: np.ndarray) -> np.ndarray:
        """Return raw per-point anomaly scores for ``series``."""

    def detect(self, series: np.ndarray) -> np.ndarray:
        """Return per-point anomaly scores normalised to [0, 1]."""
        series = np.asarray(series, dtype=np.float64).ravel()
        if len(series) == 0:
            return np.zeros(0)
        scores = self.score(series)
        if len(scores) != len(series):
            raise RuntimeError(
                f"{self.__class__.__name__} returned {len(scores)} scores for a series of "
                f"length {len(series)}"
            )
        return normalize_scores(scores)

    def effective_window(self, series: np.ndarray) -> int:
        """Window size clipped so that it always fits the series."""
        return int(max(4, min(self.window, len(series) // 2)))

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}(window={self.window})"


_DETECTOR_REGISTRY: Dict[str, Type[AnomalyDetector]] = {}


def register_detector(name: str):
    """Class decorator registering a detector under ``name``."""

    def wrap(cls: Type[AnomalyDetector]) -> Type[AnomalyDetector]:
        cls.name = name
        _DETECTOR_REGISTRY[name] = cls
        return cls

    return wrap


def detector_names() -> list[str]:
    """Names of all registered detectors, in registration order."""
    return list(_DETECTOR_REGISTRY)


def make_detector(name: str, **kwargs) -> AnomalyDetector:
    """Instantiate a registered detector by name."""
    if name not in _DETECTOR_REGISTRY:
        raise KeyError(f"unknown detector {name!r}; available: {sorted(_DETECTOR_REGISTRY)}")
    return _DETECTOR_REGISTRY[name](**kwargs)


#: The paper's 12-model candidate set (Table 5), in its reporting order.
DEFAULT_MODEL_NAMES = [
    "IForest", "IForest1", "LOF", "HBOS", "MP", "NORMA",
    "PCA", "AE", "LSTM-AD", "POLY", "CNN", "OCSVM",
]


def make_default_model_set(window: int = 32, fast: bool = True) -> Dict[str, AnomalyDetector]:
    """Instantiate the paper's 12-model TSAD candidate set.

    ``fast=True`` configures the neural detectors (AE / LSTM-AD / CNN) with
    small budgets so that the oracle labelling pass stays laptop-friendly.
    Extension detectors (see :mod:`repro.detectors.extended`) are *not*
    included, keeping the candidate set identical to the paper's.
    """
    from . import (  # local import to avoid a registration cycle
        autoencoder, cnn_ad, hbos, iforest, lof, lstm_ad,
        matrix_profile, norma, ocsvm, pca, poly,
    )
    del autoencoder, cnn_ad, hbos, iforest, lof, lstm_ad
    del matrix_profile, norma, ocsvm, pca, poly

    epochs = 5 if fast else 30
    overrides = {
        "AE": {"epochs": epochs},
        "LSTM-AD": {"epochs": max(2, epochs // 2)},
        "CNN": {"epochs": epochs},
    }
    model_set = {}
    for name in DEFAULT_MODEL_NAMES:
        kwargs = {"window": window}
        kwargs.update(overrides.get(name, {}))
        model_set[name] = make_detector(name, **kwargs)
    return model_set
