"""Ensemble baselines: run every candidate detector and combine the scores.

The paper's introduction motivates model selection as the scalable
alternative to ensembling (which must run *all* candidate models).  These
ensembles are provided so that the trade-off can be measured directly:
they are usually strong but cost ``m`` detector runs per series instead of
one.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from .base import AnomalyDetector, make_default_model_set, normalize_scores


class DetectorEnsemble(AnomalyDetector):
    """Combine the normalised scores of several detectors.

    Aggregations: ``"mean"`` (average score), ``"max"`` (most alarmed
    detector wins per point) and ``"median"`` (robust to one bad detector).
    """

    name = "Ensemble"

    def __init__(
        self,
        model_set: Optional[Dict[str, AnomalyDetector]] = None,
        aggregation: str = "mean",
        window: int = 32,
    ) -> None:
        super().__init__(window)
        if aggregation not in ("mean", "max", "median"):
            raise ValueError("aggregation must be 'mean', 'max' or 'median'")
        self.aggregation = aggregation
        self.model_set = model_set or make_default_model_set(window=window, fast=True)

    def score(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64).ravel()
        all_scores = np.stack([det.detect(series) for det in self.model_set.values()])
        if self.aggregation == "mean":
            return all_scores.mean(axis=0)
        if self.aggregation == "max":
            return all_scores.max(axis=0)
        return np.median(all_scores, axis=0)

    def per_detector_scores(self, series: np.ndarray) -> Dict[str, np.ndarray]:
        """The individual normalised score vector of every member."""
        series = np.asarray(series, dtype=np.float64).ravel()
        return {name: det.detect(series) for name, det in self.model_set.items()}

    def __repr__(self) -> str:
        return f"DetectorEnsemble(aggregation={self.aggregation!r}, members={len(self.model_set)})"


def ensemble_cost_model(n_detectors: int, selected_only: bool) -> float:
    """Relative detection cost: ensembles run all models, selection runs one.

    A deliberately simple cost model used by the scalability benchmark: the
    unit is "detector runs per series".
    """
    if n_detectors <= 0:
        raise ValueError("n_detectors must be positive")
    return 1.0 if selected_only else float(n_detectors)
