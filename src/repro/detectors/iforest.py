"""Isolation Forest detectors (IForest on subsequences, IForest1 on points)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import AnomalyDetector, register_detector, sliding_windows, window_scores_to_point_scores


class _IsolationTree:
    """A single isolation tree built on randomly chosen splits."""

    __slots__ = ("split_feature", "split_value", "left", "right", "size")

    def __init__(self) -> None:
        self.split_feature: int = -1
        self.split_value: float = 0.0
        self.left: Optional[_IsolationTree] = None
        self.right: Optional[_IsolationTree] = None
        self.size: int = 0

    def fit(self, x: np.ndarray, depth: int, max_depth: int, rng: np.random.Generator) -> "_IsolationTree":
        self.size = x.shape[0]
        if depth >= max_depth or x.shape[0] <= 1:
            return self
        feature = int(rng.integers(0, x.shape[1]))
        lo, hi = x[:, feature].min(), x[:, feature].max()
        if hi - lo < 1e-12:
            return self
        value = float(rng.uniform(lo, hi))
        mask = x[:, feature] < value
        if mask.all() or (~mask).all():
            return self
        self.split_feature = feature
        self.split_value = value
        self.left = _IsolationTree().fit(x[mask], depth + 1, max_depth, rng)
        self.right = _IsolationTree().fit(x[~mask], depth + 1, max_depth, rng)
        return self

    def path_length(self, x: np.ndarray, depth: int = 0) -> np.ndarray:
        if self.left is None:
            return np.full(x.shape[0], depth + _average_path_length(self.size))
        out = np.empty(x.shape[0])
        mask = x[:, self.split_feature] < self.split_value
        if mask.any():
            out[mask] = self.left.path_length(x[mask], depth + 1)
        if (~mask).any():
            out[~mask] = self.right.path_length(x[~mask], depth + 1)
        return out


def _average_path_length(n: int) -> float:
    """Expected path length of an unsuccessful BST search (Liu et al., 2008)."""
    if n <= 1:
        return 0.0
    if n == 2:
        return 1.0
    harmonic = np.log(n - 1) + np.euler_gamma
    return 2.0 * harmonic - 2.0 * (n - 1) / n


class IsolationForest:
    """Ensemble of isolation trees producing scores in (0, 1)."""

    def __init__(self, n_estimators: int = 50, max_samples: int = 128, seed: int = 0) -> None:
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.seed = seed
        self.trees_: List[_IsolationTree] = []
        self._sample_size = 0

    def fit(self, x: np.ndarray) -> "IsolationForest":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        rng = np.random.default_rng(self.seed)
        n = x.shape[0]
        self._sample_size = min(self.max_samples, n)
        max_depth = int(np.ceil(np.log2(max(self._sample_size, 2))))
        self.trees_ = []
        for _ in range(self.n_estimators):
            idx = rng.choice(n, size=self._sample_size, replace=False)
            self.trees_.append(_IsolationTree().fit(x[idx], 0, max_depth, rng))
        return self

    def score_samples(self, x: np.ndarray) -> np.ndarray:
        """Anomaly score 2^(-E[path]/c(n)); close to 1 means anomalous."""
        if not self.trees_:
            raise RuntimeError("IsolationForest must be fitted before scoring")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        paths = np.mean([tree.path_length(x) for tree in self.trees_], axis=0)
        c = _average_path_length(self._sample_size)
        return np.power(2.0, -paths / max(c, 1e-12))


@register_detector("IForest")
class IForestDetector(AnomalyDetector):
    """Isolation forest over sliding-window subsequences."""

    def __init__(self, window: int = 32, n_estimators: int = 40, max_samples: int = 128, seed: int = 0) -> None:
        super().__init__(window)
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.seed = seed

    def score(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64).ravel()
        window = self.effective_window(series)
        subs = sliding_windows(series, window)
        forest = IsolationForest(self.n_estimators, self.max_samples, self.seed).fit(subs)
        window_scores = forest.score_samples(subs)
        return window_scores_to_point_scores(window_scores, len(series), window)


@register_detector("IForest1")
class IForest1Detector(AnomalyDetector):
    """Isolation forest where each individual data point is a sample."""

    def __init__(self, window: int = 32, n_estimators: int = 40, max_samples: int = 256, seed: int = 0) -> None:
        super().__init__(window)
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.seed = seed

    def score(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64).ravel()
        forest = IsolationForest(self.n_estimators, self.max_samples, self.seed).fit(series[:, None])
        return forest.score_samples(series[:, None])
