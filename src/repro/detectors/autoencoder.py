"""Autoencoder reconstruction detector built on ``repro.nn``."""

from __future__ import annotations

import numpy as np

from .. import nn
from ..ml.scalers import zscore_rows
from .base import AnomalyDetector, register_detector, sliding_windows, window_scores_to_point_scores


class _AutoEncoder(nn.Module):
    """Small MLP autoencoder over fixed-length windows."""

    def __init__(self, window: int, latent: int = 8, hidden: int = 32) -> None:
        super().__init__()
        self.encoder = nn.Sequential(nn.Linear(window, hidden), nn.ReLU(), nn.Linear(hidden, latent))
        self.decoder = nn.Sequential(nn.Linear(latent, hidden), nn.ReLU(), nn.Linear(hidden, window))

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.decoder(self.encoder(x))


@register_detector("AE")
class AutoEncoderDetector(AnomalyDetector):
    """Project windows into a latent space and score by reconstruction error."""

    def __init__(
        self,
        window: int = 32,
        latent: int = 8,
        hidden: int = 32,
        epochs: int = 10,
        batch_size: int = 64,
        lr: float = 1e-2,
        max_train_windows: int = 512,
        seed: int = 0,
    ) -> None:
        super().__init__(window)
        self.latent = latent
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.max_train_windows = max_train_windows
        self.seed = seed

    def score(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64).ravel()
        window = self.effective_window(series)
        subs = sliding_windows(series, window)
        z = zscore_rows(subs)

        rng = np.random.default_rng(self.seed)
        if len(z) > self.max_train_windows:
            train = z[rng.choice(len(z), size=self.max_train_windows, replace=False)]
        else:
            train = z

        nn.init.set_seed(self.seed)
        model = _AutoEncoder(window, latent=min(self.latent, window // 2), hidden=self.hidden)
        opt = nn.Adam(model.parameters(), lr=self.lr)
        for _ in range(self.epochs):
            order = rng.permutation(len(train))
            for start in range(0, len(train), self.batch_size):
                batch = train[order[start:start + self.batch_size]]
                recon = model(nn.Tensor(batch))
                loss = nn.mse_loss(recon, batch)
                opt.zero_grad()
                loss.backward()
                opt.step()

        model.eval()
        with nn.no_grad():
            recon = model(nn.Tensor(z)).numpy()
        window_scores = ((recon - z) ** 2).mean(axis=1)
        return window_scores_to_point_scores(window_scores, len(series), window)
