"""Extended TSAD models beyond the paper's 12-model set.

The paper notes that "more models can be integrated in the same way in
future work".  This module demonstrates that extension path with two extra
detectors that register themselves like any other model; they are *not*
part of :func:`make_default_model_set` so the paper's experiments keep the
original candidate set, but they can be added to any pipeline's model set.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ml.neighbors import kneighbors
from ..ml.scalers import zscore, zscore_rows
from .base import (
    AnomalyDetector,
    make_detector,
    register_detector,
    sliding_windows,
    window_scores_to_point_scores,
)


@register_detector("SubKNN")
class SubsequenceKNNDetector(AnomalyDetector):
    """k-NN distance of each subsequence to the other subsequences.

    The classic distance-based detector: subsequences far from their k-th
    nearest neighbour are anomalous.  Similar in spirit to Matrix Profile
    but using the average of k neighbour distances instead of the single
    nearest non-trivial match.
    """

    def __init__(self, window: int = 32, n_neighbors: int = 5, max_windows: int = 2000, seed: int = 0) -> None:
        super().__init__(window)
        self.n_neighbors = n_neighbors
        self.max_windows = max_windows
        self.seed = seed

    def score(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64).ravel()
        window = self.effective_window(series)
        subs = sliding_windows(series, window)
        stride = 1
        if len(subs) > self.max_windows:
            stride = int(np.ceil(len(subs) / self.max_windows))
            subs = sliding_windows(series, window, stride=stride)
        z = zscore_rows(subs)
        k = max(1, min(self.n_neighbors, len(z) - 1))
        dist, _ = kneighbors(z, z, k, exclude_self=True)
        window_scores = dist.mean(axis=1)
        return window_scores_to_point_scores(window_scores, len(series), window, stride=stride)


@register_detector("SpectralResidual")
class SpectralResidualDetector(AnomalyDetector):
    """Spectral-residual saliency detector (Ren et al., KDD 2019 style).

    The log-amplitude spectrum is smoothed; the residual between the
    spectrum and its smoothed version highlights "surprising" frequencies,
    and the inverse transform yields a saliency map whose peaks mark
    anomalies.  Works well for spikes and dips in otherwise regular data.
    """

    def __init__(self, window: int = 32, smoothing: int = 3, score_smoothing: int = 5) -> None:
        super().__init__(window)
        self.smoothing = smoothing
        self.score_smoothing = score_smoothing

    def score(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64).ravel()
        if len(series) < 4:
            return np.zeros_like(series)
        spectrum = np.fft.fft(zscore(series))
        amplitude = np.abs(spectrum)
        amplitude[amplitude < 1e-12] = 1e-12
        log_amplitude = np.log(amplitude)
        kernel = np.ones(self.smoothing) / self.smoothing
        smoothed = np.convolve(log_amplitude, kernel, mode="same")
        residual = log_amplitude - smoothed
        saliency = np.abs(np.fft.ifft(np.exp(residual + 1j * np.angle(spectrum))))
        kernel2 = np.ones(self.score_smoothing) / self.score_smoothing
        return np.convolve(saliency, kernel2, mode="same")


def make_extended_model_set(window: int = 32, fast: bool = True) -> Dict[str, AnomalyDetector]:
    """The default 12-model set plus the two extension detectors."""
    from .base import make_default_model_set

    model_set = make_default_model_set(window=window, fast=fast)
    model_set["SubKNN"] = make_detector("SubKNN", window=window)
    model_set["SpectralResidual"] = make_detector("SpectralResidual", window=window)
    return model_set
