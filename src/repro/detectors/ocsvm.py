"""One-class SVM detector on sliding-window subsequences."""

from __future__ import annotations

import numpy as np

from ..ml.scalers import zscore_rows
from ..ml.svm import OneClassSVM
from .base import AnomalyDetector, register_detector, sliding_windows, window_scores_to_point_scores


@register_detector("OCSVM")
class OCSVMDetector(AnomalyDetector):
    """Fit the boundary of normal subsequences; score by boundary distance."""

    def __init__(
        self,
        window: int = 32,
        nu: float = 0.1,
        n_components: int = 96,
        max_train_windows: int = 768,
        seed: int = 0,
    ) -> None:
        super().__init__(window)
        self.nu = nu
        self.n_components = n_components
        self.max_train_windows = max_train_windows
        self.seed = seed

    def score(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64).ravel()
        window = self.effective_window(series)
        subs = sliding_windows(series, window)
        z = zscore_rows(subs)

        rng = np.random.default_rng(self.seed)
        if len(z) > self.max_train_windows:
            train = z[rng.choice(len(z), size=self.max_train_windows, replace=False)]
        else:
            train = z

        model = OneClassSVM(nu=self.nu, n_components=self.n_components, seed=self.seed).fit(train)
        window_scores = model.score_samples(z)
        return window_scores_to_point_scores(window_scores, len(series), window)
