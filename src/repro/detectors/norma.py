"""NORMA-style detector: distance to a clustered normal pattern."""

from __future__ import annotations

import numpy as np

from ..accel.profile import znorm_centroid_distances
from ..ml.cluster import KMeans
from ..ml.scalers import zscore_rows
from .base import AnomalyDetector, register_detector, sliding_windows, window_scores_to_point_scores


@register_detector("NORMA")
class NormaDetector(AnomalyDetector):
    """Identify normal patterns by clustering subsequences, score by distance.

    Following the NormA idea, the normal model is a weighted set of cluster
    centroids (weights proportional to cluster sizes); the anomaly score of a
    subsequence is its weighted distance to the normal model.

    The normal model is fitted on a strided sample of z-normalised windows;
    the *scan* — distance of every z-normalised subsequence to every
    centroid — runs on :func:`repro.accel.znorm_centroid_distances` (MASS
    rFFT sliding dot products + rolling mean/std), so the full (n, window)
    z-normalised window matrix is never materialised.
    """

    def __init__(self, window: int = 32, n_clusters: int = 4, max_windows: int = 1500, seed: int = 0) -> None:
        super().__init__(window)
        self.n_clusters = n_clusters
        self.max_windows = max_windows
        self.seed = seed

    def score(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64).ravel()
        window = self.effective_window(series)
        n_windows = len(series) - window + 1

        # Fit the normal model on a strided sample to keep clustering cheap;
        # only the sampled windows are materialised and z-normalised.
        if n_windows > self.max_windows:
            step = int(np.ceil(n_windows / self.max_windows))
            sample = sliding_windows(series, window, stride=step)
        else:
            sample = sliding_windows(series, window)
        sample = zscore_rows(sample)
        k = max(1, min(self.n_clusters, len(sample)))
        km = KMeans(n_clusters=k, seed=self.seed).fit(sample)
        labels, counts = np.unique(km.labels_, return_counts=True)
        weights = np.zeros(len(km.cluster_centers_))
        weights[labels] = counts / counts.sum()

        dists = znorm_centroid_distances(series, window, km.cluster_centers_)
        window_scores = dists @ weights
        return window_scores_to_point_scores(window_scores, len(series), window)
