"""NORMA-style detector: distance to a clustered normal pattern."""

from __future__ import annotations

import numpy as np

from ..ml.cluster import KMeans
from ..ml.scalers import zscore
from .base import AnomalyDetector, register_detector, sliding_windows, window_scores_to_point_scores


@register_detector("NORMA")
class NormaDetector(AnomalyDetector):
    """Identify normal patterns by clustering subsequences, score by distance.

    Following the NormA idea, the normal model is a weighted set of cluster
    centroids (weights proportional to cluster sizes); the anomaly score of a
    subsequence is its weighted distance to the normal model.
    """

    def __init__(self, window: int = 32, n_clusters: int = 4, max_windows: int = 1500, seed: int = 0) -> None:
        super().__init__(window)
        self.n_clusters = n_clusters
        self.max_windows = max_windows
        self.seed = seed

    def score(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64).ravel()
        window = self.effective_window(series)
        subs = sliding_windows(series, window)
        z = np.apply_along_axis(zscore, 1, subs)

        # Fit the normal model on a strided sample to keep clustering cheap.
        if len(z) > self.max_windows:
            step = int(np.ceil(len(z) / self.max_windows))
            sample = z[::step]
        else:
            sample = z
        k = max(1, min(self.n_clusters, len(sample)))
        km = KMeans(n_clusters=k, seed=self.seed).fit(sample)
        labels, counts = np.unique(km.labels_, return_counts=True)
        weights = np.zeros(len(km.cluster_centers_))
        weights[labels] = counts / counts.sum()

        dists = km.transform(z)  # (n_windows, k)
        window_scores = (dists * weights[None, :]).sum(axis=1)
        return window_scores_to_point_scores(window_scores, len(series), window)
