"""Local Outlier Factor detector on sliding-window subsequences."""

from __future__ import annotations

import numpy as np

from ..ml.neighbors import kneighbors
from .base import AnomalyDetector, register_detector, sliding_windows, window_scores_to_point_scores


def local_outlier_factor(x: np.ndarray, n_neighbors: int = 20) -> np.ndarray:
    """Compute the LOF score of each row of ``x`` (Breunig et al., 2000)."""
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    k = max(1, min(n_neighbors, n - 1))
    dist, idx = kneighbors(x, x, k, exclude_self=True)
    k_dist = dist[:, -1]  # distance to the k-th neighbour

    # Reachability distance of p w.r.t. o: max(k_dist(o), d(p, o)).
    reach = np.maximum(k_dist[idx], dist)
    lrd = 1.0 / np.maximum(reach.mean(axis=1), 1e-12)
    lof = (lrd[idx].mean(axis=1)) / np.maximum(lrd, 1e-12)
    return lof


@register_detector("LOF")
class LOFDetector(AnomalyDetector):
    """LOF over sliding-window subsequences of the series."""

    def __init__(self, window: int = 32, n_neighbors: int = 20, max_windows: int = 2000, seed: int = 0) -> None:
        super().__init__(window)
        self.n_neighbors = n_neighbors
        self.max_windows = max_windows
        self.seed = seed

    def score(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64).ravel()
        window = self.effective_window(series)
        subs = sliding_windows(series, window)
        if len(subs) > self.max_windows:
            # Stride the windows to bound the O(n^2) distance computation.
            stride = int(np.ceil(len(subs) / self.max_windows))
            subs = sliding_windows(series, window, stride=stride)
        else:
            stride = 1
        scores = local_outlier_factor(subs, self.n_neighbors)
        return window_scores_to_point_scores(scores, len(series), window, stride=stride)
