"""CNN forecasting detector built on ``repro.nn``."""

from __future__ import annotations

import numpy as np

from .. import nn
from ..ml.scalers import zscore
from .base import AnomalyDetector, register_detector, sliding_windows


class _CNNForecaster(nn.Module):
    """Two convolution blocks followed by a linear head predicting the next value."""

    def __init__(self, context: int, channels: int = 16) -> None:
        super().__init__()
        self.conv1 = nn.Conv1d(1, channels, kernel_size=3, padding=1)
        self.conv2 = nn.Conv1d(channels, channels, kernel_size=3, padding=1)
        self.head = nn.Linear(channels, 1)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        # x: (N, 1, T)
        h = self.conv1(x).relu()
        h = self.conv2(h).relu()
        pooled = h.mean(axis=2)
        return self.head(pooled).reshape(-1)


@register_detector("CNN")
class CNNDetector(AnomalyDetector):
    """Predict each point from its context with a small CNN; score by error."""

    def __init__(
        self,
        window: int = 32,
        context: int = 16,
        channels: int = 16,
        epochs: int = 5,
        batch_size: int = 64,
        lr: float = 1e-2,
        max_train_windows: int = 384,
        seed: int = 0,
    ) -> None:
        super().__init__(window)
        self.context = context
        self.channels = channels
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.max_train_windows = max_train_windows
        self.seed = seed

    def score(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64).ravel()
        norm = zscore(series)
        context = int(max(4, min(self.context, len(series) // 4)))

        blocks = sliding_windows(norm, context + 1)
        inputs = blocks[:, :context]
        targets = blocks[:, context]

        rng = np.random.default_rng(self.seed)
        if len(inputs) > self.max_train_windows:
            train_idx = rng.choice(len(inputs), size=self.max_train_windows, replace=False)
        else:
            train_idx = np.arange(len(inputs))

        nn.init.set_seed(self.seed)
        model = _CNNForecaster(context, channels=self.channels)
        opt = nn.Adam(model.parameters(), lr=self.lr)
        for _ in range(self.epochs):
            order = rng.permutation(train_idx)
            for start in range(0, len(order), self.batch_size):
                idx = order[start:start + self.batch_size]
                pred = model(nn.Tensor(inputs[idx][:, None, :]))
                loss = nn.mse_loss(pred, targets[idx])
                opt.zero_grad()
                loss.backward()
                opt.step()

        model.eval()
        errors = np.zeros(len(inputs))
        with nn.no_grad():
            for start in range(0, len(inputs), 1024):
                idx = slice(start, start + 1024)
                pred = model(nn.Tensor(inputs[idx][:, None, :])).numpy()
                errors[idx] = np.abs(pred - targets[idx])

        scores = np.zeros(len(series))
        scores[context:context + len(errors)] = errors
        if context > 0 and len(errors) > 0:
            scores[:context] = errors[0]
        return scores
