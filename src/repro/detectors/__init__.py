"""``repro.detectors`` — the 12-model TSAD candidate set from the paper.

Each detector is an unsupervised scorer: ``detect(series)`` returns one
anomaly score per point, normalised to [0, 1].  The set mirrors Table 5 of
the paper: IForest, IForest1, LOF, HBOS, MP, NORMA, PCA, AE, LSTM-AD, POLY,
CNN, OCSVM.
"""

from .base import (
    DEFAULT_MODEL_NAMES,
    AnomalyDetector,
    detector_names,
    make_default_model_set,
    make_detector,
    normalize_scores,
    register_detector,
    sliding_windows,
    window_scores_to_point_scores,
)
from .ensemble import DetectorEnsemble, ensemble_cost_model
from .extended import (
    SpectralResidualDetector,
    SubsequenceKNNDetector,
    make_extended_model_set,
)
from .iforest import IForest1Detector, IForestDetector, IsolationForest
from .lof import LOFDetector, local_outlier_factor
from .hbos import HBOSDetector, hbos_scores
from .matrix_profile import MatrixProfileDetector, matrix_profile
from .norma import NormaDetector
from .pca import PCADetector
from .autoencoder import AutoEncoderDetector
from .lstm_ad import LSTMADDetector
from .poly import PolyDetector
from .cnn_ad import CNNDetector
from .ocsvm import OCSVMDetector

__all__ = [
    "DEFAULT_MODEL_NAMES",
    "DetectorEnsemble", "ensemble_cost_model",
    "SpectralResidualDetector", "SubsequenceKNNDetector", "make_extended_model_set",
    "AnomalyDetector", "detector_names", "make_default_model_set", "make_detector",
    "normalize_scores", "register_detector", "sliding_windows", "window_scores_to_point_scores",
    "IForestDetector", "IForest1Detector", "IsolationForest",
    "LOFDetector", "local_outlier_factor",
    "HBOSDetector", "hbos_scores",
    "MatrixProfileDetector", "matrix_profile",
    "NormaDetector", "PCADetector", "AutoEncoderDetector", "LSTMADDetector",
    "PolyDetector", "CNNDetector", "OCSVMDetector",
]
