"""PCA reconstruction-error detector."""

from __future__ import annotations

import numpy as np

from ..ml.cluster import PCA
from .base import AnomalyDetector, register_detector, sliding_windows, window_scores_to_point_scores


@register_detector("PCA")
class PCADetector(AnomalyDetector):
    """Project subsequences onto a low-dimensional hyperplane.

    Points whose covering subsequences are poorly reconstructed (large
    distance from the principal hyperplane) are flagged as anomalous.
    """

    def __init__(self, window: int = 32, n_components: int = 3) -> None:
        super().__init__(window)
        self.n_components = n_components

    def score(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64).ravel()
        window = self.effective_window(series)
        subs = sliding_windows(series, window)
        k = max(1, min(self.n_components, window - 1, len(subs) - 1))
        pca = PCA(n_components=k).fit(subs)
        window_scores = pca.reconstruction_error(subs)
        return window_scores_to_point_scores(window_scores, len(series), window)
