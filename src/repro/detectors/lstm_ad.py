"""LSTM forecasting detector: anomalies deviate from the predicted value."""

from __future__ import annotations

import numpy as np

from .. import nn
from ..ml.scalers import zscore
from .base import AnomalyDetector, register_detector, window_scores_to_point_scores, sliding_windows


class _LSTMForecaster(nn.Module):
    """LSTM that predicts the next value from a context window."""

    def __init__(self, hidden: int = 16) -> None:
        super().__init__()
        self.lstm = nn.LSTM(1, hidden)
        self.head = nn.Linear(hidden, 1)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        # x: (N, T, 1) -> prediction (N,)
        states = self.lstm(x)
        last = states[:, -1, :]
        return self.head(last).reshape(-1)


@register_detector("LSTM-AD")
class LSTMADDetector(AnomalyDetector):
    """Predict each point from its preceding context with an LSTM.

    The per-point anomaly score is the absolute prediction error.  Training
    uses a subsample of context windows to keep the detector fast enough for
    the oracle labelling pass.
    """

    def __init__(
        self,
        window: int = 32,
        context: int = 16,
        hidden: int = 16,
        epochs: int = 3,
        batch_size: int = 64,
        lr: float = 1e-2,
        max_train_windows: int = 256,
        seed: int = 0,
    ) -> None:
        super().__init__(window)
        self.context = context
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.max_train_windows = max_train_windows
        self.seed = seed

    def score(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64).ravel()
        norm = zscore(series)
        context = int(max(4, min(self.context, len(series) // 4)))

        # Build (context -> next value) pairs.
        blocks = sliding_windows(norm, context + 1)
        inputs = blocks[:, :context]
        targets = blocks[:, context]

        rng = np.random.default_rng(self.seed)
        if len(inputs) > self.max_train_windows:
            train_idx = rng.choice(len(inputs), size=self.max_train_windows, replace=False)
        else:
            train_idx = np.arange(len(inputs))

        nn.init.set_seed(self.seed)
        model = _LSTMForecaster(hidden=self.hidden)
        opt = nn.Adam(model.parameters(), lr=self.lr)
        for _ in range(self.epochs):
            order = rng.permutation(train_idx)
            for start in range(0, len(order), self.batch_size):
                idx = order[start:start + self.batch_size]
                pred = model(nn.Tensor(inputs[idx][:, :, None]))
                loss = nn.mse_loss(pred, targets[idx])
                opt.zero_grad()
                loss.backward()
                opt.step()

        model.eval()
        errors = np.zeros(len(inputs))
        with nn.no_grad():
            for start in range(0, len(inputs), 512):
                idx = slice(start, start + 512)
                pred = model(nn.Tensor(inputs[idx][:, :, None])).numpy()
                errors[idx] = np.abs(pred - targets[idx])

        # The error of the pair ending at position (context + i) scores that point.
        scores = np.zeros(len(series))
        scores[context:context + len(errors)] = errors
        if context > 0 and len(errors) > 0:
            scores[:context] = errors[0]
        return scores
