"""Matrix Profile detector: nearest-neighbour distance of every subsequence."""

from __future__ import annotations

import numpy as np

from .base import AnomalyDetector, register_detector, sliding_windows, window_scores_to_point_scores


def matrix_profile(series: np.ndarray, window: int, exclusion: int | None = None, chunk: int = 256) -> np.ndarray:
    """Compute the self-join matrix profile of ``series``.

    Uses z-normalised Euclidean distance between subsequences, excluding a
    trivial-match zone of ``exclusion`` positions around each query.  The
    computation is a blocked all-pairs correlation (matmul), which is fast
    enough for the benchmark series lengths used in this reproduction.
    """
    series = np.asarray(series, dtype=np.float64).ravel()
    subs = sliding_windows(series, window)
    n = subs.shape[0]
    exclusion = exclusion if exclusion is not None else max(1, window // 2)

    mean = subs.mean(axis=1, keepdims=True)
    std = subs.std(axis=1, keepdims=True)
    std = np.where(std < 1e-12, 1.0, std)
    z = (subs - mean) / std

    profile = np.full(n, np.inf)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        corr = z[start:stop] @ z.T / window  # (chunk, n), values in [-1, 1]
        d2 = 2.0 * window * (1.0 - corr)
        for row, query in enumerate(range(start, stop)):
            lo = max(0, query - exclusion)
            hi = min(n, query + exclusion + 1)
            d2[row, lo:hi] = np.inf
        profile[start:stop] = np.sqrt(np.maximum(d2.min(axis=1), 0.0))
    # A series shorter than ~2 windows may have every distance excluded.
    profile[~np.isfinite(profile)] = 0.0
    return profile


@register_detector("MP")
class MatrixProfileDetector(AnomalyDetector):
    """Score each point by the matrix-profile value of the windows covering it."""

    def __init__(self, window: int = 32, chunk: int = 256) -> None:
        super().__init__(window)
        self.chunk = chunk

    def score(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64).ravel()
        window = self.effective_window(series)
        profile = matrix_profile(series, window, chunk=self.chunk)
        return window_scores_to_point_scores(profile, len(series), window)
