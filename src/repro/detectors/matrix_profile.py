"""Matrix Profile detector: nearest-neighbour distance of every subsequence."""

from __future__ import annotations

import numpy as np

from ..accel import profile as accel_profile
from .base import AnomalyDetector, register_detector, window_scores_to_point_scores


def matrix_profile(series: np.ndarray, window: int, exclusion: int | None = None,
                   chunk: int = 256, dtype=None) -> np.ndarray:
    """Compute the self-join matrix profile of ``series``.

    Uses z-normalised Euclidean distance between subsequences, excluding a
    trivial-match zone of ``exclusion`` positions around each query.  The
    computation runs on :func:`repro.accel.matrix_profile` — a diagonal
    cumulative-sum kernel that touches every subsequence pair once, O(n²)
    total instead of the historical blocked matmul's O(n²·w) (kept as
    :func:`repro.accel.reference.matrix_profile_matmul`; float64 results
    agree to atol ≤ 1e-8, asserted by tests and benchmarks).

    Edge cases return all-zero profiles instead of leaking inf/NaN: series
    shorter than ``window`` (empty profile), a single subsequence, and
    series so short that every pair falls in the exclusion zone.
    """
    series = np.asarray(series, dtype=np.float64).ravel()
    if len(series) < window:
        return np.zeros(0)
    return accel_profile.matrix_profile(series, window, exclusion=exclusion,
                                        block=chunk, dtype=dtype)


@register_detector("MP")
class MatrixProfileDetector(AnomalyDetector):
    """Score each point by the matrix-profile value of the windows covering it."""

    def __init__(self, window: int = 32, chunk: int = 256) -> None:
        super().__init__(window)
        self.chunk = chunk

    def score(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64).ravel()
        window = self.effective_window(series)
        if len(series) < window:
            # Too short for a single subsequence: no profile, flat scores.
            return np.zeros(len(series))
        profile = matrix_profile(series, window, chunk=self.chunk)
        return window_scores_to_point_scores(profile, len(series), window)
