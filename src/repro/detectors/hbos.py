"""Histogram-Based Outlier Score detector."""

from __future__ import annotations

import numpy as np

from .base import AnomalyDetector, register_detector, sliding_windows, window_scores_to_point_scores


def hbos_scores(x: np.ndarray, n_bins: int = 20, eps: float = 1e-12) -> np.ndarray:
    """HBOS over the columns of ``x``: sum of log inverse bin heights."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 1:
        x = x[:, None]
    n, d = x.shape
    scores = np.zeros(n)
    for j in range(d):
        col = x[:, j]
        hist, edges = np.histogram(col, bins=n_bins)
        density = hist / max(hist.max(), 1)
        bin_idx = np.clip(np.searchsorted(edges, col, side="right") - 1, 0, n_bins - 1)
        scores += np.log(1.0 / (density[bin_idx] + eps))
    return scores


@register_detector("HBOS")
class HBOSDetector(AnomalyDetector):
    """HBOS on a small set of window statistics (mean, std, min, max, last)."""

    def __init__(self, window: int = 32, n_bins: int = 20) -> None:
        super().__init__(window)
        self.n_bins = n_bins

    def score(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64).ravel()
        window = self.effective_window(series)
        subs = sliding_windows(series, window)
        feats = np.column_stack([
            subs.mean(axis=1),
            subs.std(axis=1),
            subs.min(axis=1),
            subs.max(axis=1),
            subs[:, -1],
        ])
        window_scores = hbos_scores(feats, n_bins=self.n_bins)
        return window_scores_to_point_scores(window_scores, len(series), window)
