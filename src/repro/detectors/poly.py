"""Polynomial-approximation detector (POLY)."""

from __future__ import annotations

import numpy as np

from .base import AnomalyDetector, register_detector, sliding_windows, window_scores_to_point_scores

#: Rows per block of the projection below — bounds the (block, window, window)
#: broadcast buffer; any block size yields the same bits (rows are reduced
#: independently).
_PROJECT_BLOCK = 2048


def _apply_projector_rowwise(subs: np.ndarray, projector: np.ndarray) -> np.ndarray:
    """Apply ``projector`` to every row of ``subs``, row-independently.

    Equivalent to ``subs @ projector.T`` in exact arithmetic, but computed
    as a broadcasted multiply with a per-row reduction: each output row's
    bits depend only on that row's values, never on how many other rows sit
    in the batch.  BLAS GEMM does not give that guarantee (its blocking
    changes with the matrix shape, shifting results by an ulp), and the
    streaming layer's exact tail re-scoring relies on it.
    """
    out = np.empty_like(subs)
    for start in range(0, len(subs), _PROJECT_BLOCK):
        block = subs[start:start + _PROJECT_BLOCK]
        out[start:start + len(block)] = (block[:, None, :] * projector[None, :, :]).sum(axis=2)
    return out


@register_detector("POLY")
class PolyDetector(AnomalyDetector):
    """Fit a low-degree polynomial to each subsequence and score the residual.

    A point covered by subsequences that deviate strongly from their own
    smooth polynomial approximation is likely to be anomalous (spikes,
    dropouts, abrupt level shifts).

    Each window's residual depends only on that window's values (the
    projector is fixed by window size and degree, and it is applied
    row-independently), so the detector is windowed-local and supports
    exact incremental tail re-scoring on streams.
    """

    locally_scored = True

    def __init__(self, window: int = 32, degree: int = 3) -> None:
        super().__init__(window)
        self.degree = degree

    def score(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64).ravel()
        window = self.effective_window(series)
        subs = sliding_windows(series, window)

        degree = max(1, min(self.degree, window - 1))
        t = np.linspace(-1.0, 1.0, window)
        vandermonde = np.vander(t, degree + 1, increasing=True)  # (window, degree+1)
        # Projection onto the polynomial space: H = V (V^T V)^-1 V^T.
        projector = vandermonde @ np.linalg.pinv(vandermonde)
        residuals = subs - _apply_projector_rowwise(subs, projector)
        window_scores = (residuals ** 2).mean(axis=1)
        return window_scores_to_point_scores(window_scores, len(series), window)
