"""Polynomial-approximation detector (POLY)."""

from __future__ import annotations

import numpy as np

from .base import AnomalyDetector, register_detector, sliding_windows, window_scores_to_point_scores


@register_detector("POLY")
class PolyDetector(AnomalyDetector):
    """Fit a low-degree polynomial to each subsequence and score the residual.

    A point covered by subsequences that deviate strongly from their own
    smooth polynomial approximation is likely to be anomalous (spikes,
    dropouts, abrupt level shifts).
    """

    def __init__(self, window: int = 32, degree: int = 3) -> None:
        super().__init__(window)
        self.degree = degree

    def score(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64).ravel()
        window = self.effective_window(series)
        subs = sliding_windows(series, window)

        degree = max(1, min(self.degree, window - 1))
        t = np.linspace(-1.0, 1.0, window)
        vandermonde = np.vander(t, degree + 1, increasing=True)  # (window, degree+1)
        # Projection onto the polynomial space: H = V (V^T V)^-1 V^T.
        projector = vandermonde @ np.linalg.pinv(vandermonde)
        residuals = subs - subs @ projector.T
        window_scores = (residuals ** 2).mean(axis=1)
        return window_scores_to_point_scores(window_scores, len(series), window)
