"""Content-addressed LRU result cache for selection serving.

Query traffic to a model-selection service is heavily repetitive: the same
series (dashboards refreshing, retries, shared data sources) is submitted
again and again, and a selector's answer for identical bytes never changes.
The cache therefore keys results by a *content fingerprint* of the series
(plus the serving configuration that shaped the answer), not by name — two
queries with the same data hit the same entry no matter what they are
called, and any change to the bytes produces a new key.

Eviction is least-recently-used with a fixed capacity, and every lookup is
counted so operators can watch hit rates (:class:`CacheStats`).  All
operations take a lock, so a service shared across worker threads needs no
extra synchronisation.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..obs.metrics import Counter, default_registry


def series_fingerprint(series: np.ndarray, extra: Iterable[object] = ()) -> str:
    """Content-addressed key of a series (plus config tokens in ``extra``).

    Hashes the full byte content, dtype and shape, so any change to the data
    yields a different key; ``extra`` tokens (window size, aggregation, ...)
    separate answers computed under different serving configurations.
    """
    series = np.ascontiguousarray(np.asarray(series))
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(str(series.dtype).encode())
    hasher.update(str(series.shape).encode())
    hasher.update(series.tobytes())
    for token in extra:
        hasher.update(b"\x00")
        hasher.update(str(token).encode())
    return hasher.hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Counters of one cache: lookups, outcomes and current occupancy."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


class LRUCache:
    """A thread-safe, fixed-capacity least-recently-used map.

    The hit/miss/eviction counters are :class:`repro.obs.metrics.Counter`
    objects — always functional, so :attr:`stats` never changes behaviour —
    and are registered on the default metrics registry under the cache's
    ``name`` label, so ``render_prometheus()`` exposes every cache that was
    built while observability was enabled.
    """

    def __init__(self, capacity: int = 4096, name: str = "cache") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.Lock()
        registry = default_registry()
        labels = {"cache": name}
        self._hits = registry.register(Counter(
            "repro_cache_hits_total", "lookups answered from the cache", labels))
        self._misses = registry.register(Counter(
            "repro_cache_misses_total", "lookups that missed the cache", labels))
        self._evictions = registry.register(Counter(
            "repro_cache_evictions_total", "entries evicted by the LRU policy", labels))

    def get(self, key: str) -> Optional[object]:
        """Return the cached value (refreshing recency) or ``None``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits.inc()
                return self._entries[key]
            self._misses.inc()
            return None

    def put(self, key: str, value: object) -> None:
        """Insert or refresh an entry, evicting the oldest when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions.inc()

    def clear(self) -> None:
        """Drop every entry (the counters keep accumulating)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters (a thin registry view)."""
        with self._lock:
            return CacheStats(
                hits=self._hits.value,
                misses=self._misses.value,
                evictions=self._evictions.value,
                size=len(self._entries),
                capacity=self.capacity,
            )
