"""Worker abstraction for fan-out work (oracle labelling, detector fan-out).

A :class:`WorkerPool` maps a function over a list of items either
sequentially (``max_workers=0``, the default — no threads, deterministic
execution order, trivially debuggable) or on a thread pool.  Results always
come back in input order regardless of completion order, so callers can
treat the two modes interchangeably.

Threads (not processes) are the right tool here: the expensive fan-out
payloads — running a detector over a series, scoring an oracle row — spend
most of their time inside NumPy, which releases the GIL for the heavy
array operations.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class WorkerPool:
    """Map work over items, sequentially or on a bounded thread pool."""

    def __init__(self, max_workers: int = 0) -> None:
        if max_workers < 0:
            raise ValueError("max_workers must be >= 0 (0 means sequential)")
        self.max_workers = max_workers

    @property
    def is_parallel(self) -> bool:
        """Whether this pool actually spawns threads (needs >= 2 workers)."""
        return self.max_workers >= 2

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in input order."""
        items = list(items)
        if not self.is_parallel or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=min(self.max_workers, len(items))) as pool:
            return list(pool.map(fn, items))

    def starmap(self, fn: Callable[..., R], items: Iterable[Sequence]) -> List[R]:
        """Like :meth:`map` but unpacks each item as positional arguments."""
        return self.map(lambda args: fn(*args), items)

    def __repr__(self) -> str:
        mode = f"threads={self.max_workers}" if self.is_parallel else "sequential"
        return f"WorkerPool({mode})"
