"""Worker abstraction for fan-out work (oracle labelling, detector fan-out).

A :class:`WorkerPool` maps a function over a list of items either
sequentially (``max_workers=0``, the default — no threads, deterministic
execution order, trivially debuggable), on a thread pool, or on a pool of
forked processes.  Results always come back in input order regardless of
completion order, so callers can treat the modes interchangeably.

**Threads** (``mode="thread"``) are right when the payload spends its time
inside NumPy, which releases the GIL for the heavy array operations —
distance kernels, GEMMs, the matrix-profile kernel.

**Processes** (``mode="process"``, opt-in) are right when the payload is
GIL-bound Python — the autograd tape of the neural detectors (AE /
LSTM-AD / CNN) in an oracle labelling pass is mostly Python-level
bookkeeping, so threads serialise on the GIL there.  The pool forks, so
children inherit the parent's memory: the function, the item list and any
series arrays they close over are shared copy-on-write — nothing is
pickled on the way *in*, only results on the way out.  Platforms without
``fork`` (Windows / some macOS configurations) fall back to threads.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")

WORKER_MODES = ("thread", "process")


class WorkerError(RuntimeError):
    """A forked worker raised; carries the worker-side traceback text.

    Raised as the ``__cause__`` of the original exception (re-raised in the
    parent when it pickles) so both the parent-side call stack and the
    worker-side stack appear in the report.  When the original exception
    cannot cross the process boundary (unpicklable), this error is raised
    alone with the original type name in its message.
    """

    def __init__(self, item_index: int, exc_type: str, worker_traceback: str) -> None:
        super().__init__(
            f"worker failed on item {item_index} with {exc_type}\n"
            f"--- worker traceback ---\n{worker_traceback}")
        self.item_index = item_index
        self.exc_type = exc_type
        self.worker_traceback = worker_traceback

#: payload of an in-flight fork-pool map; children inherit it through fork,
#: so only the integer item index crosses the pipe on the way in.  The lock
#: serialises concurrent process-mode maps from different threads — without
#: it, one thread's fork could pick up another thread's payload.
_fork_payload: Optional[Tuple[Callable, Sequence]] = None
_fork_lock = threading.Lock()


def _fork_invoke(index: int):
    # Success and failure both travel as tagged tuples: ``multiprocessing``
    # pickles exceptions without ``__traceback__``, so the worker-side stack
    # must be captured here, as text, before the pipe erases it.
    fn, items = _fork_payload
    try:
        return ("ok", fn(items[index]))
    except Exception as error:
        try:
            payload = pickle.dumps(error)
        except Exception:
            payload = None
        return ("err", index, type(error).__name__, payload, traceback.format_exc())


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class WorkerPool:
    """Map work over items: sequentially, on threads, or on forked processes."""

    def __init__(self, max_workers: int = 0, mode: str = "thread") -> None:
        if max_workers < 0:
            raise ValueError("max_workers must be >= 0 (0 means sequential)")
        if mode not in WORKER_MODES:
            raise ValueError(f"unknown worker mode {mode!r}; expected one of {WORKER_MODES}")
        self.max_workers = max_workers
        self.mode = mode

    @property
    def is_parallel(self) -> bool:
        """Whether this pool actually fans out (needs >= 2 workers)."""
        return self.max_workers >= 2

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in input order."""
        items = list(items)
        if not self.is_parallel or len(items) <= 1:
            return [fn(item) for item in items]
        workers = min(self.max_workers, len(items))
        if self.mode == "process" and _fork_available():
            return self._map_forked(fn, items, workers)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))

    @staticmethod
    def _map_forked(fn: Callable[[T], R], items: List[T], workers: int) -> List[R]:
        global _fork_payload
        if _fork_payload is not None:
            # This process *is* a forked worker (it inherited an in-flight
            # payload): a nested process fan-out would fork a pool from
            # inside a pool, so run this level inline instead.
            return [fn(item) for item in items]
        with _fork_lock:
            _fork_payload = (fn, items)
            try:
                ctx = multiprocessing.get_context("fork")
                with ctx.Pool(processes=workers) as pool:
                    outcomes = pool.map(_fork_invoke, range(len(items)))
            finally:
                _fork_payload = None
        results: List[R] = []
        for outcome in outcomes:
            if outcome[0] == "ok":
                results.append(outcome[1])
                continue
            _, index, exc_type, payload, worker_tb = outcome
            cause = WorkerError(index, exc_type, worker_tb)
            if payload is not None:
                try:
                    original = pickle.loads(payload)
                except Exception:
                    original = None
                if isinstance(original, Exception):
                    raise original from cause
            raise cause
        return results

    def starmap(self, fn: Callable[..., R], items: Iterable[Sequence]) -> List[R]:
        """Like :meth:`map` but unpacks each item as positional arguments."""
        return self.map(lambda args: fn(*args), items)

    def __repr__(self) -> str:
        if self.is_parallel:
            mode = f"{self.mode}s={self.max_workers}"
        else:
            mode = "sequential"
        return f"WorkerPool({mode})"
