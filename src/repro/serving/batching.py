"""Batch assembly utilities for the serving layer.

A serving deployment rarely receives exactly the batch it wants to compute:
queries arrive as one giant directory sweep or as a trickle of singletons.
These helpers reshape arbitrary record sequences into micro-batches whose
*window* count (the real unit of selector work) is bounded, so peak memory
stays flat no matter how many series a caller submits at once.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from ..data.records import TimeSeriesRecord
from ..data.windows import count_windows


def microbatches(
    records: Sequence[TimeSeriesRecord],
    window: int,
    stride: Optional[int] = None,
    max_windows: int = 8192,
) -> Iterator[List[TimeSeriesRecord]]:
    """Split records into batches of at most ``max_windows`` total windows.

    Record order is preserved; a single series larger than the budget still
    forms its own batch (it cannot be split without changing results).
    """
    if max_windows < 1:
        raise ValueError("max_windows must be >= 1")
    batch: List[TimeSeriesRecord] = []
    batch_windows = 0
    for record in records:
        n = count_windows(record.length, window, stride)
        if batch and batch_windows + n > max_windows:
            yield batch
            batch = []
            batch_windows = 0
        batch.append(record)
        batch_windows += n
    if batch:
        yield batch
