"""Batch assembly utilities for the serving layer.

A serving deployment rarely receives exactly the batch it wants to compute:
queries arrive as one giant directory sweep or as a trickle of singletons.
These helpers reshape arbitrary record sequences into micro-batches whose
*window* count (the real unit of selector work) is bounded, so peak memory
stays flat no matter how many series a caller submits at once.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from ..data.records import TimeSeriesRecord
from ..data.windows import count_windows


def window_budget_groups(counts: Sequence[int], max_windows: int) -> List[List[int]]:
    """Group item indices so each group's window total stays within budget.

    ``counts[i]`` is the number of windows item ``i`` contributes.  Item
    order is preserved and groups are contiguous; an item alone larger than
    the budget still forms its own group (it cannot be split without
    changing results).  Items contributing zero windows ride along with
    their neighbours.  This is the shared budgeting rule of directory-sweep
    micro-batching and the stream engine's cross-stream forward batching.
    """
    if max_windows < 1:
        raise ValueError("max_windows must be >= 1")
    groups: List[List[int]] = []
    group: List[int] = []
    group_windows = 0
    for i, n in enumerate(counts):
        if group and group_windows + n > max_windows:
            groups.append(group)
            group = []
            group_windows = 0
        group.append(i)
        group_windows += n
    if group:
        groups.append(group)
    return groups


def microbatches(
    records: Sequence[TimeSeriesRecord],
    window: int,
    stride: Optional[int] = None,
    max_windows: int = 8192,
) -> Iterator[List[TimeSeriesRecord]]:
    """Split records into batches of at most ``max_windows`` total windows.

    Record order is preserved; a single series larger than the budget still
    forms its own batch (it cannot be split without changing results).
    """
    counts = [count_windows(record.length, window, stride) for record in records]
    for group in window_budget_groups(counts, max_windows):
        yield [records[i] for i in group]
