"""``repro.serving`` — the batched, cached selection-serving layer.

Turns a trained selector into a throughput-oriented service: batches of
series are windowed and classified in one vectorised pass, repeated queries
are answered from a content-addressed LRU cache, and fan-out work (oracle
labelling, per-series detection) can run on a worker pool.

* :mod:`repro.serving.cache`    — series fingerprinting + LRU result cache,
* :mod:`repro.serving.transform_cache` — content-addressed memo of
  feature/ROCKET transform outputs shared across serve/stream/sharded,
* :mod:`repro.serving.batching` — batch assembly utilities,
* :mod:`repro.serving.workers`  — sequential/thread-pool worker abstraction,
* :mod:`repro.serving.service`  — :class:`SelectionService`, the front end.

See ``docs/architecture.md`` for the batching/caching semantics.
"""

from .batching import microbatches, window_budget_groups
from .cache import CacheStats, LRUCache, series_fingerprint
from .service import SelectionResult, SelectionService, ServingConfig
from .transform_cache import (
    cached_transform,
    configure_transform_cache,
    default_transform_cache,
    transform_cache_stats,
)
from .workers import WorkerError, WorkerPool

__all__ = [
    "CacheStats", "LRUCache", "series_fingerprint",
    "SelectionResult", "SelectionService", "ServingConfig",
    "WorkerError", "WorkerPool", "microbatches", "window_budget_groups",
    "cached_transform", "configure_transform_cache",
    "default_transform_cache", "transform_cache_stats",
]
