"""The selection service: batched, cached "which TSAD model?" answering.

This is the throughput-oriented front end over a trained selector.  Where
:class:`repro.system.pipeline.ModelSelectionPipeline` answers one series at
a time (window → forward pass → vote), :class:`SelectionService` accepts a
whole batch and reorganises the same work for scale:

1. **Content-addressed caching** — every series is fingerprinted
   (:func:`repro.serving.cache.series_fingerprint`); repeated queries are
   answered from an LRU cache without touching the selector at all.
2. **Batched windowing** — the cache-missing series are windowed together
   (:func:`repro.data.windows.extract_windows_batch`) into one stacked
   matrix, normalised in a single vectorised pass.
3. **One batched forward pass** — the stacked windows go through the
   selector's chunked predict path
   (:func:`repro.core.inference.batched_predict_proba`) instead of one
   forward pass per series.
4. **Shared aggregation** — per-series majority voting reuses
   :func:`repro.eval.evaluation.aggregate_window_probas`, the exact code
   path of the one-shot pipeline, so batched selections are bitwise
   identical to sequential ones.

Within one batch, duplicate series (same fingerprint) are computed once and
fan out to every occurrence; the cache counts one lookup per *unique*
series per batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.inference import DEFAULT_PREDICT_BATCH_SIZE
from ..data.records import TimeSeriesRecord
from ..data.windows import extract_windows_batch
from ..eval.evaluation import aggregate_window_probas
from ..obs.audit import NULL_AUDIT
from ..obs.metrics import DEFAULT_COUNT_BUCKETS, Counter, default_registry
from ..obs.trace import span
from ..selectors.base import Selector
from ..selectors.nn_selector import NNSelector
from .cache import CacheStats, LRUCache, series_fingerprint
from .workers import WorkerPool


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving layer (windowing, caching, fan-out)."""

    #: selector input window length (must match how the selector was trained)
    window: int = 96
    #: window stride; ``None`` means non-overlapping (the pipeline default)
    stride: Optional[int] = None
    #: per-series reduction of window predictions: ``"vote"`` or ``"mean"``
    aggregation: str = "vote"
    #: maximum number of cached selection results (LRU beyond that)
    cache_capacity: int = 4096
    #: worker count for detection fan-out; 0 runs sequentially
    max_workers: int = 0
    #: ``"thread"`` or ``"process"`` (fork) for the detection fan-out
    worker_mode: str = "thread"
    #: windows per selector forward chunk (memory/latency trade-off)
    predict_batch_size: int = DEFAULT_PREDICT_BATCH_SIZE
    #: which selector tier serves this service: ``"teacher"`` (the full NN),
    #: ``"student"`` (distilled) or ``"student-int8"`` (distilled+quantized).
    #: Purely descriptive — the service serves whatever selector it is given
    #: — but stamped on metrics so operators can attribute traffic per tier.
    selector_tier: str = "teacher"
    #: per-batch latency SLO in milliseconds; with a cascade router attached
    #: the admission step picks the best predicted-quality plan fitting it.
    #: ``None`` leaves admission quality-only (cascade plan by default).
    latency_slo_ms: Optional[float] = None
    #: per-batch peak-memory budget in megabytes (see ``latency_slo_ms``)
    memory_budget_mb: Optional[float] = None


@dataclass(frozen=True)
class SelectionResult:
    """The service's answer for one series."""

    series_name: str
    selected_index: int
    selected_model: str
    votes: Dict[str, float]
    n_windows: int
    from_cache: bool = False

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation (the ``serve`` CLI output format)."""
        return {
            "series": self.series_name,
            "selected_index": self.selected_index,
            "selected_model": self.selected_model,
            "votes": dict(self.votes),
            "n_windows": self.n_windows,
            "cached": self.from_cache,
        }


class SelectionService:
    """Serve model-selection queries from a trained selector, at scale."""

    #: evictions inside one batch at or above this fraction of the cache
    #: capacity are audited as a ``cache_eviction_storm`` event
    EVICTION_STORM_FRACTION = 0.25

    def __init__(
        self,
        selector: Selector,
        detector_names: Sequence[str],
        config: Optional[ServingConfig] = None,
        audit: Optional[object] = None,
        cascade: Optional[object] = None,
    ) -> None:
        self.selector = selector
        self.detector_names = list(detector_names)
        self.config = config or ServingConfig()
        self.cache = LRUCache(self.config.cache_capacity, name="serving_selection")
        self.workers = WorkerPool(self.config.max_workers, mode=self.config.worker_mode)
        self.audit = audit if audit is not None else NULL_AUDIT
        #: optional :class:`repro.cascade.CascadeRouter`; when set, each
        #: miss batch's forward work is admitted against the SLO knobs and
        #: low-margin windows escalate from this service's (fast) selector
        #: to the router's teacher.  ``None`` keeps the exact pre-cascade
        #: code path — selections stay bitwise identical.
        self.cascade = cascade
        #: the last miss batch's admission decision + escalation summary
        self.last_admit: Optional[object] = None
        self.last_cascade: Optional[Dict[str, object]] = None
        registry = default_registry()
        self._tier_selections = registry.register(Counter(
            "repro_selector_tier_selections_total",
            "series selections answered, by serving tier",
            labels={"tier": self.config.selector_tier, "layer": "serving"}))
        self._h_batch_series = registry.histogram(
            "repro_serving_batch_series", "series per select_batch call",
            buckets=DEFAULT_COUNT_BUCKETS)
        self._h_batch_windows = registry.histogram(
            "repro_serving_batch_windows", "stacked windows per cache-missing batch",
            buckets=DEFAULT_COUNT_BUCKETS)
        self._h_forward_seconds = registry.histogram(
            "repro_serving_forward_seconds", "selector forward-pass latency per batch")
        self._h_detect_seconds = registry.histogram(
            "repro_serving_detect_seconds", "worker fan-out latency per detect_batch")
        self._escalated_windows = registry.register(Counter(
            "repro_cascade_escalated_windows_total",
            "windows escalated from the fast tier to the teacher",
            labels={"layer": "serving"}))
        self._slo_fallbacks = registry.register(Counter(
            "repro_cascade_slo_fallbacks_total",
            "miss batches where no plan fit the SLO and the cheapest ran",
            labels={"layer": "serving"}))

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_store(
        cls,
        store_root,
        name: str,
        detector_names: Sequence[str],
        config: Optional[ServingConfig] = None,
    ) -> "SelectionService":
        """Build a service around a selector persisted in a selector store."""
        from ..system.selector_store import SelectorStore  # deferred: system imports serving

        return cls(SelectorStore(store_root).load(name), detector_names, config)

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def fingerprint(self, record: TimeSeriesRecord) -> str:
        """Cache key of one series under this service's configuration."""
        cfg = self.config
        return series_fingerprint(
            record.series,
            extra=(cfg.window, cfg.stride or cfg.window, cfg.aggregation),
        )

    def _predict_proba(self, windows: np.ndarray) -> np.ndarray:
        if isinstance(self.selector, NNSelector):
            return self.selector.predict_proba(windows, batch_size=self.config.predict_batch_size)
        return self.selector.predict_proba(windows)

    def select_batch(self, records: Sequence[TimeSeriesRecord]) -> List[SelectionResult]:
        """Answer a batch of series, vectorised across the cache misses."""
        results: List[Optional[SelectionResult]] = [None] * len(records)
        self._h_batch_series.observe(len(records))
        self._tier_selections.inc(len(records))
        evictions_before = self.cache.stats.evictions

        # One cache lookup per unique series; duplicates share the outcome.
        occurrences: Dict[str, List[int]] = {}
        for i, record in enumerate(records):
            occurrences.setdefault(self.fingerprint(record), []).append(i)

        miss_keys: List[str] = []
        for key, indices in occurrences.items():
            hit = self.cache.get(key)
            if hit is not None:
                for i in indices:
                    # votes is copied so a caller mutating a result cannot
                    # corrupt the cached entry shared by future hits
                    results[i] = replace(hit, series_name=records[i].name,
                                         votes=dict(hit.votes), from_cache=True)
            else:
                miss_keys.append(key)

        if miss_keys:
            cfg = self.config
            windows, offsets = extract_windows_batch(
                [records[occurrences[key][0]].series for key in miss_keys],
                cfg.window,
                stride=cfg.stride,
            )
            self._h_batch_windows.observe(len(windows))
            with self._h_forward_seconds.time(), \
                    span("serving.forward", windows=len(windows), series=len(miss_keys)):
                if self.cascade is None:
                    proba = self._measured_forward(
                        lambda: self._predict_proba(windows),
                        self.config.selector_tier, len(windows))
                else:
                    proba = self._cascade_forward(windows)
            for j, key in enumerate(miss_keys):
                series_proba = proba[offsets[j]:offsets[j + 1]]
                choice, aggregated = aggregate_window_probas(series_proba, cfg.aggregation)
                result = SelectionResult(
                    series_name=records[occurrences[key][0]].name,
                    selected_index=choice,
                    selected_model=self.detector_names[choice],
                    votes={name: float(aggregated[k]) for k, name in enumerate(self.detector_names)},
                    n_windows=len(series_proba),
                )
                self.cache.put(key, result)
                for i in occurrences[key]:
                    results[i] = replace(result, series_name=records[i].name,
                                         votes=dict(result.votes))

        if self.audit.enabled:
            evicted = self.cache.stats.evictions - evictions_before
            storm_floor = max(8, int(self.cache.capacity * self.EVICTION_STORM_FRACTION))
            if evicted >= storm_floor:
                self.audit.record(
                    "cache_eviction_storm", cache=self.cache.name,
                    evicted=int(evicted), capacity=int(self.cache.capacity),
                    batch_series=len(records))
        return results  # type: ignore[return-value]

    def select(self, record: TimeSeriesRecord) -> SelectionResult:
        """Answer a single series (a batch of one — same code path)."""
        return self.select_batch([record])[0]

    # ------------------------------------------------------------------ #
    # cascade plumbing (inert when ``self.cascade is None``)
    # ------------------------------------------------------------------ #
    def _measured_forward(self, fn, tier: str, n_windows: int) -> np.ndarray:
        """Run one forward pass; record a ``cost_observation`` when auditing.

        The measurement is a cost-model training label, never a routing
        input — audited runs stay decision-identical to unaudited ones.
        """
        if not self.audit.enabled:
            return fn()
        from ..cascade.harvest import observed_cost  # deferred: audit-only path

        result, wall_ms, peak_mb = observed_cost(fn)
        self.audit.record(
            "cost_observation", kind="selector_forward", target=tier,
            n_windows=int(n_windows), window=int(self.config.window),
            wall_ms=float(wall_ms), peak_mb=peak_mb)
        return result

    def _cascade_forward(self, windows: np.ndarray) -> np.ndarray:
        """Admit one miss batch against the SLO and run the chosen plan."""
        cfg = self.config
        decision = self.cascade.admit(
            len(windows),
            latency_slo_ms=cfg.latency_slo_ms,
            memory_budget_mb=cfg.memory_budget_mb,
        )
        self.last_admit = decision
        if decision.fallback:
            self._slo_fallbacks.inc()
            if self.audit.enabled:
                self.audit.record("slo_fallback", layer="serving",
                                  n_windows=len(windows), **decision.as_dict())

        n_escalated, min_margin = 0, None
        slow_tier = getattr(self.cascade, "slow_tier", "teacher")
        if decision.plan == "teacher":
            proba = self._measured_forward(
                lambda: self.cascade.forward_slow(windows), slow_tier, len(windows))
        else:
            proba = self._measured_forward(
                lambda: self._predict_proba(windows),
                cfg.selector_tier, len(windows))
            from ..cascade.router import margins  # deferred: cascade-only path

            min_margin = float(margins(proba).min()) if len(proba) else None
            if decision.plan == "cascade":
                mask = self.cascade.escalate_mask(proba, windows)
                if mask.any():
                    proba = np.array(proba, dtype=np.float64, copy=True)
                    proba[mask] = self._measured_forward(
                        lambda: self.cascade.forward_slow(windows[mask]),
                        slow_tier, int(mask.sum()))
                    n_escalated = int(mask.sum())
                    self._escalated_windows.inc(n_escalated)
        self.last_cascade = {
            "plan": decision.plan,
            "slow_tier": slow_tier,
            "escalated_windows": n_escalated,
            "n_windows": len(windows),
            "threshold": float(self.cascade.threshold),
            "min_margin": min_margin,
            "predicted_ms": float(decision.predicted_ms),
            "predicted_mb": float(decision.predicted_mb),
            "fallback": bool(decision.fallback),
        }
        return proba

    def detect_batch(
        self,
        records: Sequence[TimeSeriesRecord],
        model_set: Dict[str, "object"],
    ) -> List[Tuple[SelectionResult, "object"]]:
        """Select a model per series, then fan detection out to the workers.

        Returns ``[(selection, DetectionResult), ...]`` in input order; the
        detection runs use the service's :class:`WorkerPool`, so
        ``max_workers >= 2`` overlaps the per-series detector work.
        """
        from ..system.anomaly_detection import run_detection  # deferred: system imports serving

        selections = self.select_batch(records)
        audit_costs = self.audit.enabled
        # tracemalloc peaks are process-global: inside a worker fan-out a
        # peak is not attributable to one detection, so memory is only
        # tracked on the sequential path (wall time is always safe)
        track_memory = None if self.workers.max_workers < 2 else False

        def detect_one(pair):
            record, selection = pair
            if not audit_costs:
                return selection, run_detection(
                    record, model_set[selection.selected_model],
                    detector_name=selection.selected_model,
                )
            from ..cascade.harvest import observed_cost  # deferred: audit-only path

            detection, wall_ms, peak_mb = observed_cost(
                lambda: run_detection(
                    record, model_set[selection.selected_model],
                    detector_name=selection.selected_model,
                ),
                track_memory=track_memory,
            )
            self.audit.record(
                "cost_observation", kind="detection",
                target=selection.selected_model, n_windows=0,
                window=int(self.config.window), wall_ms=float(wall_ms),
                peak_mb=peak_mb, length=int(record.length))
            return selection, detection

        with self._h_detect_seconds.time(), \
                span("serving.detect", series=len(records)):
            return self.workers.map(detect_one, zip(records, selections))

    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the result cache."""
        return self.cache.stats

    def clear_cache(self) -> None:
        """Drop every cached selection (counters keep accumulating)."""
        self.cache.clear()

    def __repr__(self) -> str:
        return (
            f"SelectionService(selector={self.selector!r}, "
            f"models={len(self.detector_names)}, cache={self.cache.stats.size}/"
            f"{self.config.cache_capacity})"
        )
