"""Content-addressed cache of deterministic transform outputs.

Feature extraction (the ~40-statistic catalogue of
:mod:`repro.selectors.features`) and ROCKET kernel transforms are pure
functions of their input bytes: the same windows matrix always produces
the same feature matrix.  Serving traffic repeats those inputs constantly
— dashboards re-query the same series, the chunk-padded predict path
re-presents identical window blocks — so this module memoises transform
outputs behind the same blake2b content fingerprint the selection cache
keys on (:func:`repro.serving.cache.series_fingerprint`), with the
transform's identity mixed into the key.

One process-wide LRU (:func:`default_transform_cache`) is shared by the
serve, stream and sharded paths — and by the classical feature selectors
— so a warm entry helps every surface.  Cached arrays are returned
read-only: consumers that normalise or scale features already allocate
fresh outputs, and accidental in-place writes would corrupt every future
hit.  Capacity comes from ``REPRO_TRANSFORM_CACHE`` (entries; ``0``
disables caching entirely) or :func:`configure_transform_cache`.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Optional

import numpy as np

from .cache import CacheStats, LRUCache, series_fingerprint

#: default LRU entries; feature matrices are small (a few KB per chunk)
DEFAULT_TRANSFORM_CACHE_CAPACITY = 1024

_lock = threading.Lock()
_cache: Optional[LRUCache] = None
_capacity: Optional[int] = None


def _configured_capacity() -> int:
    raw = os.environ.get("REPRO_TRANSFORM_CACHE")
    if raw is None:
        return DEFAULT_TRANSFORM_CACHE_CAPACITY
    try:
        return max(int(raw), 0)
    except ValueError:
        return DEFAULT_TRANSFORM_CACHE_CAPACITY


def configure_transform_cache(capacity: Optional[int]) -> None:
    """Resize (or with ``0`` disable) the process-wide transform cache.

    ``None`` re-reads the environment default.  Existing entries are
    dropped; the obs counters of the old cache keep their totals.
    """
    global _cache, _capacity
    with _lock:
        _capacity = capacity if capacity is None else max(int(capacity), 0)
        _cache = None


def default_transform_cache() -> Optional[LRUCache]:
    """The shared transform LRU, or ``None`` when caching is disabled."""
    global _cache, _capacity
    with _lock:
        if _capacity is None:
            _capacity = _configured_capacity()
        if _cache is None and _capacity > 0:
            _cache = LRUCache(_capacity, name="transform")
        return _cache


def transform_cache_stats() -> Optional[CacheStats]:
    """Hit/miss/eviction counters of the shared cache (``None`` if off)."""
    cache = default_transform_cache()
    return cache.stats if cache is not None else None


def transform_fingerprint(array: np.ndarray, transform_id: str) -> str:
    """Content key of ``array`` under one named transform."""
    return series_fingerprint(array, extra=("transform", transform_id))


def cached_transform(array: np.ndarray, transform_id: str,
                     fn: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
    """Memoise ``fn(array)`` under the array's content hash.

    ``transform_id`` names the transform (and any configuration that
    shapes its output, e.g. ``"rocket:<seed>:<n_kernels>"``) so distinct
    transforms of the same bytes never collide.  Returns a **read-only**
    array on the cached path; the value is computed exactly once per
    content, so cached results are bitwise identical to direct calls.
    """
    cache = default_transform_cache()
    if cache is None:
        return fn(array)
    key = transform_fingerprint(array, transform_id)
    hit = cache.get(key)
    if hit is not None:
        return hit  # type: ignore[return-value]
    value = np.asarray(fn(array))
    value.setflags(write=False)
    cache.put(key, value)
    return value
