"""Module system: parameter containers with PyTorch-like ergonomics."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network modules.

    Subclasses define parameters and sub-modules as attributes; this class
    discovers them automatically for :meth:`parameters`, :meth:`state_dict`
    and train/eval mode propagation.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array that is part of the module state.

        The value's dtype is preserved: quantized modules register ``int8``
        weight buffers and per-channel ``float64`` scales side by side.
        Python scalars/lists default to float64 (the substrate's default).
        """
        self._buffers[name] = self._coerce_buffer(value)
        object.__setattr__(self, name, self._buffers[name])

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        """Overwrite a previously registered buffer in place of the registry."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} is not registered")
        self._buffers[name] = self._coerce_buffer(value)
        object.__setattr__(self, name, self._buffers[name])

    @staticmethod
    def _coerce_buffer(value) -> np.ndarray:
        """Array-ify a buffer value, keeping ndarray dtypes as-is."""
        if isinstance(value, np.ndarray):
            return value
        return np.asarray(value, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # train / eval, grad bookkeeping
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def freeze(self) -> "Module":
        """Mark every parameter as non-trainable (used for frozen encoders)."""
        for p in self.parameters():
            p.requires_grad = False
        return self

    # ------------------------------------------------------------------ #
    # state dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[f"__buffer__.{name}"] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        buffers = {name: owner for owner, name in self._walk_buffers()}
        for key, value in state.items():
            if key.startswith("__buffer__."):
                name = key[len("__buffer__."):]
                owner_and_local = buffers.get(name)
                if owner_and_local is None:
                    raise KeyError(f"unknown buffer {name!r} in state dict")
                owner, local = owner_and_local
                owner.update_buffer(local, value)
            else:
                if key not in params:
                    raise KeyError(f"unknown parameter {key!r} in state dict")
                if params[key].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {key!r}: model {params[key].shape}, state {value.shape}"
                    )
                # dtype is preserved: a float32 checkpoint loads as float32,
                # a float64 one as float64 (no silent upcast on load)
                params[key].data = np.asarray(value).copy()

    def _walk_buffers(self, prefix: str = ""):
        for name in self._buffers:
            yield ((self, name), prefix + name)
        for child_name, module in self._modules.items():
            for owner_local, full in module._walk_buffers(prefix=f"{prefix}{child_name}."):
                yield owner_local, full

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_repr = ", ".join(self._modules.keys())
        return f"{self.__class__.__name__}({child_repr})"


class Sequential(Module):
    """Chain modules, feeding each output into the next module."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for i, module in enumerate(modules):
            name = f"layer{i}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x):
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._order[index])


class ModuleList(Module):
    """Hold an ordered list of sub-modules without chaining them."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._order: List[str] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = f"item{len(self._order)}"
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._order[index])

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called directly")
