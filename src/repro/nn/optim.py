"""Optimizers and learning-rate schedulers for the NumPy NN substrate."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .module import Parameter


class Optimizer:
    """Base class holding a parameter list and a learning rate."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip the global gradient norm; returns the pre-clip norm.

        The paper's theoretical analysis (Sect. A.1) assumes bounded
        gradients, which is enforced in practice with exactly this clipping.
        """
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                total += float((p.grad ** 2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for p in self.params:
                if p.grad is not None:
                    p.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, vel in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self) -> None:
        if self.weight_decay:
            for p in self.params:
                if p.grad is not None:
                    p.data -= self.lr * self.weight_decay * p.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


class LRScheduler:
    """Base learning-rate scheduler."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr()

    def get_lr(self) -> float:
        raise NotImplementedError


class StepLR(LRScheduler):
    """Decay the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine annealing from the base LR down to ``eta_min``."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        self.t_max = max(1, t_max)
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1.0 + np.cos(np.pi * progress))
