"""Functional operations built on :class:`repro.nn.tensor.Tensor`.

These mirror the subset of ``torch.nn.functional`` that the selector
architectures (ConvNet / ResNet / InceptionTime / Transformer) and the
KDSelector losses need: 1-D convolution, pooling, softmax/log-softmax,
dropout and normalisation helpers.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .init import get_rng
from .tensor import Tensor


def _im2col_1d(x: np.ndarray, kernel_size: int, stride: int, dilation: int) -> Tuple[np.ndarray, int]:
    """Unfold (N, C, L) into columns of shape (N, C * k, L_out)."""
    n, c, length = x.shape
    span = (kernel_size - 1) * dilation + 1
    l_out = (length - span) // stride + 1
    if l_out <= 0:
        raise ValueError(
            f"conv1d output length would be {l_out} (input length {length}, kernel {kernel_size}, "
            f"dilation {dilation})"
        )
    # idx: (K, L_out) so the gather directly yields (N, C, K, L_out) — the
    # reshape below is then a free view instead of a strided copy, which is
    # what makes large serving batches affordable.
    idx = np.arange(kernel_size)[:, None] * dilation + np.arange(l_out)[None, :] * stride
    cols = x[:, :, idx].reshape(n, c * kernel_size, l_out)
    return cols, l_out


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> Tensor:
    """1-D convolution over an input of shape (N, C_in, L).

    ``weight`` has shape (C_out, C_in, K); ``bias`` has shape (C_out,).
    Implemented with im2col + matmul, with a hand-written backward pass for
    speed (building the unfold out of primitive autograd ops would be far
    slower for long series).
    """
    if padding:
        x = x.pad1d(padding, padding)

    n, c_in, _ = x.shape
    c_out, c_in_w, kernel_size = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv1d channel mismatch: input has {c_in}, weight expects {c_in_w}")

    cols, l_out = _im2col_1d(x.data, kernel_size, stride, dilation)
    w2d = weight.data.reshape(c_out, c_in * kernel_size)
    # (O, CK) @ (N, CK, L) -> (N, O, L): a batched GEMM; matmul broadcasting
    # beats the equivalent einsum by avoiding its per-call path search.
    out_data = np.matmul(w2d, cols)
    if bias is not None:
        out_data = out_data + bias.data[None, :, None]

    parents = (x, weight) if bias is None else (x, weight, bias)
    out = Tensor(out_data, requires_grad=any(p.requires_grad for p in parents), _prev=parents)

    def _backward() -> None:
        grad = out.grad  # (N, C_out, L_out)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if weight.requires_grad:
            gw = np.einsum("nol,nkl->ok", grad, cols, optimize=True)
            weight._accumulate(gw.reshape(weight.shape))
        if x.requires_grad:
            gcols = np.einsum("ok,nol->nkl", w2d, grad, optimize=True)  # (N, C*K, L_out)
            gcols = gcols.reshape(n, c_in, kernel_size, l_out).transpose(0, 1, 3, 2)  # (N, C, L_out, K)
            gx = np.zeros_like(x.data)
            idx = np.arange(kernel_size)[None, :] * dilation + np.arange(l_out)[:, None] * stride
            np.add.at(gx, (slice(None), slice(None), idx), gcols)
            x._accumulate(gx)

    out._backward = _backward
    return out


def max_pool1d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over the last axis of a (N, C, L) tensor."""
    stride = stride or kernel_size
    n, c, length = x.shape
    l_out = (length - kernel_size) // stride + 1
    idx = np.arange(kernel_size)[None, :] + np.arange(l_out)[:, None] * stride
    windows = x.data[:, :, idx]  # (N, C, L_out, K)
    argmax = windows.argmax(axis=-1)
    out_data = np.take_along_axis(windows, argmax[..., None], axis=-1)[..., 0]
    out = Tensor(out_data, requires_grad=x.requires_grad, _prev=(x,))

    def _backward() -> None:
        if not x.requires_grad:
            return
        gx = np.zeros_like(x.data)
        # Source index in the original series for every pooled element.
        src = idx[np.arange(l_out)[None, None, :], argmax]  # (N, C, L_out)
        n_idx = np.arange(n)[:, None, None]
        c_idx = np.arange(c)[None, :, None]
        np.add.at(gx, (n_idx, c_idx, src), out.grad)
        x._accumulate(gx)

    out._backward = _backward
    return out


def global_avg_pool1d(x: Tensor) -> Tensor:
    """Average over the temporal axis of a (N, C, L) tensor -> (N, C)."""
    return x.mean(axis=2)


def global_max_pool1d(x: Tensor) -> Tensor:
    """Max over the temporal axis of a (N, C, L) tensor -> (N, C)."""
    return x.max(axis=2)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: scales kept activations by 1/(1-p) during training.

    Without an explicit ``rng`` the mask is drawn from the thread-local
    initialisation RNG (:func:`repro.nn.init.get_rng`), the same seeded
    stream every other random draw in the substrate uses — an unseeded
    fallback here would silently break run-to-run reproducibility.
    """
    if not training or p <= 0.0:
        return x
    if rng is None:
        rng = get_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` for 2-D or 3-D inputs."""
    if x.ndim == 3:
        n, t, d = x.shape
        flat = x.reshape(n * t, d)
        out = flat.matmul(weight.transpose())
        if bias is not None:
            out = out + bias
        return out.reshape(n, t, weight.shape[0])
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a dense one-hot encoding of integer ``labels``."""
    labels = np.asarray(labels, dtype=int)
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def cosine_similarity_matrix(a: Tensor, b: Tensor, eps: float = 1e-8) -> Tensor:
    """Pairwise cosine similarity between rows of ``a`` and rows of ``b``."""
    a_norm = (a * a).sum(axis=1, keepdims=True).sqrt() + eps
    b_norm = (b * b).sum(axis=1, keepdims=True).sqrt() + eps
    a_unit = a / a_norm
    b_unit = b / b_norm
    return a_unit.matmul(b_unit.transpose())
