"""Reverse-mode automatic differentiation on top of NumPy arrays.

This module is the foundation of the ``repro.nn`` substrate that replaces
PyTorch in this reproduction.  A :class:`Tensor` wraps a ``numpy.ndarray``
and records the operations applied to it so that :meth:`Tensor.backward`
can propagate gradients through the computation graph.

The design follows the classic "define-by-run" tape approach: every
operation returns a new ``Tensor`` whose ``_backward`` closure knows how to
push its output gradient into the gradients of its inputs.  A topological
sort over the recorded graph drives the backward pass.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..accel.precision import resolve_dtype

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

# Grad tracking is a *thread-local* flag: one worker thread entering
# inference (repro.serving fans detector runs out to threads) must not
# silently disable autograd for another thread that is mid-training.
_grad_state = threading.local()


class no_grad:
    """Context manager that disables gradient tracking in the calling thread.

    Mirrors ``torch.no_grad``.  Inside the context, operations on tensors do
    not build the autograd graph, which makes inference cheaper.
    """

    def __enter__(self) -> "no_grad":
        self._prev = is_grad_enabled()
        _grad_state.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _grad_state.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return True when operations should record gradient information."""
    return getattr(_grad_state, "enabled", True)


def _as_array(data: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(data, Tensor):
        return data.data
    if dtype is None:
        # The accel precision policy decides the default dtype: float64
        # unless the caller opted into the float32 fast path.
        dtype = resolve_dtype(None)
    arr = np.asarray(data, dtype=dtype)
    return arr


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that it matches ``shape`` after a broadcast op.

    NumPy broadcasting can expand dimensions of either operand; the gradient
    of the expanded operand is the sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were of size 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor with reverse-mode autodiff support."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")
    __array_priority__ = 200  # make numpy defer to our __radd__ etc.

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Tuple["Tensor", ...] = (),
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._backward: Callable[[], None] = lambda: None
        self._prev: Tuple[Tensor, ...] = _prev if is_grad_enabled() else ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ensure(other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _make(self, data: np.ndarray, parents: Sequence["Tensor"]) -> "Tensor":
        req = any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=req, _prev=tuple(parents))

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data, dtype=self.data.dtype)
        self.grad += grad

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        out = self._make(self.data + other.data, (self, other))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad, other.shape))

        out._backward = _backward
        return out

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        out = self._make(self.data * other.data, (self, other))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        out._backward = _backward
        return out

    def __neg__(self) -> "Tensor":
        out = self._make(-self.data, (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(-out.grad)

        out._backward = _backward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._ensure(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other) + (-self)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self + other

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self * other

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        return self * other ** -1.0

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out = self._make(self.data ** exponent, (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        out._backward = _backward
        return out

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        out = self._make(self.data @ other.data, (self, other))

        def _backward() -> None:
            grad = out.grad
            if self.requires_grad:
                if other.data.ndim == 1:
                    g = np.outer(grad, other.data) if self.data.ndim == 2 else grad[..., None] * other.data
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(g.reshape(self.shape) if g.shape != self.shape else g, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    g = np.outer(self.data, grad)
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(g if g.shape == other.shape else g.reshape(other.shape), other.shape))

        out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # element-wise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out = self._make(np.exp(self.data), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data)

        out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make(np.log(self.data), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad / self.data)

        out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out = self._make(np.tanh(self.data), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - out.data ** 2))

        out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        sig = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make(sig, (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data * (1.0 - out.data))

        out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = self._make(self.data * mask, (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * mask)

        out._backward = _backward
        return out

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        c = np.sqrt(2.0 / np.pi)
        x = self.data
        inner = c * (x + 0.044715 * x ** 3)
        t = np.tanh(inner)
        out = self._make(0.5 * x * (1.0 + t), (self,))

        def _backward() -> None:
            if self.requires_grad:
                dinner = c * (1.0 + 3 * 0.044715 * x ** 2)
                dt = (1.0 - t ** 2) * dinner
                grad = 0.5 * (1.0 + t) + 0.5 * x * dt
                self._accumulate(out.grad * grad)

        out._backward = _backward
        return out

    def abs(self) -> "Tensor":
        out = self._make(np.abs(self.data), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * np.sign(self.data))

        out._backward = _backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        clipped = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)
        out = self._make(clipped, (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * mask)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,))

        def _backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                shape = list(out.grad.shape)
                for ax in sorted(a % self.ndim for a in axes):
                    shape.insert(ax, 1)
                grad = grad.reshape(shape)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centred = self - mu
        return (centred * centred).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make(out_data, (self,))

        def _backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            expanded = out_data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                shape = list(np.asarray(out_data).shape)
                for ax in sorted(a % self.ndim for a in axes):
                    shape.insert(ax, 1)
                grad = grad.reshape(shape)
                expanded = np.asarray(out_data).reshape(shape)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient evenly among ties to keep the op well defined.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * grad / np.maximum(counts, 1.0))

        out._backward = _backward
        return out

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -(-self).max(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make(self.data.reshape(shape), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.shape))

        out._backward = _backward
        return out

    def flatten(self, start_dim: int = 1) -> "Tensor":
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*new_shape)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        out = self._make(np.transpose(self.data, axes), (self,))

        def _backward() -> None:
            if self.requires_grad:
                if axes is None:
                    self._accumulate(np.transpose(out.grad))
                else:
                    inverse = np.argsort(axes)
                    self._accumulate(np.transpose(out.grad, inverse))

        out._backward = _backward
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(axes)

    def __getitem__(self, index) -> "Tensor":
        out = self._make(self.data[index], (self,))

        def _backward() -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data, dtype=self.data.dtype)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)

        out._backward = _backward
        return out

    def pad1d(self, left: int, right: int) -> "Tensor":
        """Zero-pad the last axis by ``left`` and ``right`` elements."""
        pad_width = [(0, 0)] * (self.ndim - 1) + [(left, right)]
        out = self._make(np.pad(self.data, pad_width), (self,))

        def _backward() -> None:
            if self.requires_grad:
                sl = [slice(None)] * (self.ndim - 1) + [slice(left, left + self.shape[-1])]
                self._accumulate(out.grad[tuple(sl)])

        out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ones (appropriate for scalar losses).
        """
        if grad is None:
            grad = np.ones_like(self.data, dtype=self.data.dtype)
        self.grad = np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(topo):
            if node.grad is not None:
                node._backward()


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    req = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=req, _prev=tuple(tensors))

    def _backward() -> None:
        offset = 0
        for t in tensors:
            size = t.shape[axis]
            sl = [slice(None)] * data.ndim
            sl[axis] = slice(offset, offset + size)
            if t.requires_grad:
                t._accumulate(out.grad[tuple(sl)])
            offset += size

    out._backward = _backward
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)
    req = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=req, _prev=tuple(tensors))

    def _backward() -> None:
        grads = np.split(out.grad, len(tensors), axis=axis)
        for t, g in zip(tensors, grads):
            if t.requires_grad:
                t._accumulate(np.squeeze(g, axis=axis))

    out._backward = _backward
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Element-wise select with gradient support (condition is constant)."""
    a = Tensor._ensure(a)
    b = Tensor._ensure(b)
    cond = np.asarray(condition, dtype=bool)
    out = Tensor(np.where(cond, a.data, b.data), requires_grad=a.requires_grad or b.requires_grad, _prev=(a, b))

    def _backward() -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(out.grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(out.grad * (~cond), b.shape))

    out._backward = _backward
    return out
