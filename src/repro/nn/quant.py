"""Int8 quantized inference kernels for the serving fast path.

Quantization scheme (the production-standard symmetric recipe):

* **weights** — symmetric per-channel: each output row ``c`` of a weight
  matrix gets its own scale ``s_c = max|W_c| / 127`` and is stored as an
  ``int8`` buffer ``q_c = round(W_c / s_c)``,
* **activations** — symmetric per-tensor: one scale calibrated offline
  from held-out windows (:func:`calibrate_activation_scale`), so the
  quantization of a row never depends on which batch it arrived in —
  quantized outputs are batch-composition independent by construction.

The integer accumulation runs as a float32 GEMM: sums of int8×int8
products are exactly representable in float32 while
``in_features * 127 * 127 < 2**24``, which buys BLAS speed with bit-exact
integer semantics.  Wider layers fall back to an ``int32`` matmul (slower
but exact for any width that fits 31 bits).

:class:`QuantizedLinear` is buffers-only (no :class:`Parameter`): it
cannot be trained, round-trips through :mod:`repro.nn.serialization` with
its ``int8`` payload intact, and is built either directly (then filled by
``load_state``) or from a trained float layer via
:meth:`QuantizedLinear.from_linear`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

import numpy as np

from .module import Module
from .tensor import Tensor

#: symmetric int8 uses the levels [-127, 127] (the -128 code is unused so
#: that negation stays exact)
INT8_LEVELS = 127

#: float32 holds integers exactly up to 2**24; accumulating ``in_features``
#: products bounded by 127*127 stays exact strictly below this
_EXACT_F32_ACC_LIMIT = 2 ** 24


def quantize_weight_per_channel(weight: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-channel int8 quantization of a ``(out, in)`` matrix.

    Returns ``(q, scale)`` with ``q`` int8 and ``scale`` float64 of shape
    ``(out,)``; all-zero rows get scale 1.0 so dequantization is always
    well defined.  The per-element round-trip error is bounded by
    ``scale[c] / 2`` (round-half-to-even on ``W / scale``).
    """
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 2:
        raise ValueError(f"expected a 2-D weight matrix, got shape {weight.shape}")
    absmax = np.abs(weight).max(axis=1)
    scale = np.where(absmax > 0.0, absmax / INT8_LEVELS, 1.0)
    q = np.clip(np.rint(weight / scale[:, None]), -INT8_LEVELS, INT8_LEVELS)
    return q.astype(np.int8), scale


def calibrate_activation_scale(samples: Union[np.ndarray, Iterable[np.ndarray]]) -> float:
    """Per-tensor symmetric activation scale from calibration activations.

    ``samples`` is one activation matrix or an iterable of them (held-out
    calibration windows pushed through the float model).  Deterministic:
    the scale is ``max|x| / 127`` over everything seen, or 1.0 when the
    calibration set is empty/all-zero.
    """
    if isinstance(samples, np.ndarray):
        samples = (samples,)
    absmax = 0.0
    for sample in samples:
        sample = np.asarray(sample, dtype=np.float64)
        if sample.size:
            absmax = max(absmax, float(np.abs(sample).max()))
    return absmax / INT8_LEVELS if absmax > 0.0 else 1.0


def quantize_activations(x: np.ndarray, scale: float) -> np.ndarray:
    """Clip-and-round activations to integer levels (kept in float64)."""
    return np.clip(np.rint(x / scale), -INT8_LEVELS, INT8_LEVELS)


class QuantizedLinear(Module):
    """Int8 inference-only replacement for :class:`repro.nn.Linear`.

    State is four buffers — ``weight_q`` (int8, per-channel symmetric),
    ``weight_scale`` (float64 per channel), ``act_scale`` (float64 scalar,
    calibrated per tensor) and ``bias`` (float64) — so serialization and
    the selector store round-trip the quantized payload without touching
    the float path.
    """

    def __init__(self, in_features: int, out_features: int) -> None:
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.register_buffer("weight_q", np.zeros((out_features, in_features), dtype=np.int8))
        self.register_buffer("weight_scale", np.ones(out_features, dtype=np.float64))
        self.register_buffer("act_scale", np.ones(1, dtype=np.float64))
        self.register_buffer("bias", np.zeros(out_features, dtype=np.float64))

    # ------------------------------------------------------------------ #
    @classmethod
    def from_linear(cls, linear, act_scale: float) -> "QuantizedLinear":
        """Quantize a trained float ``Linear`` under a calibrated act scale."""
        out_features, in_features = linear.weight.shape
        module = cls(in_features, out_features)
        module.load_weights(linear.weight.data,
                            linear.bias.data if linear.bias is not None else None,
                            act_scale)
        return module

    def load_weights(self, weight: np.ndarray, bias: Optional[np.ndarray],
                     act_scale: float) -> None:
        """(Re-)quantize float weights in place (used by student refresh)."""
        q, scale = quantize_weight_per_channel(weight)
        self.update_buffer("weight_q", q)
        self.update_buffer("weight_scale", scale)
        self.update_buffer("act_scale", np.asarray([float(act_scale)], dtype=np.float64))
        self.update_buffer("bias", np.zeros(self.out_features, dtype=np.float64)
                           if bias is None else np.asarray(bias, dtype=np.float64).copy())

    def dequantized_weight(self) -> np.ndarray:
        """The float64 weight the int8 payload represents (the compare gate)."""
        return self.weight_q.astype(np.float64) * self.weight_scale[:, None]

    # ------------------------------------------------------------------ #
    def _weight_f32(self) -> np.ndarray:
        """float32 view of ``weight_q``, cached until the buffer is swapped."""
        cached = self.__dict__.get("_w_f32_cache")
        if cached is None or cached[0] is not self.weight_q:
            cached = (self.weight_q, self.weight_q.astype(np.float32))
            self.__dict__["_w_f32_cache"] = cached
        return cached[1]

    def forward(self, x) -> Tensor:
        x_np = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float64)
        if x_np.ndim != 2:
            raise ValueError(f"QuantizedLinear expects (N, {self.in_features}) inputs, "
                             f"got shape {x_np.shape}")
        s_act = float(self.act_scale[0])
        q_x = quantize_activations(x_np, s_act)
        if self.in_features * INT8_LEVELS * INT8_LEVELS < _EXACT_F32_ACC_LIMIT:
            acc = (q_x.astype(np.float32) @ self._weight_f32().T).astype(np.float64)
        else:
            acc = (q_x.astype(np.int32) @ self.weight_q.astype(np.int32).T).astype(np.float64)
        y = acc * (s_act * self.weight_scale)[None, :] + self.bias
        return Tensor(y)

    def __repr__(self) -> str:
        return f"QuantizedLinear(in={self.in_features}, out={self.out_features})"
