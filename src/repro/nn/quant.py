"""Int8 quantized inference kernels for the serving fast path.

Quantization scheme (the production-standard symmetric recipe):

* **weights** — symmetric per-channel: each output row ``c`` of a weight
  matrix gets its own scale ``s_c = max|W_c| / 127`` and is stored as an
  ``int8`` buffer ``q_c = round(W_c / s_c)``,
* **activations** — symmetric per-tensor: one scale calibrated offline
  from held-out windows (:func:`calibrate_activation_scale`), so the
  quantization of a row never depends on which batch it arrived in —
  quantized outputs are batch-composition independent by construction.

The integer accumulation runs as a float32 GEMM: sums of int8×int8
products are exactly representable in float32 while
``in_features * 127 * 127 < 2**24``, which buys BLAS speed with bit-exact
integer semantics.  Wider layers fall back to an ``int32`` matmul (slower
but exact for any width that fits 31 bits).

:class:`QuantizedLinear` is buffers-only (no :class:`Parameter`): it
cannot be trained, round-trips through :mod:`repro.nn.serialization` with
its ``int8`` payload intact, and is built either directly (then filled by
``load_state``) or from a trained float layer via
:meth:`QuantizedLinear.from_linear`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .module import Module
from .tensor import Tensor

#: symmetric int8 uses the levels [-127, 127] (the -128 code is unused so
#: that negation stays exact)
INT8_LEVELS = 127

#: float32 holds integers exactly up to 2**24; accumulating ``in_features``
#: products bounded by 127*127 stays exact strictly below this
_EXACT_F32_ACC_LIMIT = 2 ** 24


def quantize_weight_per_channel(weight: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-channel int8 quantization of a ``(out, in)`` matrix.

    Returns ``(q, scale)`` with ``q`` int8 and ``scale`` float64 of shape
    ``(out,)``; all-zero rows get scale 1.0 so dequantization is always
    well defined.  The per-element round-trip error is bounded by
    ``scale[c] / 2`` (round-half-to-even on ``W / scale``).
    """
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 2:
        raise ValueError(f"expected a 2-D weight matrix, got shape {weight.shape}")
    absmax = np.abs(weight).max(axis=1)
    scale = np.where(absmax > 0.0, absmax / INT8_LEVELS, 1.0)
    q = np.clip(np.rint(weight / scale[:, None]), -INT8_LEVELS, INT8_LEVELS)
    return q.astype(np.int8), scale


def calibrate_activation_scale(samples: Union[np.ndarray, Iterable[np.ndarray]]) -> float:
    """Per-tensor symmetric activation scale from calibration activations.

    ``samples`` is one activation matrix or an iterable of them (held-out
    calibration windows pushed through the float model).  Deterministic:
    the scale is ``max|x| / 127`` over everything seen, or 1.0 when the
    calibration set is empty/all-zero.
    """
    if isinstance(samples, np.ndarray):
        samples = (samples,)
    absmax = 0.0
    for sample in samples:
        sample = np.asarray(sample, dtype=np.float64)
        if sample.size:
            absmax = max(absmax, float(np.abs(sample).max()))
    return absmax / INT8_LEVELS if absmax > 0.0 else 1.0


def quantize_activations(x: np.ndarray, scale: float) -> np.ndarray:
    """Clip-and-round activations to integer levels (kept in float64)."""
    return np.clip(np.rint(x / scale), -INT8_LEVELS, INT8_LEVELS)


class QuantizedLinear(Module):
    """Int8 inference-only replacement for :class:`repro.nn.Linear`.

    State is four buffers — ``weight_q`` (int8, per-channel symmetric),
    ``weight_scale`` (float64 per channel), ``act_scale`` (float64 scalar,
    calibrated per tensor) and ``bias`` (float64) — so serialization and
    the selector store round-trip the quantized payload without touching
    the float path.
    """

    def __init__(self, in_features: int, out_features: int) -> None:
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.register_buffer("weight_q", np.zeros((out_features, in_features), dtype=np.int8))
        self.register_buffer("weight_scale", np.ones(out_features, dtype=np.float64))
        self.register_buffer("act_scale", np.ones(1, dtype=np.float64))
        self.register_buffer("bias", np.zeros(out_features, dtype=np.float64))

    # ------------------------------------------------------------------ #
    @classmethod
    def from_linear(cls, linear, act_scale: float) -> "QuantizedLinear":
        """Quantize a trained float ``Linear`` under a calibrated act scale."""
        out_features, in_features = linear.weight.shape
        module = cls(in_features, out_features)
        module.load_weights(linear.weight.data,
                            linear.bias.data if linear.bias is not None else None,
                            act_scale)
        return module

    def load_weights(self, weight: np.ndarray, bias: Optional[np.ndarray],
                     act_scale: float) -> None:
        """(Re-)quantize float weights in place (used by student refresh)."""
        q, scale = quantize_weight_per_channel(weight)
        self.update_buffer("weight_q", q)
        self.update_buffer("weight_scale", scale)
        self.update_buffer("act_scale", np.asarray([float(act_scale)], dtype=np.float64))
        self.update_buffer("bias", np.zeros(self.out_features, dtype=np.float64)
                           if bias is None else np.asarray(bias, dtype=np.float64).copy())

    def dequantized_weight(self) -> np.ndarray:
        """The float64 weight the int8 payload represents (the compare gate)."""
        return self.weight_q.astype(np.float64) * self.weight_scale[:, None]

    # ------------------------------------------------------------------ #
    def _weight_f32(self) -> np.ndarray:
        """float32 view of ``weight_q``, cached until the buffer is swapped."""
        cached = self.__dict__.get("_w_f32_cache")
        if cached is None or cached[0] is not self.weight_q:
            cached = (self.weight_q, self.weight_q.astype(np.float32))
            self.__dict__["_w_f32_cache"] = cached
        return cached[1]

    def forward(self, x) -> Tensor:
        x_np = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float64)
        if x_np.ndim != 2:
            raise ValueError(f"QuantizedLinear expects (N, {self.in_features}) inputs, "
                             f"got shape {x_np.shape}")
        s_act = float(self.act_scale[0])
        q_x = quantize_activations(x_np, s_act)
        if self.in_features * INT8_LEVELS * INT8_LEVELS < _EXACT_F32_ACC_LIMIT:
            acc = (q_x.astype(np.float32) @ self._weight_f32().T).astype(np.float64)
        else:
            acc = (q_x.astype(np.int32) @ self.weight_q.astype(np.int32).T).astype(np.float64)
        y = acc * (s_act * self.weight_scale)[None, :] + self.bias
        return Tensor(y)

    def __repr__(self) -> str:
        return f"QuantizedLinear(in={self.in_features}, out={self.out_features})"


class QuantizedConv1d(Module):
    """Int8 inference-only replacement for :class:`repro.nn.Conv1d`.

    Same contract as :class:`QuantizedLinear`, lifted to 1-D convolution:
    per-output-channel symmetric weight scales over the ``(C_in * K,)``
    reduction axis, one offline-calibrated per-tensor activation scale, and
    buffers-only state (``weight_q`` int8 ``(O, C, K)``, ``weight_scale``,
    ``act_scale``, ``bias``) so the int8 payload round-trips serialization.

    The forward pass is an im2col → integer GEMM with two physical
    layouts, chosen per shape:

    * stride-1 convs with a few input channels or more run as ``K``
      shifted batched GEMMs — ``acc += W[:, :, k] @ q[:, :, k*d : ...]``
      on zero-copy slices of the quantized input, producing the
      ``(N, C_out, L_out)`` output directly with no patch gather at all;
    * everything else gathers a sliding-window view into an explicit
      ``(N * L_out, C_in * K)`` patch matrix and runs one GEMM.

    Both layouts accumulate sums of int8×int8 products that are exactly
    representable while ``C_in * K * 127 * 127 < 2**24``, so they produce
    bit-identical integer accumulators — independent of BLAS summation
    order, batch composition and chunking — and the choice is purely a
    speed decision.  The exact paths dequantize in float32 (the int8 tier
    keeps activations float32 end-to-end); the int32 fallback for wider
    reductions dequantizes through float64, because its accumulators can
    exceed float32's exact-integer range.  Zero padding commutes with
    symmetric quantization (0 quantizes to 0), so padding is applied to
    the already-quantized input.

    Unlike :class:`QuantizedLinear`, the clip-and-round step itself runs in
    float32 (``rint(x * (1/s))``) — rounding the quantization thresholds a
    ulp differently than the float64 helper would, which the agreement gate
    prices in, but keeping the whole pre-GEMM pipeline allocation-light.
    The quantized levels are exact small integers either way, so the
    exact-f32 and int32 accumulator paths still agree bit for bit.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, dilation: int = 1) -> None:
        super().__init__()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.dilation = int(dilation)
        self.register_buffer(
            "weight_q", np.zeros((out_channels, in_channels, kernel_size), dtype=np.int8))
        self.register_buffer("weight_scale", np.ones(out_channels, dtype=np.float64))
        self.register_buffer("act_scale", np.ones(1, dtype=np.float64))
        self.register_buffer("bias", np.zeros(out_channels, dtype=np.float64))

    # ------------------------------------------------------------------ #
    @classmethod
    def from_conv1d(cls, conv, act_scale: float) -> "QuantizedConv1d":
        """Quantize a trained float ``Conv1d`` under a calibrated act scale."""
        module = cls(conv.in_channels, conv.out_channels, conv.kernel_size,
                     stride=conv.stride, padding=conv.padding, dilation=conv.dilation)
        module.load_weights(conv.weight.data,
                            conv.bias.data if conv.bias is not None else None,
                            act_scale)
        return module

    def load_weights(self, weight: np.ndarray, bias: Optional[np.ndarray],
                     act_scale: float) -> None:
        """(Re-)quantize float ``(O, C, K)`` weights in place."""
        weight = np.asarray(weight, dtype=np.float64)
        if weight.shape != (self.out_channels, self.in_channels, self.kernel_size):
            raise ValueError(
                f"expected weight shape {(self.out_channels, self.in_channels, self.kernel_size)}, "
                f"got {weight.shape}")
        q, scale = quantize_weight_per_channel(weight.reshape(self.out_channels, -1))
        self.update_buffer("weight_q", q.reshape(weight.shape))
        self.update_buffer("weight_scale", scale)
        self.update_buffer("act_scale", np.asarray([float(act_scale)], dtype=np.float64))
        self.update_buffer("bias", np.zeros(self.out_channels, dtype=np.float64)
                           if bias is None else np.asarray(bias, dtype=np.float64).copy())

    def dequantized_weight(self) -> np.ndarray:
        """The float64 weight the int8 payload represents (the compare gate)."""
        return self.weight_q.astype(np.float64) * self.weight_scale[:, None, None]

    # ------------------------------------------------------------------ #
    def _weight_cache(self, key: str, build) -> np.ndarray:
        """Derived-weight cache, invalidated when ``weight_q`` is swapped."""
        cached = self.__dict__.get("_w_cache")
        if cached is None or cached[0] is not self.weight_q:
            cached = (self.weight_q, {})
            self.__dict__["_w_cache"] = cached
        table = cached[1]
        if key not in table:
            table[key] = build()
        return table[key]

    def _weight_cols(self, dtype) -> np.ndarray:
        """``(C_in * K, O)`` GEMM operand for the im2col path."""
        return self._weight_cache(
            "cols:" + np.dtype(dtype).name,
            lambda: np.ascontiguousarray(
                self.weight_q.reshape(self.out_channels, -1).T.astype(dtype)))

    def _weight_taps(self, dtype) -> np.ndarray:
        """``(O, C_in, K)`` operand for the shifted-matmul fast path."""
        return self._weight_cache(
            "taps:" + np.dtype(dtype).name,
            lambda: np.ascontiguousarray(self.weight_q.astype(dtype)))

    def _dequant32(self):
        """Float32 per-channel dequant operands for the exact paths."""
        return self._weight_cache("dequant32", lambda: (
            (float(self.act_scale[0]) * self.weight_scale).astype(np.float32),
            self.bias.astype(np.float32)))

    def _im2col(self, q: np.ndarray, span: int, l_out: int) -> np.ndarray:
        """Gather quantized patches into a ``(N * L_out, C_in * K)`` matrix."""
        view = sliding_window_view(q, span, axis=2)
        taps = view[:, :, ::self.stride, ::self.dilation]
        return np.ascontiguousarray(taps.transpose(0, 2, 1, 3)).reshape(
            q.shape[0] * l_out, self.in_channels * self.kernel_size)

    def _shifted_matmul(self, q: np.ndarray, l_out: int) -> np.ndarray:
        """Stride-1 fast path: ``K`` batched GEMMs on shifted input slices."""
        w3d = self._weight_taps(np.float32)
        acc = np.matmul(w3d[:, :, 0], q[:, :, :l_out])
        for k in range(1, self.kernel_size):
            off = k * self.dilation
            acc += np.matmul(w3d[:, :, k], q[:, :, off:off + l_out])
        return acc

    def forward(self, x) -> Tensor:
        x_np = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float64)
        if x_np.ndim != 3 or x_np.shape[1] != self.in_channels:
            raise ValueError(f"QuantizedConv1d expects (N, {self.in_channels}, L) inputs, "
                             f"got shape {x_np.shape}")
        s_act = float(self.act_scale[0])
        q = np.empty(x_np.shape, dtype=np.float32)
        np.multiply(x_np, 1.0 / s_act, out=q, casting="unsafe")
        np.rint(q, out=q)
        np.clip(q, -INT8_LEVELS, INT8_LEVELS, out=q)
        if self.padding:
            n, c, length = q.shape
            padded = np.zeros((n, c, length + 2 * self.padding), dtype=np.float32)
            padded[:, :, self.padding:self.padding + length] = q
            q = padded
        n, _, length = q.shape
        span = (self.kernel_size - 1) * self.dilation + 1
        if span > length:
            raise ValueError(f"input length {length} too short for kernel span {span}")
        l_out = (length - span) // self.stride + 1
        reduction = self.in_channels * self.kernel_size
        exact_f32 = reduction * INT8_LEVELS * INT8_LEVELS < _EXACT_F32_ACC_LIMIT
        if exact_f32 and self.stride == 1 and self.in_channels >= 4:
            y = self._shifted_matmul(q, l_out)
            scale32, bias32 = self._dequant32()
            y *= scale32[None, :, None]
            y += bias32[None, :, None]
            return Tensor(y)
        if exact_f32:
            y = self._im2col(q, span, l_out) @ self._weight_cols(np.float32)
            scale32, bias32 = self._dequant32()
            y *= scale32[None, :]
            y += bias32[None, :]
        else:
            acc = self._im2col(q.astype(np.int32), span, l_out) @ self._weight_cols(np.int32)
            y = acc.astype(np.float64)
            y *= (s_act * self.weight_scale)[None, :]
            y += self.bias[None, :]
        # hand downstream float ops a C-contiguous (N, C_out, L_out) array —
        # elementwise kernels on the badly-strided transpose view are far
        # slower than this single extra copy
        return Tensor(np.ascontiguousarray(
            y.reshape(n, l_out, self.out_channels).transpose(0, 2, 1)))

    def __repr__(self) -> str:
        return (f"QuantizedConv1d(in={self.in_channels}, out={self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride}, "
                f"padding={self.padding}, dilation={self.dilation})")
