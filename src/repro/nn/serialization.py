"""Persistence of module state dicts to ``.npz`` archives.

Round-trips are dtype-preserving: ``np.savez`` stores each parameter and
buffer with its exact dtype, and :meth:`Module.load_state_dict` restores
values without coercion — a float32 checkpoint loads as float32 and the
``int8`` weight buffers of quantized modules (:mod:`repro.nn.quant`) come
back as ``int8``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from .module import Module

PathLike = Union[str, Path]


def save_state(module: Module, path: PathLike, metadata: Optional[Dict[str, Any]] = None) -> Path:
    """Save a module's parameters and buffers (plus JSON metadata) to disk."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    payload = dict(state)
    payload["__metadata__"] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_state(module: Module, path: PathLike) -> Dict[str, Any]:
    """Load parameters into ``module`` and return the stored metadata."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path, allow_pickle=False) as archive:
        metadata_bytes = archive["__metadata__"].tobytes() if "__metadata__" in archive else b"{}"
        state = {key: archive[key] for key in archive.files if key != "__metadata__"}
    module.load_state_dict(state)
    return json.loads(metadata_bytes.decode("utf-8"))
