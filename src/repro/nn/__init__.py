"""``repro.nn`` — a NumPy autodiff neural-network substrate.

This package replaces PyTorch for the KDSelector reproduction.  It provides
reverse-mode automatic differentiation (:mod:`repro.nn.tensor`), standard
layers (:mod:`repro.nn.layers`), losses used by the selector-learning
framework (:mod:`repro.nn.losses`) and optimizers (:mod:`repro.nn.optim`).
"""

from .tensor import Tensor, no_grad, concatenate, stack, where
from .module import Module, ModuleList, Parameter, Sequential
from .layers import (
    BatchNorm1d,
    Conv1d,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    GlobalAvgPool1d,
    GlobalMaxPool1d,
    LayerNorm,
    Linear,
    LSTM,
    LSTMCell,
    MaxPool1d,
    MultiHeadSelfAttention,
    PositionalEncoding,
    ReLU,
    Sigmoid,
    Tanh,
    TransformerEncoderLayer,
)
from .losses import (
    CrossEntropyLoss,
    InfoNCELoss,
    MSELoss,
    SoftCrossEntropyLoss,
    cross_entropy,
    info_nce,
    mse_loss,
    soft_cross_entropy,
)
from .optim import SGD, Adam, AdamW, CosineAnnealingLR, LRScheduler, Optimizer, StepLR
from .quant import (
    QuantizedConv1d,
    QuantizedLinear,
    calibrate_activation_scale,
    quantize_weight_per_channel,
)
from .serialization import load_state, save_state
from . import functional
from . import init

__all__ = [
    "Tensor", "no_grad", "concatenate", "stack", "where",
    "Module", "ModuleList", "Parameter", "Sequential",
    "BatchNorm1d", "Conv1d", "Dropout", "Embedding", "Flatten", "GELU",
    "GlobalAvgPool1d", "GlobalMaxPool1d", "LayerNorm", "Linear", "LSTM",
    "LSTMCell", "MaxPool1d", "MultiHeadSelfAttention", "PositionalEncoding",
    "ReLU", "Sigmoid", "Tanh", "TransformerEncoderLayer",
    "CrossEntropyLoss", "InfoNCELoss", "MSELoss", "SoftCrossEntropyLoss",
    "cross_entropy", "info_nce", "mse_loss", "soft_cross_entropy",
    "SGD", "Adam", "AdamW", "CosineAnnealingLR", "LRScheduler", "Optimizer", "StepLR",
    "QuantizedConv1d", "QuantizedLinear",
    "calibrate_activation_scale", "quantize_weight_per_channel",
    "load_state", "save_state", "functional", "init",
]
