"""Neural-network layers used by the selector architectures.

All layers operate on :class:`repro.nn.tensor.Tensor`.  Time-series tensors
use the (batch, channels, length) layout, matching PyTorch's ``Conv1d``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor, concatenate


class Linear(Module):
    """Affine layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features)))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv1d(Module):
    """1-D convolution over (N, C, L) inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        dilation: int = 1,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.dilation = dilation
        self.weight = Parameter(init.kaiming_uniform((out_channels, in_channels, kernel_size)))
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv1d(
            x, self.weight, self.bias,
            stride=self.stride, padding=self.padding, dilation=self.dilation,
        )

    def __repr__(self) -> str:
        return (
            f"Conv1d({self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"padding={self.padding})"
        )


class BatchNorm1d(Module):
    """Batch normalisation over (N, C, L) or (N, C) inputs."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones(num_features))
        self.bias = Parameter(init.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 3:
            reduce_axes = (0, 2)
            shape = (1, self.num_features, 1)
        elif x.ndim == 2:
            reduce_axes = (0,)
            shape = (1, self.num_features)
        else:
            raise ValueError(f"BatchNorm1d expects 2-D or 3-D input, got {x.ndim}-D")

        if self.training:
            mean = x.mean(axis=reduce_axes, keepdims=True)
            var = x.var(axis=reduce_axes, keepdims=True)
            self.update_buffer(
                "running_mean",
                (1 - self.momentum) * self._buffers["running_mean"] + self.momentum * mean.data.reshape(-1),
            )
            self.update_buffer(
                "running_var",
                (1 - self.momentum) * self._buffers["running_var"] + self.momentum * var.data.reshape(-1),
            )
        else:
            mean = Tensor(self._buffers["running_mean"].reshape(shape))
            var = Tensor(self._buffers["running_var"].reshape(shape))

        normed = (x - mean) / (var + self.eps) ** 0.5
        return normed * self.weight.reshape(shape) + self.bias.reshape(shape)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.weight = Parameter(init.ones(normalized_shape))
        self.bias = Parameter(init.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mean) / (var + self.eps) ** 0.5
        return normed * self.weight + self.bias


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Dropout(Module):
    """Inverted dropout; a seeded generator keeps training runs reproducible."""

    def __init__(self, p: float = 0.5, seed: Optional[int] = None) -> None:
        super().__init__()
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, rng=self._rng)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=1)


class MaxPool1d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool1d(x, self.kernel_size, self.stride)


class GlobalAvgPool1d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool1d(x)


class GlobalMaxPool1d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_max_pool1d(x)


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim)))

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=int)
        return self.weight[ids]


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention over (N, T, D) inputs."""

    def __init__(self, embed_dim: int, num_heads: int, dropout: float = 0.0, seed: Optional[int] = None) -> None:
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError(f"embed_dim ({embed_dim}) must be divisible by num_heads ({num_heads})")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.q_proj = Linear(embed_dim, embed_dim)
        self.k_proj = Linear(embed_dim, embed_dim)
        self.v_proj = Linear(embed_dim, embed_dim)
        self.out_proj = Linear(embed_dim, embed_dim)
        self.dropout = Dropout(dropout, seed=seed)

    def forward(self, x: Tensor) -> Tensor:
        n, t, d = x.shape
        q = self._split_heads(self.q_proj(x), n, t)
        k = self._split_heads(self.k_proj(x), n, t)
        v = self._split_heads(self.v_proj(x), n, t)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = q.matmul(k.swapaxes(-1, -2)) * scale  # (N, H, T, T)
        attn = F.softmax(scores, axis=-1)
        attn = self.dropout(attn)
        context = attn.matmul(v)  # (N, H, T, hd)
        merged = context.swapaxes(1, 2).reshape(n, t, d)
        return self.out_proj(merged)

    def _split_heads(self, x: Tensor, n: int, t: int) -> Tensor:
        return x.reshape(n, t, self.num_heads, self.head_dim).swapaxes(1, 2)


class TransformerEncoderLayer(Module):
    """Pre-norm transformer encoder block (attention + MLP)."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        mlp_ratio: float = 2.0,
        dropout: float = 0.1,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        hidden = int(embed_dim * mlp_ratio)
        self.norm1 = LayerNorm(embed_dim)
        self.attn = MultiHeadSelfAttention(embed_dim, num_heads, dropout=dropout, seed=seed)
        self.norm2 = LayerNorm(embed_dim)
        self.fc1 = Linear(embed_dim, hidden)
        self.fc2 = Linear(hidden, embed_dim)
        self.dropout = Dropout(dropout, seed=None if seed is None else seed + 1)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.norm1(x))
        h = self.fc2(self.dropout(self.fc1(self.norm2(x)).gelu()))
        return x + h


class LSTMCell(Module):
    """A single LSTM cell; gradients flow through the autodiff graph."""

    def __init__(self, input_size: int, hidden_size: int) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((4 * hidden_size, input_size)))
        self.weight_hh = Parameter(init.xavier_uniform((4 * hidden_size, hidden_size)))
        self.bias = Parameter(init.zeros(4 * hidden_size))

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h, c = state
        gates = F.linear(x, self.weight_ih) + F.linear(h, self.weight_hh) + self.bias
        hs = self.hidden_size
        i = gates[:, 0 * hs:1 * hs].sigmoid()
        f = gates[:, 1 * hs:2 * hs].sigmoid()
        g = gates[:, 2 * hs:3 * hs].tanh()
        o = gates[:, 3 * hs:4 * hs].sigmoid()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        return h_new, c_new


class LSTM(Module):
    """Unidirectional single-layer LSTM over (N, T, D) sequences."""

    def __init__(self, input_size: int, hidden_size: int) -> None:
        super().__init__()
        self.hidden_size = hidden_size
        self.cell = LSTMCell(input_size, hidden_size)

    def forward(self, x: Tensor) -> Tensor:
        n, t, _ = x.shape
        h = Tensor(np.zeros((n, self.hidden_size)))
        c = Tensor(np.zeros((n, self.hidden_size)))
        outputs = []
        for step in range(t):
            h, c = self.cell(x[:, step, :], (h, c))
            outputs.append(h.reshape(n, 1, self.hidden_size))
        return concatenate(outputs, axis=1)


class PositionalEncoding(Module):
    """Fixed sinusoidal positional encoding added to (N, T, D) inputs."""

    def __init__(self, embed_dim: int, max_len: int = 4096) -> None:
        super().__init__()
        position = np.arange(max_len)[:, None]
        div = np.exp(np.arange(0, embed_dim, 2) * (-np.log(10000.0) / embed_dim))
        pe = np.zeros((max_len, embed_dim))
        pe[:, 0::2] = np.sin(position * div)
        pe[:, 1::2] = np.cos(position * div[: (embed_dim + 1) // 2][: pe[:, 1::2].shape[1]])
        self.register_buffer("pe", pe)

    def forward(self, x: Tensor) -> Tensor:
        _, t, _ = x.shape
        return x + Tensor(self._buffers["pe"][:t][None, :, :])
