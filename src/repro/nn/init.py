"""Weight initialisation helpers for the NumPy NN substrate."""

from __future__ import annotations

import threading

import numpy as np

from ..accel.precision import resolve_dtype

# The initialisation RNG is thread-local: worker threads (repro.serving's
# fan-out builds NN detectors concurrently) each get their own stream, so a
# set_seed() in one thread cannot corrupt the draws of another.  Every
# thread starts from seed 0, matching the old module-global default.
_rng_store = threading.local()


def set_seed(seed: int) -> None:
    """Reset the calling thread's RNG used for parameter initialisation."""
    _rng_store.rng = np.random.default_rng(seed)


def get_rng() -> np.random.Generator:
    """Return the calling thread's RNG used for parameter initialisation."""
    rng = getattr(_rng_store, "rng", None)
    if rng is None:
        rng = np.random.default_rng(0)
        _rng_store.rng = rng
    return rng


def xavier_uniform(shape, gain: float = 1.0, rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot / Xavier uniform initialisation."""
    rng = rng or get_rng()
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(resolve_dtype(None), copy=False)


def kaiming_uniform(shape, rng: np.random.Generator | None = None) -> np.ndarray:
    """He / Kaiming uniform initialisation (ReLU gain)."""
    rng = rng or get_rng()
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(resolve_dtype(None), copy=False)


def normal(shape, std: float = 0.02, rng: np.random.Generator | None = None) -> np.ndarray:
    """Gaussian initialisation with the given standard deviation."""
    rng = rng or get_rng()
    return rng.normal(0.0, std, size=shape).astype(resolve_dtype(None), copy=False)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=resolve_dtype(None))


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=resolve_dtype(None))


def _fans(shape) -> tuple[int, int]:
    shape = tuple(shape)
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    # Convolution weights: (C_out, C_in, K)
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
