"""Weight initialisation helpers for the NumPy NN substrate."""

from __future__ import annotations

import numpy as np

_default_rng = np.random.default_rng(0)


def set_seed(seed: int) -> None:
    """Reset the module-level RNG used for parameter initialisation."""
    global _default_rng
    _default_rng = np.random.default_rng(seed)


def get_rng() -> np.random.Generator:
    """Return the RNG used for parameter initialisation."""
    return _default_rng


def xavier_uniform(shape, gain: float = 1.0, rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot / Xavier uniform initialisation."""
    rng = rng or _default_rng
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape, rng: np.random.Generator | None = None) -> np.ndarray:
    """He / Kaiming uniform initialisation (ReLU gain)."""
    rng = rng or _default_rng
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def normal(shape, std: float = 0.02, rng: np.random.Generator | None = None) -> np.ndarray:
    """Gaussian initialisation with the given standard deviation."""
    rng = rng or _default_rng
    return rng.normal(0.0, std, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)


def _fans(shape) -> tuple[int, int]:
    shape = tuple(shape)
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    # Convolution weights: (C_out, C_in, K)
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
