"""Loss functions for selector learning.

The KDSelector objective combines (Sect. 3 of the paper):

* hard-label cross entropy ``L_CE`` (the standard selector loss),
* soft-label cross entropy ``L_PISL`` against the performance-derived
  distribution,
* ``L_InfoNCE`` between projected time-series and metadata features (MKI).

All losses support ``reduction='none'`` so that the pruning-based
acceleration module can track per-sample losses across epochs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .module import Module
from .tensor import Tensor


def _reduce(per_sample: Tensor, reduction: str) -> Tensor:
    if reduction == "none":
        return per_sample
    if reduction == "mean":
        return per_sample.mean()
    if reduction == "sum":
        return per_sample.sum()
    raise ValueError(f"unknown reduction {reduction!r}")


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    reduction: str = "mean",
    weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Cross entropy between logits (N, C) and integer targets (N,).

    ``weights`` are optional per-sample multipliers, used by the pruning
    modules for gradient rescaling (multiplying a sample's loss by ``w`` is
    equivalent to multiplying its gradient contribution by ``w``).
    """
    targets = np.asarray(targets, dtype=int)
    log_probs = F.log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(len(targets)), targets]
    per_sample = -picked
    if weights is not None:
        per_sample = per_sample * Tensor(np.asarray(weights, dtype=np.float64))
    return _reduce(per_sample, reduction)


def soft_cross_entropy(
    logits: Tensor,
    soft_targets: np.ndarray,
    reduction: str = "mean",
    weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Cross entropy against a soft target distribution (PISL loss).

    ``soft_targets`` is an (N, C) row-stochastic matrix (the paper's
    ``p_i``); the loss is ``-sum_j p_ij log phat_ij`` per sample.
    """
    soft = np.asarray(soft_targets, dtype=np.float64)
    log_probs = F.log_softmax(logits, axis=-1)
    per_sample = -(log_probs * Tensor(soft)).sum(axis=-1)
    if weights is not None:
        per_sample = per_sample * Tensor(np.asarray(weights, dtype=np.float64))
    return _reduce(per_sample, reduction)


def mse_loss(pred: Tensor, target: np.ndarray, reduction: str = "mean") -> Tensor:
    """Mean squared error; used by the reconstruction-style detectors."""
    diff = pred - Tensor(np.asarray(target, dtype=np.float64))
    per_element = diff * diff
    return _reduce(per_element, reduction)


def info_nce(
    z_a: Tensor,
    z_b: Tensor,
    temperature: float = 0.1,
    reduction: str = "mean",
    weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Symmetric InfoNCE loss between two batches of paired embeddings.

    Row ``i`` of ``z_a`` and row ``i`` of ``z_b`` are a positive pair; every
    other row in the batch is a negative.  Minimising this loss maximises a
    lower bound on the mutual information between the two views, which is
    exactly how the MKI module injects metadata knowledge into the selector.
    """
    if z_a.shape != z_b.shape:
        raise ValueError(f"paired embeddings must share a shape, got {z_a.shape} vs {z_b.shape}")
    n = z_a.shape[0]
    sim = F.cosine_similarity_matrix(z_a, z_b) * (1.0 / temperature)
    labels = np.arange(n)
    loss_ab = cross_entropy(sim, labels, reduction="none", weights=weights)
    loss_ba = cross_entropy(sim.transpose(), labels, reduction="none", weights=weights)
    per_sample = (loss_ab + loss_ba) * 0.5
    return _reduce(per_sample, reduction)


class CrossEntropyLoss(Module):
    """Module wrapper around :func:`cross_entropy`."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return cross_entropy(logits, targets, reduction=self.reduction)


class SoftCrossEntropyLoss(Module):
    """Module wrapper around :func:`soft_cross_entropy` (PISL)."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, logits: Tensor, soft_targets: np.ndarray) -> Tensor:
        return soft_cross_entropy(logits, soft_targets, reduction=self.reduction)


class InfoNCELoss(Module):
    """Module wrapper around :func:`info_nce` (MKI)."""

    def __init__(self, temperature: float = 0.1, reduction: str = "mean") -> None:
        super().__init__()
        self.temperature = temperature
        self.reduction = reduction

    def forward(self, z_a: Tensor, z_b: Tensor) -> Tensor:
        return info_nce(z_a, z_b, temperature=self.temperature, reduction=self.reduction)


class MSELoss(Module):
    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, pred: Tensor, target: np.ndarray) -> Tensor:
        return mse_loss(pred, target, reduction=self.reduction)
