"""Incremental student refresh: bounded fine-tunes triggered by drift.

A deployed student can silently fall out of sync with its teacher when
stream behaviour drifts.  :class:`StudentRefresher` closes the loop
cheaply: on a drift trigger it *probes* — compares student and teacher
selections on the most recent windows — and only when agreement drops
below the configured threshold does it escalate to the teacher for a
bounded PISL fine-tune on the streamed windows (the teacher labels a few
hundred windows once, instead of serving every query).  A quantized twin
is re-quantized in place after each escalation.

Everything is observable: checks/escalations/steps are counted through
``repro.obs.metrics`` and each refresh lands in the audit trail as a
``student_refresh`` event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import nn
from ..core.config import PISLConfig
from ..core.pisl import PISLLoss, performance_to_soft_labels
from ..data.windows import extract_windows
from ..obs.audit import NULL_AUDIT
from ..obs.metrics import Counter, Gauge, default_registry
from ..selectors.base import Selector
from ..selectors.student import Int8StudentSelector, StudentSelector
from .distiller import selection_agreement, sync_quantized


@dataclass(frozen=True)
class RefreshConfig:
    """Bounds and thresholds of the incremental refresh loop."""

    #: escalate to the teacher when probe agreement falls below this
    min_agreement: float = 0.95
    #: most-recent windows used for the cheap agreement probe
    probe_windows: int = 32
    #: cap on windows the teacher labels per escalation
    max_windows: int = 256
    #: optimizer steps per escalation (the fine-tune is bounded, not a re-train)
    steps: int = 25
    batch_size: int = 64
    lr: float = 5e-3
    #: PISL mixing weight during fine-tune (1.0 = pure soft labels)
    alpha: float = 1.0
    t_soft: float = 0.5
    seed: int = 0


@dataclass(frozen=True)
class RefreshOutcome:
    """What one refresh call did."""

    agreement_before: float
    agreement_after: float
    escalated: bool
    steps: int
    windows: int


class StudentRefresher:
    """Keep a deployed student in agreement with its teacher after drift."""

    def __init__(self, teacher: Selector, student: StudentSelector,
                 config: Optional[RefreshConfig] = None,
                 quantized: Optional[Int8StudentSelector] = None) -> None:
        if isinstance(student, Int8StudentSelector):
            raise TypeError("refresh fine-tunes the float student; pass the int8 "
                            "model via quantized= instead")
        self.teacher = teacher
        self.student = student
        self.config = config or RefreshConfig()
        self.quantized = quantized
        self._rng = np.random.default_rng(self.config.seed)
        registry = default_registry()
        # always-real counters (the stats surface); registered for exposition
        self._checks = registry.register(Counter(
            "repro_distill_refresh_checks_total", "student refresh agreement probes"))
        self._escalations = registry.register(Counter(
            "repro_distill_escalations_total", "refreshes escalated to the teacher"))
        self._finetune_steps = registry.register(Counter(
            "repro_distill_finetune_steps_total", "optimizer steps spent on student fine-tunes"))
        self._agreement = registry.register(Gauge(
            "repro_distill_student_agreement", "student-vs-teacher agreement at last probe"))

    # ------------------------------------------------------------------ #
    def refresh(self, windows: np.ndarray, audit=NULL_AUDIT,
                stream: Optional[str] = None) -> RefreshOutcome:
        """Probe agreement on recent ``windows``; fine-tune if it dropped.

        ``windows`` is a 2-D matrix of already-normalised selector windows,
        newest last.  Returns the outcome either way; records an audit
        event and bumps counters only through the obs layer.
        """
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim != 2 or len(windows) == 0:
            return RefreshOutcome(1.0, 1.0, escalated=False, steps=0, windows=0)
        config = self.config

        probe = windows[-config.probe_windows:]
        teacher_probe = self.teacher.predict_proba(probe)
        before = selection_agreement(self.student.predict_proba(probe), teacher_probe)
        self._checks.inc()
        self._agreement.set(before)

        if before >= config.min_agreement:
            self._audit(audit, stream, before, before, escalated=False, steps=0,
                        n_windows=len(probe))
            return RefreshOutcome(before, before, escalated=False, steps=0, windows=len(probe))

        # escalate: the teacher labels a bounded sample of recent windows
        self._escalations.inc()
        sample = windows[-config.max_windows:]
        steps = self._finetune(sample)
        self._finetune_steps.inc(steps)
        if self.quantized is not None:
            sync_quantized(self.student, self.quantized)

        after = selection_agreement(self.student.predict_proba(probe), teacher_probe)
        self._agreement.set(after)
        self._audit(audit, stream, before, after, escalated=True, steps=steps,
                    n_windows=len(sample))
        return RefreshOutcome(before, after, escalated=True, steps=steps, windows=len(sample))

    def refresh_from_series(self, series: np.ndarray, window: int, stride: int,
                            audit=NULL_AUDIT, stream: Optional[str] = None,
                            ) -> Optional[RefreshOutcome]:
        """Refresh from the tail of a raw series (the streaming hook).

        Windows the most recent span that can hold ``max_windows`` windows
        (z-normalised, like the selection path) and delegates to
        :meth:`refresh`.  Returns ``None`` when the series is shorter than
        one window.
        """
        series = np.asarray(series, dtype=np.float64).ravel()
        if len(series) < window:
            return None
        span = window + (self.config.max_windows - 1) * stride
        tail = series[-span:] if len(series) > span else series
        return self.refresh(extract_windows(tail, window, stride), audit=audit, stream=stream)

    # ------------------------------------------------------------------ #
    def _finetune(self, windows: np.ndarray) -> int:
        """Bounded PISL fine-tune of the float student on teacher labels."""
        config = self.config
        teacher_proba = self.teacher.predict_proba(windows)
        hard = teacher_proba.argmax(axis=1)
        soft = performance_to_soft_labels(teacher_proba, config.t_soft)
        loss_fn = PISLLoss(PISLConfig(enabled=True, alpha=config.alpha, t_soft=config.t_soft))

        self.student.build()
        params = self.student.parameters()
        optimizer = nn.Adam(params, lr=config.lr)
        self.student.train_mode(True)
        n = len(windows)
        batch = min(config.batch_size, n)
        for _ in range(config.steps):
            idx = self._rng.choice(n, size=batch, replace=False)
            logits, _ = self.student.forward(windows[idx])
            per_sample = loss_fn(logits, hard[idx], soft[idx])
            loss = per_sample.sum() * (1.0 / batch)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        self.student.train_mode(False)
        return config.steps

    @staticmethod
    def _audit(audit, stream: Optional[str], before: float, after: float,
               escalated: bool, steps: int, n_windows: int) -> None:
        audit.record(
            "student_refresh",
            stream=stream,
            agreement_before=round(float(before), 6),
            agreement_after=round(float(after), 6),
            escalated=escalated,
            steps=steps,
            windows=n_windows,
        )
