"""``repro.distill`` — the distilled + quantized selector fast path.

Production serving rarely needs the full teacher network on every window:
a thin student over static window encodings answers the overwhelming
majority of selections identically at a fraction of the cost.  This
package provides the three pieces of that fast path:

* :mod:`repro.distill.distiller` — teacher→student knowledge distillation
  (:func:`distill_student`, reusing the PISL soft-label machinery) and
  int8 post-training quantization behind an explicit dequantize-compare
  accuracy gate (:func:`quantize_student`),
* :mod:`repro.distill.refresh` — :class:`StudentRefresher`, the bounded
  incremental fine-tune that keeps a deployed student in sync with its
  teacher after drift (escalating to the teacher only when the student's
  selection agreement drops below a threshold),
* the student model classes themselves live in
  :mod:`repro.selectors.student` (``Student`` / ``StudentInt8`` in the
  selector registry) and are re-exported here.

See ``docs/performance.md`` (selector tiers) and ``docs/architecture.md``.
"""

from ..selectors.student import Int8StudentSelector, StaticFeatureEncoder, StudentSelector
from ..selectors.teacher_int8 import Int8TeacherSelector
from .distiller import (
    DistillConfig,
    DistillReport,
    calibration_split,
    distill_student,
    quantize_student,
    quantize_teacher,
    selection_agreement,
    sync_quantized,
    teacher_soft_dataset,
)
from .refresh import RefreshConfig, RefreshOutcome, StudentRefresher

__all__ = [
    "DistillConfig", "DistillReport", "calibration_split",
    "distill_student", "quantize_student", "quantize_teacher",
    "selection_agreement", "sync_quantized", "teacher_soft_dataset",
    "RefreshConfig", "RefreshOutcome", "StudentRefresher",
    "StaticFeatureEncoder", "StudentSelector", "Int8StudentSelector",
    "Int8TeacherSelector",
]
