"""Teacher→student distillation and gated int8 quantization.

Distillation reuses the PISL machinery end to end: the teacher's
``predict_proba`` output *is* the per-window "performance" matrix, so
:func:`repro.core.pisl.performance_to_soft_labels` sharpens it into soft
targets and :class:`repro.core.trainer.SelectorTrainer` runs the usual
mixed hard/soft objective — no new training loop.

Quantization is post-training: activation scales are calibrated on a
held-out slice of the distillation windows, and the resulting int8 model
must pass an explicit dequantize-compare gate (per-window selection
agreement against its own float student) before it is handed back.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.config import PISLConfig, TrainerConfig
from ..data.windows import SelectorDataset
from ..nn.quant import calibrate_activation_scale
from ..selectors.base import Selector
from ..selectors.nn_selector import NNSelector
from ..selectors.student import Int8StudentSelector, StudentSelector
from ..selectors.teacher_int8 import (
    Int8TeacherSelector,
    conv_fold_plan,
    named_conv_modules,
)


@dataclass(frozen=True)
class DistillConfig:
    """Everything that shapes a distillation run (deterministic per seed)."""

    epochs: int = 25
    batch_size: int = 64
    lr: float = 1e-2
    #: soft-label weight of the PISL objective (1.0 = pure soft labels)
    alpha: float = 0.9
    #: temperature sharpening the teacher's probabilities into soft targets
    t_soft: float = 0.5
    hidden: int = 64
    features: str = "stats"
    n_kernels: int = 96
    #: fraction of windows held out for activation calibration + the gate
    calibration_fraction: float = 0.25
    #: minimum quantized-vs-float selection agreement on the calibration set
    min_agreement: float = 0.97
    seed: int = 0


@dataclass(frozen=True)
class DistillReport:
    """What a distillation run produced, for logs and the CLI."""

    n_windows: int
    n_calibration: int
    teacher_parameters: int
    student_parameters: int
    #: student-vs-teacher per-window selection agreement on calibration windows
    student_agreement: float
    #: int8-vs-float-student agreement on calibration windows (None if not quantized)
    quantized_agreement: Optional[float] = None
    #: max |p_float - p_int8| over calibration windows (None if not quantized)
    quantized_max_proba_diff: Optional[float] = None


def selection_agreement(proba_a: np.ndarray, proba_b: np.ndarray) -> float:
    """Fraction of windows on which two probability matrices pick the same model."""
    a = np.asarray(proba_a)
    b = np.asarray(proba_b)
    if a.shape != b.shape:
        raise ValueError(f"probability shapes differ: {a.shape} vs {b.shape}")
    if len(a) == 0:
        return 1.0
    return float(np.mean(a.argmax(axis=1) == b.argmax(axis=1)))


def teacher_soft_dataset(teacher: Selector, windows: np.ndarray,
                         detector_names: Sequence[str]) -> SelectorDataset:
    """Wrap teacher predictions as a :class:`SelectorDataset`.

    The teacher's probability matrix plays the role of the performance
    matrix: PISL's temperature softmax then sharpens it into soft labels,
    and its argmax provides the hard labels.
    """
    windows = np.asarray(windows, dtype=np.float64)
    proba = teacher.predict_proba(windows)
    return SelectorDataset(
        windows=windows,
        hard_labels=proba.argmax(axis=1),
        performances=proba,
        metadata_texts=[""] * len(windows),
        series_ids=np.zeros(len(windows), dtype=int),
        series_names=[],
        series_datasets=[],
        detector_names=list(detector_names),
        window_size=windows.shape[1],
    )


def calibration_split(n: int, fraction: float, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic ``(train_idx, calib_idx)`` permutation split.

    The same ``(n, fraction, seed)`` always yields the same split, so the
    CLI can re-derive the calibration slice a distillation run used.
    """
    n_calib = max(1, int(round(n * fraction))) if fraction > 0 else 0
    n_calib = min(n_calib, n - 1) if n > 1 else 0
    order = np.random.default_rng(seed).permutation(n)
    return order[n_calib:], order[:n_calib]


def distill_student(teacher: Selector, windows: np.ndarray,
                    detector_names: Sequence[str],
                    config: Optional[DistillConfig] = None,
                    ) -> Tuple[StudentSelector, DistillReport]:
    """Distill ``teacher`` into a float :class:`StudentSelector`.

    ``windows`` is the transfer set (already z-normalised selector windows,
    e.g. from :func:`repro.data.windows.extract_windows`).  A deterministic
    ``calibration_fraction`` slice is held out from training; it calibrates
    the encoder normalisation and measures student↔teacher agreement.
    """
    config = config or DistillConfig()
    windows = np.asarray(windows, dtype=np.float64)
    if windows.ndim != 2 or len(windows) < 2:
        raise ValueError(f"expected a (n >= 2, window) transfer matrix, got shape {windows.shape}")

    train_idx, calib_idx = calibration_split(len(windows), config.calibration_fraction, config.seed)
    train_windows = windows[train_idx]
    calib_windows = windows[calib_idx] if len(calib_idx) else windows[train_idx[: min(64, len(train_idx))]]

    dataset = teacher_soft_dataset(teacher, train_windows, detector_names)
    student = StudentSelector(
        window=windows.shape[1],
        n_classes=len(detector_names),
        seed=config.seed,
        hidden=config.hidden,
        features=config.features,
        n_kernels=config.n_kernels,
    )
    student.build(window=windows.shape[1], n_classes=len(detector_names))
    student.encoder.calibrate(train_windows)

    trainer_config = TrainerConfig(
        epochs=config.epochs,
        batch_size=config.batch_size,
        lr=config.lr,
        seed=config.seed,
        val_fraction=0.0,
        pisl=PISLConfig(enabled=True, alpha=config.alpha, t_soft=config.t_soft),
    )
    student.fit(dataset, config=trainer_config)

    agreement = selection_agreement(
        student.predict_proba(calib_windows), teacher.predict_proba(calib_windows)
    )
    report = DistillReport(
        n_windows=len(train_windows),
        n_calibration=len(calib_windows),
        teacher_parameters=_parameter_count(teacher),
        student_parameters=_parameter_count(student),
        student_agreement=agreement,
    )
    return student, report


def _parameter_count(selector: Selector) -> int:
    try:
        return int(sum(p.size for p in selector.parameters()))
    except (AttributeError, RuntimeError):
        return 0


def quantize_student(student: StudentSelector, calibration_windows: np.ndarray,
                     min_agreement: Optional[float] = 0.97,
                     ) -> Tuple[Int8StudentSelector, dict]:
    """Post-training int8 quantization with a dequantize-compare gate.

    Activation scales are calibrated per tensor on ``calibration_windows``
    (the fc1 input features and the post-ReLU hidden layer), weights are
    quantized symmetrically per channel, and the quantized model's
    selections are compared against the float student on the same windows.
    Raises :class:`ValueError` when agreement falls below ``min_agreement``
    (pass ``None`` to skip the gate).
    """
    calibration_windows = np.asarray(calibration_windows, dtype=np.float64)
    if calibration_windows.ndim != 2 or len(calibration_windows) == 0:
        raise ValueError(f"expected a non-empty (n, window) calibration matrix, "
                         f"got shape {calibration_windows.shape}")
    student.build()
    student.train_mode(False)
    encoder = student.encoder

    feats = encoder.normalized_features(calibration_windows)
    act_scale_fc1 = calibrate_activation_scale(feats)
    hidden = encoder.hidden_activations(calibration_windows)
    act_scale_clf = calibrate_activation_scale(hidden)

    quantized = Int8StudentSelector(
        window=student.window,
        n_classes=student.n_classes,
        seed=student.seed,
        hidden=student.arch_kwargs.get("hidden", 64),
        features=student.arch_kwargs.get("features", "stats"),
        n_kernels=student.arch_kwargs.get("n_kernels", 96),
    )
    quantized.build()
    quantized.encoder.update_buffer("feat_mean", encoder.feat_mean.copy())
    quantized.encoder.update_buffer("feat_scale", encoder.feat_scale.copy())
    quantized.encoder.fc1.load_weights(encoder.fc1.weight.data, encoder.fc1.bias.data, act_scale_fc1)
    quantized.classifier.load_weights(student.classifier.weight.data,
                                      student.classifier.bias.data, act_scale_clf)

    proba_float = student.predict_proba(calibration_windows)
    proba_int8 = quantized.predict_proba(calibration_windows)
    agreement = selection_agreement(proba_float, proba_int8)
    max_diff = float(np.abs(proba_float - proba_int8).max())
    if min_agreement is not None and agreement < min_agreement:
        raise ValueError(
            f"quantized student agrees with the float student on only "
            f"{agreement:.4f} of {len(calibration_windows)} calibration windows "
            f"(gate: {min_agreement}); max |Δproba| = {max_diff:.4f}"
        )
    gate = {
        "agreement": agreement,
        "max_proba_diff": max_diff,
        "act_scale_fc1": act_scale_fc1,
        "act_scale_classifier": act_scale_clf,
        "n_calibration": len(calibration_windows),
    }
    return quantized, gate


def _calibrate_conv_inputs(teacher: NNSelector, convs, calibration_windows: np.ndarray):
    """Per-conv input abs-max observed during one float calibration pass.

    Each conv's ``forward`` is shadowed with an instance-level wrapper that
    records ``max|x|`` of whatever reaches it, the calibration windows are
    pushed through the float encoder once, and the wrappers are removed
    again (plain functions bypass ``Module.__setattr__``, so shadowing and
    ``del`` leave the module registry untouched).  Returns the encoder's
    output features (reused to calibrate the classifier input scale) and a
    ``{conv_name: absmax}`` dict.
    """
    absmax = {name: 0.0 for name, _ in convs}

    def _shadow(conv, name):
        orig = conv.forward

        def wrapped(x, *args, **kwargs):
            data = getattr(x, "data", x)
            data = np.asarray(data)
            if data.size:
                absmax[name] = max(absmax[name], float(np.abs(data).max()))
            return orig(x, *args, **kwargs)

        conv.forward = wrapped

    for name, conv in convs:
        _shadow(conv, name)
    try:
        features = teacher.encode(calibration_windows)
    finally:
        for _, conv in convs:
            del conv.forward
    return features, absmax


def quantize_teacher(teacher: NNSelector, calibration_windows: np.ndarray,
                     min_agreement: Optional[float] = 0.97,
                     ) -> Tuple[Int8TeacherSelector, dict]:
    """Quantize a conv teacher to int8 behind the dequantize-compare gate.

    Walks the teacher's encoder, calibrates one activation scale per conv
    input (plus the classifier input) on ``calibration_windows``, builds a
    structurally identical :class:`Int8TeacherSelector` twin, copies the
    float state shared by both structures, folds each conv's trailing
    batch norm into the quantized weights (eval-mode BN is a per-channel
    affine, absorbed exactly by the per-channel weight scales and bias),
    quantizes every conv and the classifier, and compares the twin's
    selections against the float teacher on the same windows.  Raises
    :class:`ValueError` when agreement falls below ``min_agreement`` (pass
    ``None`` to skip the gate).

    The returned twin carries a ``quant_provenance`` dict (measured
    agreement, calibration size, per-tensor activation scales and their
    hash) that the selector store persists alongside the int8 payload.
    """
    calibration_windows = np.asarray(calibration_windows, dtype=np.float64)
    if calibration_windows.ndim != 2 or len(calibration_windows) == 0:
        raise ValueError(f"expected a non-empty (n, window) calibration matrix, "
                         f"got shape {calibration_windows.shape}")
    if not isinstance(teacher, NNSelector):
        raise ValueError(f"expected a neural teacher selector, got {type(teacher).__name__}")
    teacher.build()
    teacher.train_mode(False)

    from .. import nn

    fold_plan = conv_fold_plan(teacher.encoder)
    convs = [(name, conv) for name, conv, _ in fold_plan]
    if not convs:
        raise ValueError(
            f"{type(teacher).__name__} encoder has no Conv1d layers; "
            "use quantize_student for feature-based selectors")

    features, absmax = _calibrate_conv_inputs(teacher, convs, calibration_windows)
    act_scales = {name: calibrate_activation_scale(np.asarray([absmax[name]]))
                  for name, _ in convs}
    act_scale_clf = calibrate_activation_scale(features)

    quantized = Int8TeacherSelector(
        window=teacher.window, n_classes=teacher.n_classes, seed=teacher.seed,
        base_type=teacher.name, **teacher.arch_kwargs)
    quantized.build()

    # shared float state (BN statistics, non-conv parameters): the twin's
    # state dict drops the float conv leaves and adds quant buffers, so
    # copy exactly the intersection of the two structures
    for float_mod, quant_mod in ((teacher.encoder, quantized.encoder),
                                 (teacher.classifier, quantized.classifier)):
        target_keys = set(quant_mod.state_dict())
        shared = {k: v for k, v in float_mod.state_dict().items() if k in target_keys}
        quant_mod.load_state_dict(shared)

    quant_convs = dict(named_conv_modules(quantized.encoder, conv_types=(nn.QuantizedConv1d,)))
    for name, conv, bn in fold_plan:
        weight = np.asarray(conv.weight.data, dtype=np.float64)
        bias = (np.asarray(conv.bias.data, dtype=np.float64) if conv.bias is not None
                else np.zeros(conv.out_channels, dtype=np.float64))
        if bn is not None:
            gain = np.asarray(bn.weight.data, dtype=np.float64) / np.sqrt(
                np.asarray(bn.running_var, dtype=np.float64) + bn.eps)
            weight = weight * gain[:, None, None]
            bias = (bias - np.asarray(bn.running_mean, dtype=np.float64)) * gain \
                + np.asarray(bn.bias.data, dtype=np.float64)
        quant_convs[name].load_weights(weight, bias, act_scales[name])
    quantized.classifier.load_weights(teacher.classifier.weight.data,
                                      teacher.classifier.bias.data, act_scale_clf)

    proba_float = teacher.predict_proba(calibration_windows)
    proba_int8 = quantized.predict_proba(calibration_windows)
    agreement = selection_agreement(proba_float, proba_int8)
    max_diff = float(np.abs(proba_float - proba_int8).max())
    if min_agreement is not None and agreement < min_agreement:
        raise ValueError(
            f"quantized teacher agrees with the float teacher on only "
            f"{agreement:.4f} of {len(calibration_windows)} calibration windows "
            f"(gate: {min_agreement}); max |Δproba| = {max_diff:.4f}"
        )
    all_scales = dict(act_scales)
    all_scales["classifier"] = act_scale_clf
    scales_blob = json.dumps({k: repr(v) for k, v in sorted(all_scales.items())},
                             sort_keys=True).encode()
    gate = {
        "agreement": agreement,
        "max_proba_diff": max_diff,
        "n_calibration": len(calibration_windows),
        "act_scales": all_scales,
        "act_scales_hash": hashlib.blake2b(scales_blob, digest_size=8).hexdigest(),
        "base_type": teacher.name,
        "n_quantized_convs": len(convs),
        "n_folded_bns": sum(1 for _, _, bn in fold_plan if bn is not None),
    }
    quantized.quant_provenance = dict(gate)
    return quantized, gate


def sync_quantized(student: StudentSelector, quantized: Int8StudentSelector) -> None:
    """Re-quantize the int8 twin from the (fine-tuned) float student.

    Activation scales are kept — they were calibrated on representative
    traffic and bounded fine-tunes barely move the activation range — so a
    refresh only re-quantizes the weight payload.
    """
    student.build()
    quantized.build()
    quantized.encoder.update_buffer("feat_mean", student.encoder.feat_mean.copy())
    quantized.encoder.update_buffer("feat_scale", student.encoder.feat_scale.copy())
    quantized.encoder.fc1.load_weights(
        student.encoder.fc1.weight.data, student.encoder.fc1.bias.data,
        float(quantized.encoder.fc1.act_scale[0]),
    )
    quantized.classifier.load_weights(
        student.classifier.weight.data, student.classifier.bias.data,
        float(quantized.classifier.act_scale[0]),
    )
