"""Append-only stream storage with incremental window extraction.

A live series grows one tick at a time, but the selector consumes complete
fixed-length windows.  :class:`StreamBuffer` owns that boundary: it stores
the raw points of one stream (amortised-O(1) append into a doubling array)
and, on every append, yields exactly the windows that newly became complete
— via :func:`repro.data.windows.extract_new_windows`, so the emitted rows
are bitwise identical to what batch extraction over the final series would
produce.  A partial tail (fewer than ``window`` unconsumed points past the
last complete window) simply stays pending until enough points arrive; no
padded pseudo-window is ever emitted.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.windows import complete_window_count, extract_new_windows


class GrowingArray:
    """A 1-D float64 array with amortised-O(1) append (doubling capacity)."""

    def __init__(self, initial_capacity: int = 1024) -> None:
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be >= 1")
        self._data = np.empty(initial_capacity, dtype=np.float64)
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def append(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64).ravel()
        needed = self._length + len(values)
        if needed > len(self._data):
            capacity = len(self._data)
            while capacity < needed:
                capacity *= 2
            grown = np.empty(capacity, dtype=np.float64)
            grown[: self._length] = self._data[: self._length]
            self._data = grown
        self._data[self._length:needed] = values
        self._length = needed

    @property
    def values(self) -> np.ndarray:
        """Read-only view of the filled prefix (no copy)."""
        view = self._data[: self._length]
        view.flags.writeable = False
        return view


class StreamBuffer:
    """One live stream: raw points in, newly complete selector windows out.

    The buffer normally owns its storage (a :class:`GrowingArray`), but a
    stream whose points already live elsewhere — e.g. a shared-memory
    segment written by a service front end — can instead :meth:`attach` a
    read-only view of that external series.  Window extraction is storage
    agnostic, so attached streams produce bitwise-identical windows with
    zero copies on the handoff.
    """

    def __init__(self, window: int, stride: Optional[int] = None,
                 normalize: bool = True) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.stride = stride or window
        self.normalize = normalize
        self._points = GrowingArray(max(1024, 2 * window))
        self._external: Optional[np.ndarray] = None
        self._n_emitted = 0

    # ------------------------------------------------------------------ #
    @property
    def length(self) -> int:
        """Number of points received so far."""
        if self._external is not None:
            return len(self._external)
        return len(self._points)

    @property
    def series(self) -> np.ndarray:
        """The full series received so far (read-only view)."""
        if self._external is not None:
            return self._external
        return self._points.values

    @property
    def n_windows(self) -> int:
        """Number of complete windows emitted so far."""
        return self._n_emitted

    def pending_windows(self) -> int:
        """Complete windows that exist but have not been emitted yet."""
        return complete_window_count(self.length, self.window, self.stride) - self._n_emitted

    # ------------------------------------------------------------------ #
    def extend(self, values: np.ndarray) -> None:
        """Append points without emitting (the engine's staging step)."""
        if self._external is not None:
            raise ValueError("buffer is attached to external storage; "
                             "grow the external series and re-attach instead")
        self._points.append(values)

    def attach(self, series: np.ndarray) -> None:
        """Adopt an externally stored series prefix (zero-copy).

        ``series`` must be the same stream the buffer has seen so far plus
        any newly arrived points — i.e. at least as long as :attr:`length`;
        the caller guarantees the shared prefix is unchanged (an append-only
        store such as a shared-memory segment satisfies this by
        construction).  After attaching, new points arrive by attaching a
        longer view; :meth:`extend` is disabled.
        """
        series = np.asarray(series)
        if series.dtype != np.float64 or series.ndim != 1:
            raise ValueError("attached series must be a 1-D float64 array")
        if len(series) < self.length:
            raise ValueError(
                f"attached series is shorter than the stream so far "
                f"({len(series)} < {self.length}); streams are append-only")
        view = series.view()
        view.flags.writeable = False
        self._external = view

    def take_new_windows(self) -> np.ndarray:
        """Emit every window that became complete since the last call.

        Returns a (k, window) matrix (k may be 0).  The rows are bitwise
        identical to rows ``n_windows:`` of ``extract_windows`` over the
        current series, and each window is emitted exactly once over the
        stream's lifetime.
        """
        windows = extract_new_windows(
            self.series, self.window, self._n_emitted,
            stride=self.stride, normalize=self.normalize,
        )
        self._n_emitted += len(windows)
        return windows

    def append(self, values: np.ndarray) -> np.ndarray:
        """Append points and return the windows that became complete."""
        self.extend(values)
        return self.take_new_windows()

    def __repr__(self) -> str:
        return (f"StreamBuffer(length={self.length}, windows={self.n_windows}, "
                f"window={self.window}, stride={self.stride})")
