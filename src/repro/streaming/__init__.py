"""``repro.streaming`` — online selection + detection for live series.

Turns the one-shot pipeline into an incremental engine for many concurrent
live streams: points arrive tick by tick, only the *new* windows take a
selector forward pass, the running vote and per-point anomaly scores extend
incrementally, and a drift monitor re-selects the detector (with
hysteresis) when the stream changes character.

* :mod:`repro.streaming.buffer`   — per-stream storage + incremental windowing,
* :mod:`repro.streaming.selector` — running votes over incremental forward passes,
* :mod:`repro.streaming.drift`    — distribution-shift statistic + hysteresis,
* :mod:`repro.streaming.scorer`   — incremental per-point anomaly scoring,
* :mod:`repro.streaming.engine`   — :class:`StreamEngine`, the multi-stream front end,
* :mod:`repro.streaming.replay`   — replaying recorded series / stdin as ticks.

Invariant: as long as no drift re-selection has narrowed a stream's vote,
its selection (and its scores, for the exact tail-re-scoring path) is
bitwise identical to running the batch pipeline on the same final series —
asserted by ``tests/test_streaming.py`` and
``benchmarks/bench_streaming_throughput.py``.

See ``docs/architecture.md`` for where this sits in the dataflow.
"""

from .buffer import GrowingArray, StreamBuffer
from .drift import DriftConfig, DriftDecision, DriftMonitor, total_variation
from .engine import StreamEngine, StreamEngineStats, StreamingConfig, StreamUpdate
from .replay import DEFAULT_STREAM, iter_chunks, parse_tick_line, replay_records
from .scorer import OnlineScorer
from .selector import SelectionView, StreamingSelector, StreamVoteState

__all__ = [
    "GrowingArray", "StreamBuffer",
    "DriftConfig", "DriftDecision", "DriftMonitor", "total_variation",
    "StreamEngine", "StreamEngineStats", "StreamingConfig", "StreamUpdate",
    "DEFAULT_STREAM", "iter_chunks", "parse_tick_line", "replay_records",
    "OnlineScorer",
    "SelectionView", "StreamingSelector", "StreamVoteState",
]
