"""Replaying recorded series (or stdin lines) as live stream ticks.

The stream engine consumes appends; these helpers produce them.  Recorded
benchmark files are replayed round-robin in fixed-size chunks — the closest
offline stand-in for many concurrent live sources — and a line protocol
turns stdin into ticks for the ``stream`` CLI command:

* a bare number per line appends one point to the default stream,
* a JSON object ``{"stream": "name", "values": [1.0, 2.0]}`` (or a scalar
  ``"value"``) appends to a named stream, so one pipe can carry many
  interleaved streams.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..data.records import TimeSeriesRecord
from .engine import StreamEngine, StreamUpdate

#: Stream id used for bare-number stdin lines.
DEFAULT_STREAM = "stdin"


def iter_chunks(series: np.ndarray, chunk: int) -> Iterator[np.ndarray]:
    """Cut one series into consecutive tick payloads of ``chunk`` points."""
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    series = np.asarray(series, dtype=np.float64).ravel()
    for start in range(0, len(series), chunk):
        yield series[start:start + chunk]


def replay_records(
    engine: StreamEngine,
    records: Sequence[TimeSeriesRecord],
    chunk: int = 32,
) -> Iterator[Dict[str, StreamUpdate]]:
    """Replay records round-robin: each round appends one chunk per stream.

    Every record becomes one named stream (``record.name``).  Rounds append
    a chunk to every stream that still has points and then flush once, so
    each yielded dict is exactly one multiplexed engine tick — the shape of
    traffic the engine's cross-stream batching exists for.  Streams drop
    out as they are exhausted; iteration ends when all are.
    """
    feeds: List[Tuple[str, Iterator[np.ndarray]]] = [
        (record.name, iter_chunks(record.series, chunk)) for record in records
    ]
    while feeds:
        alive: List[Tuple[str, Iterator[np.ndarray]]] = []
        for name, feed in feeds:
            values = next(feed, None)
            if values is None:
                continue
            engine.append(name, values)
            alive.append((name, feed))
        feeds = alive
        if feeds:
            yield engine.flush()


def parse_tick_line(line: str) -> Tuple[str, np.ndarray]:
    """Parse one stdin line of the ``stream`` CLI protocol.

    Returns ``(stream_id, values)``; raises ``ValueError`` on malformed
    input (the CLI reports it and keeps serving other streams).
    """
    line = line.strip()
    if not line:
        raise ValueError("empty line")
    if line.startswith("{"):
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"bad JSON tick: {error}") from None
        if not isinstance(payload, dict):
            raise ValueError("JSON tick must be an object")
        stream = str(payload.get("stream", DEFAULT_STREAM))
        if "values" in payload:
            values = np.asarray(payload["values"], dtype=np.float64).ravel()
        elif "value" in payload:
            values = np.asarray([payload["value"]], dtype=np.float64)
        else:
            raise ValueError("JSON tick needs a 'value' or 'values' field")
        return stream, values
    try:
        return DEFAULT_STREAM, np.asarray([float(line)], dtype=np.float64)
    except ValueError:
        raise ValueError(f"not a number or JSON tick: {line!r}") from None
