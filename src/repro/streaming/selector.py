"""Incremental model selection over live streams.

The one-shot pipeline answers "which TSAD model?" by windowing the whole
series and running every window through the selector.  On a stream that is
redundant work: windows already classified on earlier ticks never change
(windows are content-defined and z-normalisation is row-local), so their
probabilities can be kept and only the *new* windows need a forward pass.

:class:`StreamingSelector` owns that invariant.  Per stream it accumulates
the per-window probability matrix (:class:`StreamVoteState`); each tick it
classifies only the newly complete windows — through the shared chunked
predict path (:func:`repro.core.inference.batched_predict_proba`) and an
optional content-addressed window-probability LRU
(:class:`repro.serving.cache.LRUCache`), so periodic streams whose
normalised windows repeat skip the forward pass entirely.  The running
selection is recomputed with
:func:`repro.eval.evaluation.aggregate_window_probas` — the *same* code the
batch pipeline uses, over the *same* probability rows — which is what makes
streaming selections bitwise identical to re-running the batch pipeline on
the final series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.inference import DEFAULT_PREDICT_BATCH_SIZE
from ..data.windows import extract_windows
from ..eval.evaluation import aggregate_window_probas
from ..obs.metrics import Counter, default_registry
from ..selectors.base import Selector
from ..selectors.nn_selector import NNSelector
from ..serving.cache import CacheStats, LRUCache, series_fingerprint


class StreamVoteState:
    """Per-stream accumulator of window probabilities and the vote range."""

    def __init__(self, n_classes: int, initial_capacity: int = 64) -> None:
        self.n_classes = n_classes
        self._probas = np.empty((initial_capacity, n_classes), dtype=np.float64)
        self._length = 0
        #: first window index the running vote covers (advanced by drift resets)
        self.vote_start = 0

    def __len__(self) -> int:
        return self._length

    def append(self, probas: np.ndarray) -> None:
        needed = self._length + len(probas)
        if needed > len(self._probas):
            capacity = len(self._probas)
            while capacity < needed:
                capacity *= 2
            grown = np.empty((capacity, self.n_classes), dtype=np.float64)
            grown[: self._length] = self._probas[: self._length]
            self._probas = grown
        self._probas[self._length:needed] = probas
        self._length = needed

    @property
    def probas(self) -> np.ndarray:
        """All accumulated per-window probabilities (read-only view)."""
        view = self._probas[: self._length]
        view.flags.writeable = False
        return view

    @property
    def active_probas(self) -> np.ndarray:
        """The rows the running vote covers (``vote_start:``)."""
        return self.probas[self.vote_start:]


@dataclass(frozen=True)
class SelectionView:
    """The running answer for one stream at one instant."""

    selected_index: int
    aggregated: np.ndarray
    n_windows: int
    #: True when no complete window exists yet and the answer came from a
    #: padded pseudo-window over the partial series (recomputed every tick)
    provisional: bool = False


class StreamingSelector:
    """Classify only new windows; keep per-stream running votes."""

    def __init__(
        self,
        selector: Selector,
        n_classes: int,
        window: int,
        stride: Optional[int] = None,
        aggregation: str = "vote",
        predict_batch_size: int = DEFAULT_PREDICT_BATCH_SIZE,
        cache_capacity: int = 0,
    ) -> None:
        if aggregation not in ("vote", "mean"):
            raise ValueError("aggregation must be 'vote' or 'mean'")
        self.selector = selector
        self.n_classes = n_classes
        self.window = window
        self.stride = stride or window
        self.aggregation = aggregation
        self.predict_batch_size = predict_batch_size
        self.cache = (LRUCache(cache_capacity, name="window_proba")
                      if cache_capacity > 0 else None)
        registry = default_registry()
        self._forward_windows = registry.register(Counter(
            "repro_stream_forward_windows_total",
            "windows sent through an actual selector forward pass"))
        self._cached_windows = registry.register(Counter(
            "repro_stream_cached_windows_total",
            "windows answered from the window-probability cache"))

    # ------------------------------------------------------------------ #
    @property
    def forward_windows(self) -> int:
        """Windows sent through an actual selector forward pass."""
        return self._forward_windows.value

    @property
    def cached_windows(self) -> int:
        """Windows answered from the window-probability cache."""
        return self._cached_windows.value

    def new_state(self) -> StreamVoteState:
        return StreamVoteState(self.n_classes)

    def _forward(self, windows: np.ndarray) -> np.ndarray:
        """One selector forward pass over a (k, L) window matrix.

        NN selectors go through their own chunk-padded predict path
        (:func:`batched_predict_proba` inside ``NNSelector.predict_proba``),
        which makes per-row bits independent of how many windows arrived
        together — the bitwise-equality guarantee.  Classical selectors are
        called un-chunked, exactly like the batch pipeline and the serving
        layer call them; their probabilities are typically discrete
        vote/count fractions, but tick-boundary bit-equality is *engineered*
        only for the NN path.
        """
        if isinstance(self.selector, NNSelector):
            return self.selector.predict_proba(windows, batch_size=self.predict_batch_size)
        return self.selector.predict_proba(windows)

    def predict_proba(self, windows: np.ndarray) -> np.ndarray:
        """Per-window probabilities, answering repeats from the window LRU.

        Cached rows are bitwise identical to recomputed ones: a row's
        answer does not depend on which batch it was first computed in
        (see :meth:`_forward`).
        """
        windows = np.asarray(windows, dtype=np.float64)
        if len(windows) == 0:
            return np.empty((0, self.n_classes), dtype=np.float64)
        if self.cache is None:
            self._forward_windows.inc(len(windows))
            return self._forward(windows)

        proba = np.empty((len(windows), self.n_classes), dtype=np.float64)
        keys = [series_fingerprint(row) for row in windows]
        miss_indices = []
        for i, key in enumerate(keys):
            hit = self.cache.get(key)
            if hit is None:
                miss_indices.append(i)
            else:
                proba[i] = hit
        if miss_indices:
            computed = self._forward(windows[miss_indices])
            for j, i in enumerate(miss_indices):
                proba[i] = computed[j]
                self.cache.put(keys[i], computed[j].copy())
        self._forward_windows.inc(len(miss_indices))
        self._cached_windows.inc(len(windows) - len(miss_indices))
        return proba

    # ------------------------------------------------------------------ #
    def update(self, state: StreamVoteState, new_windows: np.ndarray,
               probas: Optional[np.ndarray] = None) -> np.ndarray:
        """Fold newly complete windows into the stream's running vote.

        ``probas`` short-circuits the forward pass when the engine already
        classified the windows as part of a cross-stream batch.
        """
        if probas is None:
            probas = self.predict_proba(new_windows)
        if len(probas):
            state.append(probas)
        return probas

    def selection(self, state: StreamVoteState,
                  series: Optional[np.ndarray] = None) -> Optional[SelectionView]:
        """The stream's current model choice (None when nothing to vote on).

        With at least one complete window this aggregates the stored
        probability rows with the batch pipeline's own
        :func:`aggregate_window_probas` — bitwise-equal selections.  Before
        the first complete window, a ``series`` (the partial stream) yields
        a *provisional* answer via the batch path's padded single window.
        """
        active = state.active_probas
        if len(active):
            choice, aggregated = aggregate_window_probas(active, self.aggregation)
            return SelectionView(choice, aggregated, n_windows=len(active))
        if series is not None and len(series):
            padded = extract_windows(series, self.window, stride=self.stride)
            choice, aggregated = aggregate_window_probas(
                self.predict_proba(padded), self.aggregation)
            return SelectionView(choice, aggregated, n_windows=len(padded), provisional=True)
        return None

    def reset_votes(self, state: StreamVoteState, keep_last: int = 0) -> None:
        """Restart the running vote, keeping only the last ``keep_last`` windows.

        This is the re-selection primitive the drift monitor triggers: old
        windows stop contributing, so the choice can move with the stream.
        """
        state.vote_start = max(len(state) - max(keep_last, 0), 0)

    # ------------------------------------------------------------------ #
    @property
    def cache_stats(self) -> Optional[CacheStats]:
        """Hit/miss counters of the window-probability LRU (None when off)."""
        return self.cache.stats if self.cache is not None else None
