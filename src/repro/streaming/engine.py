"""The stream engine: many live series, one incremental execution loop.

:class:`StreamEngine` multiplexes the streaming components over any number
of concurrent named streams.  Appends are *staged* per stream and processed
together by :meth:`flush`:

1. every stream's newly complete windows are collected
   (:class:`StreamBuffer` — incremental windowing),
2. streams are packed into window-budgeted groups
   (:func:`repro.serving.batching.window_budget_groups`, the same budget
   rule the serving layer's micro-batching uses) and each group takes **one
   selector forward pass** (:class:`StreamingSelector`, which also consults
   the window-probability LRU),
3. per-stream running votes, drift monitors and online scorers are updated;
   detector re-selection (drift) swaps the stream's scorer.

Scorer updates fan out on a :class:`repro.serving.workers.WorkerPool` when
``max_workers >= 2`` — per-stream detection work is independent.

The result of a flush is one :class:`StreamUpdate` per touched stream: the
running selection (bitwise identical to the batch pipeline on the same
prefix, as long as no drift re-selection has narrowed the vote), change and
drift flags, and bookkeeping counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.inference import DEFAULT_PREDICT_BATCH_SIZE
from ..detectors.base import AnomalyDetector
from ..obs.audit import NULL_AUDIT, selection_inputs
from ..obs.metrics import DEFAULT_COUNT_BUCKETS, Counter, default_registry
from ..obs.trace import span
from ..selectors.base import Selector
from ..serving.batching import window_budget_groups
from ..serving.cache import CacheStats
from ..serving.workers import WorkerPool
from .buffer import StreamBuffer
from .drift import DriftConfig, DriftMonitor
from .scorer import OnlineScorer
from .selector import SelectionView, StreamingSelector, StreamVoteState


@dataclass(frozen=True)
class StreamingConfig:
    """Knobs of the stream engine (windowing, batching, drift, scoring)."""

    #: selector input window length (must match how the selector was trained)
    window: int = 96
    #: window stride; ``None`` means non-overlapping (the pipeline default)
    stride: Optional[int] = None
    #: per-series reduction of window predictions: ``"vote"`` or ``"mean"``
    aggregation: str = "vote"
    #: windows per selector forward chunk (memory/latency trade-off)
    predict_batch_size: int = DEFAULT_PREDICT_BATCH_SIZE
    #: window-probability LRU entries; 0 disables the cache
    cache_capacity: int = 0
    #: cross-stream forward-batch budget, in selector windows
    max_batch_windows: int = 8192
    #: thread count for per-stream scoring fan-out; 0 runs sequentially.
    #: Always threads: scorer updates mutate per-stream state in place,
    #: which a forked process could not hand back.
    max_workers: int = 0
    #: drift monitoring configuration; ``None`` disables re-selection
    drift: Optional[DriftConfig] = None
    #: windows the running vote keeps after a drift-triggered re-selection
    keep_last_on_drift: int = 32
    #: full-re-score cadence (in points) for globally-scored detectors
    rescore_every: int = 1
    #: assert every incremental tail re-score against a full re-run (slow)
    verify_scores: bool = False
    #: which selector tier serves this engine: ``"teacher"`` (the full NN),
    #: ``"student"`` (distilled) or ``"student-int8"`` (distilled+quantized).
    #: Purely descriptive — the engine serves whatever selector it is given —
    #: but stamped on metrics, audit events and ``explain`` output.
    selector_tier: str = "teacher"
    #: per-flush latency SLO in milliseconds; with a cascade router attached
    #: the admission step picks the best predicted-quality plan fitting it.
    #: ``None`` leaves admission quality-only (cascade plan by default).
    latency_slo_ms: Optional[float] = None
    #: per-flush peak-memory budget in megabytes (see ``latency_slo_ms``)
    memory_budget_mb: Optional[float] = None


@dataclass(frozen=True)
class StreamUpdate:
    """What one flush did to one stream."""

    stream: str
    length: int
    n_new_windows: int
    n_windows: int
    selected_index: Optional[int]
    selected_model: Optional[str]
    votes: Dict[str, float]
    #: True when this flush changed the stream's selected model
    changed: bool
    #: True when the answer came from a padded pseudo-window (no complete window yet)
    provisional: bool
    drift_statistic: float = 0.0
    drift_triggered: bool = False
    #: new windows of this flush the cascade escalated to the teacher
    escalated_windows: int = 0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation (the ``stream`` CLI output format)."""
        return {
            "stream": self.stream,
            "length": self.length,
            "new_windows": self.n_new_windows,
            "windows": self.n_windows,
            "selected_index": self.selected_index,
            "selected_model": self.selected_model,
            "votes": dict(self.votes),
            "changed": self.changed,
            "provisional": self.provisional,
            "drift_statistic": self.drift_statistic,
            "drift_triggered": self.drift_triggered,
            "escalated_windows": self.escalated_windows,
        }


@dataclass(frozen=True)
class StreamEngineStats:
    """Aggregate counters across every stream of one engine."""

    n_streams: int
    flushes: int
    points: int
    windows: int
    forward_windows: int
    cached_windows: int
    drift_triggers: int
    tail_rescores: int
    full_rescores: int
    escalated_windows: int
    slo_fallbacks: int
    cache: Optional[CacheStats]


class _StreamState:
    """Everything the engine keeps for one named stream."""

    def __init__(self, buffer: StreamBuffer, votes: StreamVoteState,
                 monitor: Optional[DriftMonitor]) -> None:
        self.buffer = buffer
        self.votes = votes
        self.monitor = monitor
        self.scorer: Optional[OnlineScorer] = None
        self.selected_index: Optional[int] = None
        self.pending = False
        #: cumulative windows the cascade escalated on this stream
        self.escalated_windows = 0
        #: the last flush's cascade decision for this stream (``explain``)
        self.last_cascade: Optional[Dict[str, object]] = None


class StreamEngine:
    """Serve online model selection (and scoring) for many live streams."""

    def __init__(
        self,
        selector: Selector,
        detector_names: Sequence[str],
        config: Optional[StreamingConfig] = None,
        model_set: Optional[Dict[str, AnomalyDetector]] = None,
        audit: Optional[object] = None,
        refresher: Optional[object] = None,
        cascade: Optional[object] = None,
    ) -> None:
        self.detector_names = list(detector_names)
        self.config = config or StreamingConfig()
        #: structured audit trail (``repro.obs.audit``); a no-op by default
        self.audit = audit if audit is not None else NULL_AUDIT
        #: optional :class:`repro.cascade.CascadeRouter`; when set, each
        #: flush's forward work is admitted against the SLO knobs and
        #: low-margin windows escalate from this engine's (fast) selector
        #: to the router's teacher.  ``None`` keeps the exact pre-cascade
        #: code path — selections stay bitwise identical.
        self.cascade = cascade
        #: the last flush's admission decision (``explain`` / introspection)
        self.last_admit: Optional[object] = None
        #: optional :class:`repro.distill.StudentRefresher`; when set, drift
        #: triggers probe student↔teacher agreement and fine-tune if needed
        self.refresher = refresher
        self.model_set = model_set
        if model_set is not None:
            missing = [n for n in self.detector_names if n not in model_set]
            if missing:
                raise ValueError(f"model_set lacks detectors the selector can choose: {missing}")
        self.streaming_selector = StreamingSelector(
            selector,
            n_classes=len(self.detector_names),
            window=self.config.window,
            stride=self.config.stride,
            aggregation=self.config.aggregation,
            predict_batch_size=self.config.predict_batch_size,
            cache_capacity=self.config.cache_capacity,
        )
        self.workers = WorkerPool(self.config.max_workers)
        self._streams: Dict[str, _StreamState] = {}
        registry = default_registry()
        # always-real counters (the stats surface); registered for exposition
        self._points = registry.register(Counter(
            "repro_stream_points_total", "points appended across every stream"))
        self._flushes = registry.register(Counter(
            "repro_stream_flushes_total", "flush (tick) executions"))
        self._drift_triggers = registry.register(Counter(
            "repro_stream_drift_triggers_total",
            "drift-triggered vote resets across every stream"))
        self._reselections = registry.register(Counter(
            "repro_stream_reselections_total",
            "flushes that changed a stream's selected model"))
        self._tier_selections = registry.register(Counter(
            "repro_selector_tier_selections_total",
            "stream selections decided, by serving tier",
            labels={"tier": self.config.selector_tier, "layer": "streaming"}))
        self._escalated_windows = registry.register(Counter(
            "repro_cascade_escalated_windows_total",
            "windows escalated from the fast tier to the teacher",
            labels={"layer": "streaming"}))
        self._slo_fallbacks = registry.register(Counter(
            "repro_cascade_slo_fallbacks_total",
            "flushes where no plan fit the SLO and the cheapest ran",
            labels={"layer": "streaming"}))
        # pure-observability site metrics: null (free) until obs is enabled
        self._h_flush_seconds = registry.histogram(
            "repro_stream_flush_seconds", "wall-clock latency of one flush")
        self._h_flush_windows = registry.histogram(
            "repro_stream_flush_windows", "new complete windows per flush",
            buckets=DEFAULT_COUNT_BUCKETS)
        self._h_flush_streams = registry.histogram(
            "repro_stream_flush_streams", "pending streams per flush",
            buckets=DEFAULT_COUNT_BUCKETS)

    # ------------------------------------------------------------------ #
    # stream management
    # ------------------------------------------------------------------ #
    def _ensure_stream(self, stream_id: str) -> _StreamState:
        state = self._streams.get(stream_id)
        if state is None:
            state = _StreamState(
                buffer=StreamBuffer(self.config.window, self.config.stride),
                votes=self.streaming_selector.new_state(),
                monitor=DriftMonitor(self.config.drift) if self.config.drift else None,
            )
            self._streams[stream_id] = state
        return state

    @property
    def stream_ids(self) -> List[str]:
        return list(self._streams)

    def __contains__(self, stream_id: str) -> bool:
        return stream_id in self._streams

    def series(self, stream_id: str) -> np.ndarray:
        """Every point received so far on one stream (read-only view)."""
        return self._streams[stream_id].buffer.series

    def scores(self, stream_id: str) -> np.ndarray:
        """Normalised anomaly scores of the stream's scored prefix."""
        state = self._streams[stream_id]
        if state.scorer is None:
            return np.zeros(0, dtype=np.float64)
        return state.scorer.scores

    def selection(self, stream_id: str) -> Optional[SelectionView]:
        """The stream's current model choice (recomputed from stored votes)."""
        state = self._streams[stream_id]
        return self.streaming_selector.selection(state.votes, series=state.buffer.series)

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def append(self, stream_id: str, values: np.ndarray) -> None:
        """Stage points on one stream (processed by the next :meth:`flush`)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        state = self._ensure_stream(stream_id)
        state.buffer.extend(values)
        state.pending = True
        self._points.inc(len(values))

    def append_view(self, stream_id: str, series: np.ndarray) -> None:
        """Stage an externally stored series prefix (zero-copy handoff).

        ``series`` is the stream's *entire* history so far — e.g. a
        shared-memory view a service front end grew in place — and must
        extend what the engine has already seen (append-only).  Nothing is
        copied: the stream's buffer adopts the view and the next
        :meth:`flush` windows only the new points, bitwise identical to
        having received them through :meth:`append`.
        """
        state = self._ensure_stream(stream_id)
        previous = state.buffer.length
        state.buffer.attach(series)
        state.pending = True
        self._points.inc(state.buffer.length - previous)

    def push(self, stream_id: str, values: np.ndarray) -> StreamUpdate:
        """Append to one stream and flush immediately (single-stream ticks)."""
        self.append(stream_id, values)
        return self.flush()[stream_id]

    def drop_stream(self, stream_id: str) -> bool:
        """Forget one stream entirely (rebalance/ownership handoff).

        Returns True when the stream existed.  All per-stream state —
        buffer, running votes, drift monitor, scorer — is discarded; a
        later append under the same id starts a fresh stream.
        """
        return self._streams.pop(stream_id, None) is not None

    def flush(self) -> Dict[str, StreamUpdate]:
        """Process every staged append; one update per touched stream."""
        pending = [(stream_id, state) for stream_id, state in self._streams.items()
                   if state.pending]
        if not pending:
            return {}
        with self._h_flush_seconds.time(), span("engine.flush", streams=len(pending)):
            return self._flush_pending(pending)

    def _flush_pending(self, pending) -> Dict[str, StreamUpdate]:
        self._flushes.inc()

        # 1. incremental windowing: only the windows that became complete
        new_windows = [state.buffer.take_new_windows() for _, state in pending]

        # 2. one forward pass per window-budgeted group of streams; with a
        # cascade attached, the flush's total forward work is admitted
        # against the SLO first and low-margin rows escalate per group
        probas: List[np.ndarray] = [
            np.empty((0, len(self.detector_names))) for _ in pending
        ]
        counts = [len(w) for w in new_windows]
        total_windows = sum(counts)
        self._h_flush_windows.observe(total_windows)
        self._h_flush_streams.observe(len(pending))
        escalated = [0] * len(pending)
        min_margins: List[Optional[float]] = [None] * len(pending)
        decision = (self._admit(total_windows)
                    if self.cascade is not None and total_windows else None)
        forward_ms = 0.0
        for group in window_budget_groups(counts, self.config.max_batch_windows):
            members = [i for i in group if counts[i]]
            if not members:
                continue
            stacked = np.vstack([new_windows[i] for i in members])
            with span("engine.forward", windows=len(stacked), streams=len(members)):
                start = time.perf_counter()
                group_probas, esc_mask, fast_margins = self._group_forward(
                    stacked, decision)
                forward_ms += (time.perf_counter() - start) * 1000.0
            offset = 0
            for i in members:
                probas[i] = group_probas[offset:offset + counts[i]]
                if esc_mask is not None:
                    escalated[i] = int(esc_mask[offset:offset + counts[i]].sum())
                if fast_margins is not None:
                    min_margins[i] = float(fast_margins[offset:offset + counts[i]].min())
                offset += counts[i]

        # 3. votes, drift, selection per stream
        updates: Dict[str, StreamUpdate] = {}
        to_score: List[_StreamState] = []
        for idx, ((stream_id, state), windows, stream_probas) in enumerate(
                zip(pending, new_windows, probas)):
            if decision is not None and counts[idx]:
                state.escalated_windows += escalated[idx]
                # the flush-level forward wall time is report-only context
                # for explain; it never feeds a routing decision
                state.last_cascade = {
                    "plan": decision.plan,
                    "slow_tier": getattr(self.cascade, "slow_tier", "teacher"),
                    "escalated_windows": escalated[idx],
                    "n_new_windows": counts[idx],
                    "threshold": float(self.cascade.threshold),
                    "min_margin": min_margins[idx],
                    "predicted_ms": float(decision.predicted_ms),
                    "predicted_mb": float(decision.predicted_mb),
                    "actual_forward_ms": float(forward_ms),
                    "fallback": bool(decision.fallback),
                }
            self.streaming_selector.update(state.votes, windows, probas=stream_probas)

            drift_stat, drift_triggered = 0.0, False
            if state.monitor is not None and len(stream_probas):
                decision = state.monitor.update(stream_probas)
                drift_stat, drift_triggered = decision.statistic, decision.triggered
                if drift_triggered:
                    self._drift_triggers.inc()
                    self.streaming_selector.reset_votes(
                        state.votes, keep_last=self.config.keep_last_on_drift)
                    if self.refresher is not None:
                        self._refresh_student(stream_id, state)

            view = self.streaming_selector.selection(state.votes, series=state.buffer.series)
            self._tier_selections.inc()
            selected_index = view.selected_index if view is not None else None
            previous_index = state.selected_index
            changed = (selected_index is not None
                       and state.selected_index is not None
                       and selected_index != state.selected_index)
            if changed:
                self._reselections.inc()
            state.selected_index = selected_index

            if self.model_set is not None and selected_index is not None:
                chosen = self.model_set[self.detector_names[selected_index]]
                if state.scorer is None:
                    state.scorer = OnlineScorer(chosen,
                                                rescore_every=self.config.rescore_every,
                                                verify=self.config.verify_scores)
                elif state.scorer.detector is not chosen:
                    state.scorer.switch_detector(chosen)
                to_score.append(state)

            updates[stream_id] = StreamUpdate(
                stream=stream_id,
                length=state.buffer.length,
                n_new_windows=len(windows),
                n_windows=view.n_windows if view is not None else 0,
                selected_index=selected_index,
                selected_model=(self.detector_names[selected_index]
                                if selected_index is not None else None),
                votes=({name: float(view.aggregated[k])
                        for k, name in enumerate(self.detector_names)}
                       if view is not None else {}),
                changed=changed,
                provisional=view.provisional if view is not None else False,
                drift_statistic=drift_stat,
                drift_triggered=drift_triggered,
                escalated_windows=escalated[idx],
            )
            state.pending = False
            if self.audit.enabled:
                self._audit_update(stream_id, state, updates[stream_id], previous_index)

        # 4. per-stream scoring fan-out (independent work, thread-friendly)
        if to_score:
            with span("engine.score", streams=len(to_score)):
                self.workers.map(
                    lambda state: state.scorer.update(state.buffer.series), to_score)

        return updates

    # ------------------------------------------------------------------ #
    # cascade plumbing (inert when ``self.cascade is None``)
    # ------------------------------------------------------------------ #
    def _admit(self, n_windows: int):
        """SLO admission for one flush's forward work (audited + metered)."""
        decision = self.cascade.admit(
            n_windows,
            latency_slo_ms=self.config.latency_slo_ms,
            memory_budget_mb=self.config.memory_budget_mb,
        )
        self.last_admit = decision
        if decision.fallback:
            self._slo_fallbacks.inc()
            if self.audit.enabled:
                self.audit.record("slo_fallback", layer="streaming",
                                  n_windows=int(n_windows), **decision.as_dict())
        return decision

    def _measured_forward(self, fn, tier: str, n_windows: int) -> np.ndarray:
        """Run one forward pass; record a ``cost_observation`` when auditing.

        The measurement (wall ms + tracemalloc peak MB) is report-only —
        cost-model *training labels*, never a routing input — so audited
        runs stay decision-identical to unaudited ones.
        """
        if not self.audit.enabled:
            return fn()
        from ..cascade.harvest import observed_cost  # deferred: audit-only path

        result, wall_ms, peak_mb = observed_cost(fn)
        self.audit.record(
            "cost_observation", kind="selector_forward", target=tier,
            n_windows=int(n_windows), window=int(self.config.window),
            wall_ms=float(wall_ms), peak_mb=peak_mb)
        return result

    def _group_forward(self, stacked: np.ndarray, decision):
        """Forward one stacked group under the admitted plan.

        Returns ``(probas, escalated_mask, fast_margins)``; the mask and
        margins are ``None`` on the no-cascade and teacher paths.  The
        teacher escalation goes through the router's own predict path and
        never touches the window-probability LRU, which therefore only
        ever holds fast-tier rows.
        """
        if decision is None:
            return self._measured_forward(
                lambda: self.streaming_selector.predict_proba(stacked),
                self.config.selector_tier, len(stacked)), None, None
        slow_tier = getattr(self.cascade, "slow_tier", "teacher")
        if decision.plan == "teacher":
            return self._measured_forward(
                lambda: self.cascade.forward_slow(stacked),
                slow_tier, len(stacked)), None, None
        fast = self._measured_forward(
            lambda: self.streaming_selector.predict_proba(stacked),
            self.config.selector_tier, len(stacked))
        from ..cascade.router import margins  # deferred: cascade-only path

        fast_margins = margins(fast)
        if decision.plan == "fast":
            return fast, None, fast_margins
        mask = self.cascade.escalate_mask(fast, stacked)
        if not mask.any():
            return fast, mask, fast_margins
        proba = np.array(fast, dtype=np.float64, copy=True)
        proba[mask] = self._measured_forward(
            lambda: self.cascade.forward_slow(stacked[mask]),
            slow_tier, int(mask.sum()))
        self._escalated_windows.inc(int(mask.sum()))
        return proba, mask, fast_margins

    def _refresh_student(self, stream_id: str, state: _StreamState) -> None:
        """Drift hook: probe student↔teacher agreement, fine-tune if it fell.

        An escalated refresh changes the student's weights, so the
        window-probability cache (stale float outputs) is dropped.
        """
        outcome = self.refresher.refresh_from_series(
            state.buffer.series,
            window=self.config.window,
            stride=self.config.stride or self.config.window,
            audit=self.audit,
            stream=stream_id,
        )
        if (outcome is not None and outcome.escalated
                and self.streaming_selector.cache is not None):
            self.streaming_selector.cache.clear()

    def _audit_update(self, stream_id: str, state: _StreamState,
                      update: StreamUpdate, previous_index: Optional[int]) -> None:
        """Record one flush's decision for ``stream_id`` (audit enabled only).

        The ``selection`` event carries content-hashed, replayable inputs
        (:func:`repro.obs.audit.selection_inputs`); drift triggers and
        model changes additionally get their own events.
        """
        if update.drift_triggered:
            self.audit.record(
                "drift", stream=stream_id,
                statistic=float(update.drift_statistic),
                keep_last=self.config.keep_last_on_drift,
                vote_start=int(state.votes.vote_start))
        if update.changed:
            self.audit.record(
                "reselection", stream=stream_id,
                previous_index=previous_index,
                previous_model=(self.detector_names[previous_index]
                                if previous_index is not None else None),
                selected_index=update.selected_index,
                selected_model=update.selected_model)
        # the cascade block (plan, escalations, margins vs threshold,
        # predicted-vs-actual cost) rides on the selection event so explain
        # can reconstruct the routing decision from the audit log alone
        cascade_fields = ({"cascade": dict(state.last_cascade)}
                          if state.last_cascade is not None else {})
        self.audit.record(
            "selection", stream=stream_id,
            length=update.length,
            n_new_windows=update.n_new_windows,
            n_windows=update.n_windows,
            selected_index=update.selected_index,
            selected_model=update.selected_model,
            votes=dict(update.votes),
            changed=update.changed,
            provisional=update.provisional,
            drift_statistic=float(update.drift_statistic),
            drift_triggered=update.drift_triggered,
            selector_tier=self.config.selector_tier,
            inputs=selection_inputs(
                state.buffer.series,
                window=self.config.window,
                stride=self.config.stride or self.config.window,
                aggregation=self.config.aggregation,
                vote_start=state.votes.vote_start,
                predict_batch_size=self.config.predict_batch_size,
            ),
            **cascade_fields)

    # ------------------------------------------------------------------ #
    def explain(self, stream_id: str) -> Dict[str, object]:
        """Why is this stream's detector selected?  (vote breakdown, margin,
        drift trajectory — see :func:`repro.obs.explain.explain_stream`)."""
        from ..obs.explain import explain_stream  # deferred: obs.explain is UI-side

        return explain_stream(self, stream_id)

    @property
    def stats(self) -> StreamEngineStats:
        """Aggregate counters, a thin view over the registry-backed metrics."""
        return StreamEngineStats(
            n_streams=len(self._streams),
            flushes=self._flushes.value,
            points=self._points.value,
            windows=sum(s.buffer.n_windows for s in self._streams.values()),
            forward_windows=self.streaming_selector.forward_windows,
            cached_windows=self.streaming_selector.cached_windows,
            drift_triggers=sum(s.monitor.triggers for s in self._streams.values()
                               if s.monitor is not None),
            tail_rescores=sum(s.scorer.tail_rescores for s in self._streams.values()
                              if s.scorer is not None),
            full_rescores=sum(s.scorer.full_rescores for s in self._streams.values()
                              if s.scorer is not None),
            escalated_windows=self._escalated_windows.value,
            slo_fallbacks=self._slo_fallbacks.value,
            cache=self.streaming_selector.cache_stats,
        )

    def __repr__(self) -> str:
        return (f"StreamEngine(streams={len(self._streams)}, "
                f"models={len(self.detector_names)}, window={self.config.window})")
