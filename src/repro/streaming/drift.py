"""Distribution-shift monitoring over selector probabilities.

A stream that drifts (new regime, new anomaly style) can make the detector
chosen at the start of the stream stale.  Rather than inspecting raw points,
:class:`DriftMonitor` watches what the selector itself believes: the
per-window probability vectors.  It freezes a *reference* distribution (the
mean probability vector over the first ``reference_size`` windows after the
last re-selection) and compares it against a sliding *recent* window of the
last ``recent_size`` vectors using total variation distance.

Re-selection must not flap, so the trigger carries two kinds of hysteresis:

* **cooldown** — at least ``cooldown`` windows must pass between triggers,
* **release** — after a trigger the monitor is disarmed until the statistic
  first falls below the ``release`` low-water mark, so a statistic hovering
  around the threshold fires once, not on every tick.

On trigger the monitor rebuilds its reference from the post-drift stream;
the engine pairs the trigger with :meth:`StreamingSelector.reset_votes`, so
the running vote restarts from recent windows and the chosen detector can
change mid-stream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

import numpy as np


@dataclass(frozen=True)
class DriftConfig:
    """Knobs of the probability-distribution drift monitor."""

    #: windows frozen into the reference distribution after each reset
    reference_size: int = 32
    #: sliding window of recent probability vectors compared to the reference
    recent_size: int = 32
    #: total-variation distance that triggers re-selection (in [0, 1])
    threshold: float = 0.25
    #: low-water mark the statistic must fall below before re-arming
    release: float = 0.1
    #: minimum windows between two triggers
    cooldown: int = 32

    def __post_init__(self) -> None:
        if self.reference_size < 1 or self.recent_size < 1:
            raise ValueError("reference_size and recent_size must be >= 1")
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if not 0.0 <= self.release < self.threshold:
            raise ValueError("release must satisfy 0 <= release < threshold")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")


@dataclass(frozen=True)
class DriftDecision:
    """Outcome of feeding one tick's windows into the monitor."""

    statistic: float
    triggered: bool
    #: False while the release gate holds the monitor disarmed
    armed: bool


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance between two probability vectors (in [0, 1])."""
    return float(0.5 * np.abs(np.asarray(p) - np.asarray(q)).sum())


class DriftMonitor:
    """Windowed shift statistic over one stream's selector probabilities."""

    def __init__(self, config: Optional[DriftConfig] = None) -> None:
        self.config = config or DriftConfig()
        self._reference_rows: List[np.ndarray] = []
        self._reference: Optional[np.ndarray] = None
        self._recent: Deque[np.ndarray] = deque(maxlen=self.config.recent_size)
        self._since_trigger = self.config.cooldown  # first trigger needs no wait
        self._armed = True
        #: total re-selections this monitor has triggered
        self.triggers = 0
        #: bounded per-update statistic trajectory (the explain surface)
        self.history: Deque[float] = deque(maxlen=512)

    # ------------------------------------------------------------------ #
    @property
    def statistic(self) -> float:
        """Current shift statistic (0.0 until both windows are filled)."""
        if self._reference is None or len(self._recent) < self.config.recent_size:
            return 0.0
        recent_mean = np.mean(np.asarray(self._recent), axis=0)
        return total_variation(self._reference, recent_mean)

    def update(self, probas: np.ndarray) -> DriftDecision:
        """Feed one tick's per-window probabilities; decide on re-selection."""
        probas = np.asarray(probas, dtype=np.float64)
        for row in probas:
            if self._reference is None:
                self._reference_rows.append(row)
                if len(self._reference_rows) >= self.config.reference_size:
                    self._reference = np.mean(self._reference_rows, axis=0)
                    self._reference_rows = []
                continue
            self._recent.append(row)
        self._since_trigger += len(probas)

        stat = self.statistic
        self.history.append(stat)
        ready = (self._reference is not None
                 and len(self._recent) >= self.config.recent_size)
        # The release gate re-arms only once the statistic is actually
        # *measured* low against the rebuilt reference — a stream still
        # churning after a re-selection keeps the monitor disarmed.
        if not self._armed and ready and stat <= self.config.release:
            self._armed = True
        triggered = (
            self._armed
            and ready
            and stat >= self.config.threshold
            and self._since_trigger >= self.config.cooldown
        )
        if triggered:
            self.triggers += 1
            self._reference = None
            self._reference_rows = []
            self._recent.clear()
            self._since_trigger = 0
            self._armed = False
        return DriftDecision(statistic=stat, triggered=triggered, armed=self._armed)

    def __repr__(self) -> str:
        return (f"DriftMonitor(statistic={self.statistic:.3f}, "
                f"triggers={self.triggers}, armed={self._armed})")
