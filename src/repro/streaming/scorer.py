"""Incremental per-point anomaly scoring for a growing series.

Once a stream has a selected detector, recomputing the whole per-point
score array on every tick repeats almost all of the previous tick's work.
:class:`OnlineScorer` keeps the raw score array between ticks and extends
it incrementally.

Two regimes, chosen per update:

* **Tail re-scoring** (exact) — for *windowed-local* detectors
  (``detector.locally_scored``; e.g. POLY), a point's raw score is the
  overlap average of scores of windows touching it, and each window's score
  depends only on its own values.  Appending points can therefore only
  change the scores of the last ``window - 1`` old points; the scorer
  re-runs the detector on a short tail context (``2 * window`` points
  before the old end) and splices the result in.  The spliced array is
  **bitwise identical** to a full re-run — asserted by the test suite and,
  with ``verify=True``, on every update.
* **Full re-scoring** — global detectors (IForest, MP, HBOS, ...) fit
  statistics over the whole series, so any append can move any score; the
  scorer re-runs ``detector.score`` over the full series, but only every
  ``rescore_every`` appended points (the scored prefix lags in between),
  which bounds the amortised cost on high-frequency streams.

Normalised scores (:func:`repro.detectors.base.normalize_scores` over the
maintained raw array) match ``detector.detect`` on the same prefix exactly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..detectors.base import AnomalyDetector, normalize_scores

#: ``detector.score`` needs at least this many points (the effective-window
#: floor of :meth:`AnomalyDetector.effective_window`).
_MIN_SCORABLE = 4


class OnlineScorer:
    """Maintain per-point anomaly scores of one stream incrementally."""

    def __init__(self, detector: AnomalyDetector, rescore_every: int = 1,
                 verify: bool = False) -> None:
        if rescore_every < 1:
            raise ValueError("rescore_every must be >= 1")
        self.detector = detector
        self.rescore_every = rescore_every
        self.verify = verify
        self._raw: Optional[np.ndarray] = None
        self._scored_length = 0
        self._seen_length = 0
        self._scored_window = 0
        self._pending_since_rescore = 0
        #: update counters (observability + benchmark accounting)
        self.full_rescores = 0
        self.tail_rescores = 0
        self.points_rescored = 0

    # ------------------------------------------------------------------ #
    @property
    def scored_length(self) -> int:
        """Length of the series prefix the maintained scores cover."""
        return self._scored_length

    @property
    def raw_scores(self) -> np.ndarray:
        """Raw per-point scores of the scored prefix (empty before any run)."""
        if self._raw is None:
            return np.zeros(0, dtype=np.float64)
        return self._raw

    @property
    def scores(self) -> np.ndarray:
        """Normalised scores of the scored prefix — equal to
        ``detector.detect(series[:scored_length])``."""
        return normalize_scores(self.raw_scores) if self._scored_length else np.zeros(0)

    # ------------------------------------------------------------------ #
    def switch_detector(self, detector: AnomalyDetector) -> None:
        """Swap the detector (after a re-selection); forces a full re-score."""
        self.detector = detector
        self._raw = None
        self._scored_length = 0
        self._scored_window = 0
        self._pending_since_rescore = self._seen_length

    def _tail_update(self, series: np.ndarray, window: int) -> Optional[np.ndarray]:
        """Exact incremental splice, or None when the preconditions fail."""
        n_old, n_new = self._scored_length, len(series)
        cut = n_old - 2 * window
        if cut <= 0:
            return None  # tail run would cover (almost) everything — run full
        if self.detector.effective_window(series[cut:]) != window:
            return None  # the tail context would see a different window size
        tail_raw = self.detector.score(series[cut:])
        # Scores of points before ``boundary`` cannot have changed: no new
        # window reaches further back than window - 1 points before n_old.
        boundary = n_old - (window - 1)
        spliced = np.concatenate([self._raw[:boundary], tail_raw[boundary - cut:]])
        self.tail_rescores += 1
        self.points_rescored += n_new - boundary
        if self.verify:
            full = self.detector.score(series)
            if not np.array_equal(spliced, full):
                raise AssertionError(
                    f"incremental tail re-scoring diverged from a full re-run "
                    f"for {self.detector!r} at length {n_new}"
                )
        return spliced

    def update(self, series: np.ndarray, force: bool = False) -> bool:
        """Extend the scores to cover ``series`` (the stream's full prefix).

        Returns True when the scored prefix advanced.  ``series`` must be
        the same stream the scorer has seen so far, grown — the scorer only
        keeps scores, not points, so the caller (the stream buffer) is the
        source of truth for the data.  ``force=True`` ignores the
        ``rescore_every`` cadence (useful to bring a lagging scorer fully
        current, e.g. at end of stream).
        """
        series = np.asarray(series, dtype=np.float64).ravel()
        n_new = len(series)
        if n_new < self._seen_length:
            raise ValueError("series shrank: online scoring needs append-only input")
        self._pending_since_rescore += n_new - self._seen_length
        self._seen_length = n_new
        if n_new == self._scored_length or n_new < _MIN_SCORABLE:
            return False

        window = self.detector.effective_window(series)
        can_tail = (self.detector.locally_scored and self._raw is not None
                    and window == self._scored_window)
        # The rescore_every cadence exists to bound *full* re-runs; the
        # exact tail path is cheap, so local detectors stay current on
        # every tick regardless of cadence.
        if (not can_tail and not force and self._raw is not None
                and self._pending_since_rescore < self.rescore_every):
            return False

        spliced = self._tail_update(series, window) if can_tail else None
        if spliced is None:
            spliced = self.detector.score(series)
            self.full_rescores += 1
            self.points_rescored += n_new

        self._raw = spliced
        self._scored_length = n_new
        self._scored_window = window
        self._pending_since_rescore = 0
        return True

    def __repr__(self) -> str:
        return (f"OnlineScorer(detector={self.detector!r}, "
                f"scored={self._scored_length}, tail={self.tail_rescores}, "
                f"full={self.full_rescores})")
